//! Quickstart: build a tiny database, run one nested query under both
//! evaluation strategies, and compare results and page I/Os.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nested_query_opt::db::{Database, QueryOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Create a database (B = 6 buffer pages, 512-byte pages — the
    //    Section-7.4 configuration) and load Kiessling's example data.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
           (10, 2, 8-10-81), (8, 5, 5-7-83);",
    )?;

    // 2. Kiessling's query Q2: parts whose quantity-on-hand equals the
    //    number of shipments before 1980. A type-JA nested query — the
    //    COUNT-bug minefield.
    let q2 = "SELECT PNUM FROM PARTS WHERE QOH = \
              (SELECT COUNT(SHIPDATE) FROM SUPPLY \
               WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

    // 3. Evaluate with System R nested iteration (the reference).
    let ni = db.query_with(q2, &QueryOptions::nested_iteration())?;
    println!("— nested iteration ({}):\n{}\n", ni.io, ni.relation);

    // 4. Evaluate after NEST-JA2 transformation with merge joins.
    let tr = db.query_with(q2, &QueryOptions::transformed_merge())?;
    println!("— NEST-JA2 + merge joins ({}):\n{}\n", tr.io, tr.relation);

    assert!(tr.relation.same_bag(&ni.relation), "strategies must agree");

    // 5. Inspect what the transformation did.
    println!("— transformation pipeline:");
    for line in &tr.explain {
        println!("    {line}");
    }

    // 6. And the Figure-2 style query tree.
    println!("\n— query tree:\n{}", db.query_tree(q2)?.render());
    Ok(())
}
