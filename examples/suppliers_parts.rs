//! The paper's Section-1/2 walkthrough on the suppliers–parts database:
//! queries (1)–(5), one per nesting type, each classified, transformed,
//! and cross-checked against nested iteration.
//!
//! ```sh
//! cargo run --example suppliers_parts
//! ```

use nested_query_opt::analyzer::NestingType;
use nested_query_opt::db::{Database, QueryOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), SNAME CHAR(10), STATUS INT, CITY CHAR(10));
         CREATE TABLE P (PNO CHAR(4), PNAME CHAR(10), COLOR CHAR(8), WEIGHT INT, CITY CHAR(10));
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT, ORIGIN CHAR(10));
         INSERT INTO S VALUES
           ('S1','SMITH',20,'LONDON'), ('S2','JONES',10,'PARIS'),
           ('S3','BLAKE',30,'PARIS'),  ('S4','CLARK',20,'LONDON'),
           ('S5','ADAMS',30,'ATHENS');
         INSERT INTO P VALUES
           ('P1','NUT','RED',12,'LONDON'),  ('P2','BOLT','GREEN',17,'PARIS'),
           ('P3','SCREW','BLUE',17,'ROME'), ('P4','SCREW','RED',14,'LONDON'),
           ('P5','CAM','BLUE',12,'PARIS'),  ('P6','COG','RED',19,'LONDON');
         INSERT INTO SP VALUES
           ('S1','P1',300,'LONDON'), ('S1','P2',200,'PARIS'),
           ('S1','P3',400,'ROME'),   ('S1','P4',200,'LONDON'),
           ('S1','P5',100,'PARIS'),  ('S1','P6',100,'LONDON'),
           ('S2','P1',300,'PARIS'),  ('S2','P2',400,'PARIS'),
           ('S3','P2',200,'PARIS'),  ('S4','P2',200,'LONDON'),
           ('S4','P4',300,'LONDON'), ('S4','P5',400,'LONDON');",
    )?;

    let examples: &[(&str, &str, NestingType)] = &[
        (
            "Query (1): names of suppliers who supply part P2",
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')",
            NestingType::TypeN,
        ),
        (
            "Query (2): shipments of the highest-numbered part (type-A)",
            "SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
            NestingType::TypeA,
        ),
        (
            "Query (3): shipments of parts heavier than 15 (type-N)",
            "SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 15)",
            NestingType::TypeN,
        ),
        (
            "Query (4): suppliers shipping >100 from their own city (type-J)",
            "SELECT SNAME FROM S WHERE SNO IS IN \
             (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
            NestingType::TypeJ,
        ),
        (
            "Query (5): parts with the highest part number shipped from their city (type-JA)",
            "SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
            NestingType::TypeJA,
        ),
    ];

    for (title, sql, expected_type) in examples {
        println!("══ {title}");
        println!("   {sql}");

        // Classification per Kim's taxonomy.
        let tree = db.query_tree(sql)?;
        let (ty, _) = &tree.children[0];
        println!("   classified: {ty} (expected {expected_type})");
        assert_eq!(ty, expected_type);

        // Ground truth vs transformed.
        let ni = db.query_with(sql, &QueryOptions::nested_iteration())?;
        let opts = QueryOptions {
            unnest: nested_query_opt::core::UnnestOptions {
                preserve_duplicates: true,
                ..Default::default()
            },
            ..QueryOptions::transformed()
        };
        let tr = db.query_with(sql, &opts)?;
        assert!(
            tr.relation.same_set(&ni.relation),
            "strategies disagree on {sql}"
        );
        println!(
            "   nested iteration: {:>4} page I/Os | transformed: {:>4} page I/Os",
            ni.io.total(),
            tr.io.total()
        );
        println!("{}", ni.relation);
        println!();
    }
    Ok(())
}
