//! Exploring the Section-7 cost model: the four NEST-JA2 variants across
//! buffer sizes and temporary-table sizes, plus the nested-iteration
//! baseline — the paper's "each of which may be estimated by the
//! optimizer" rendered as tables.
//!
//! ```sh
//! cargo run --example cost_model
//! ```

use nested_query_opt::core::cost::{
    ja2_cost, nested_iteration_cost_j, sort_cost, Ja2Params, JoinMethod,
};

fn main() {
    // The paper's own example first.
    let p = Ja2Params::paper_example();
    println!("Section 7.4 example: Pi={} Pj={} Pt2={} Pt3={} Pt4={} Pt={} B={} f(i)·Ni={}\n",
        p.pi, p.pj, p.pt2, p.pt3, p.pt4, p.pt, p.b, p.fi_ni);
    println!(
        "nested iteration (worst case): {:>6.0} page I/Os",
        nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni)
    );
    for m1 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
        for m2 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
            let c = ja2_cost(&p, m1, m2);
            println!(
                "NEST-JA2 {:>11} / {:>11}: {:>6.0}  (steps {:>5.1} + {:>6.1} + {:>5.1})",
                m1.name(),
                m2.name(),
                c.total(),
                c.outer_projection,
                c.temp_creation,
                c.final_join
            );
        }
    }

    // How the best variant changes with buffer size.
    println!("\nbest NEST-JA2 variant by buffer size (same relation sizes):");
    println!("{:>4}  {:>22}  {:>8}  {:>8}", "B", "best variant", "cost", "NI cost");
    for b in [3.0, 4.0, 6.0, 9.0, 16.0, 31.0, 64.0] {
        let p = Ja2Params { b, ..Ja2Params::paper_example() };
        let mut best = (f64::INFINITY, "");
        for (m1, m2, name) in [
            (JoinMethod::NestedLoop, JoinMethod::NestedLoop, "NL/NL"),
            (JoinMethod::NestedLoop, JoinMethod::MergeJoin, "NL/MJ"),
            (JoinMethod::MergeJoin, JoinMethod::NestedLoop, "MJ/NL"),
            (JoinMethod::MergeJoin, JoinMethod::MergeJoin, "MJ/MJ"),
        ] {
            let c = ja2_cost(&p, m1, m2).total();
            if c < best.0 {
                best = (c, name);
            }
        }
        println!(
            "{b:>4}  {:>22}  {:>8.0}  {:>8.0}",
            best.1,
            best.0,
            nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni)
        );
    }

    // The sort term that drives everything.
    println!("\nthe sort term 2·P·log_(B-1)(P) at B = 6:");
    println!("{:>6}  {:>10}", "P", "sort cost");
    for pages in [5.0, 10.0, 50.0, 100.0, 500.0, 1000.0] {
        println!("{pages:>6}  {:>10.0}", sort_cost(pages, 6.0));
    }
    println!(
        "\nReading: below B−1 pages the nested-loop variants win (no sorts);\n\
         beyond that the merge variants take over, and the final-join method\n\
         flips to nested loops exactly when Rt fits back into the buffer —\n\
         the structure the paper's optimizer is meant to search."
    );
}
