//! The Section-5 "bug museum": run Kiessling's Q2 and the paper's Q5 on
//! the exact example data, under the correct reference, Kim's buggy
//! NEST-JA, and the paper's NEST-JA2, printing the tables the way the
//! paper does.
//!
//! ```sh
//! cargo run --example shipments_audit
//! ```

use nested_query_opt::core::{JaVariant, UnnestOptions};
use nested_query_opt::db::{Database, QueryOptions, Strategy};

fn kim() -> QueryOptions {
    QueryOptions {
        strategy: Strategy::Transform,
        unnest: UnnestOptions { ja_variant: JaVariant::KimOriginal, ..Default::default() },
        cold_start: true,
        ..Default::default()
    }
}

fn no_projection() -> QueryOptions {
    QueryOptions {
        strategy: Strategy::Transform,
        unnest: UnnestOptions { ja_variant: JaVariant::Ja2NoProjection, ..Default::default() },
        cold_start: true,
        ..Default::default()
    }
}

fn show(db: &Database, sql: &str, label: &str, opts: &QueryOptions) {
    match db.query_with(sql, opts) {
        Ok(out) => println!("— {label}:\n{}\n", out.relation),
        Err(e) => println!("— {label}: error: {e}\n"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Section 5.1: the COUNT bug --------------------------------
    println!("════ Section 5.1 — the COUNT bug ════\n");
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
           (10, 2, 8-10-81), (8, 5, 5-7-83);",
    )?;
    let q2 = "SELECT PNUM FROM PARTS WHERE QOH = \
              (SELECT COUNT(SHIPDATE) FROM SUPPLY \
               WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";
    println!("Query Q2 [KIE 84]: {q2}\n");
    show(&db, q2, "nested iteration (correct: 10, 8)", &QueryOptions::nested_iteration());
    show(&db, q2, "Kim's NEST-JA (loses part 8 — COUNT is never 0)", &kim());
    show(&db, q2, "NEST-JA2 (outer join restores the zero count)", &QueryOptions::transformed_merge());

    // ---- Section 5.3: relations other than equality -----------------
    println!("════ Section 5.3 — the non-equality-operator bug ════\n");
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 0), (10, 4), (8, 4);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78), (9, 5, 3-2-79);",
    )?;
    let q5 = "SELECT PNUM FROM PARTS WHERE QOH = \
              (SELECT MAX(QUAN) FROM SUPPLY \
               WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)";
    println!("Query Q5: {q5}\n");
    show(&db, q5, "nested iteration (correct: 8)", &QueryOptions::nested_iteration());
    show(&db, q5, "Kim's NEST-JA (wrong: 10, 8 — aggregates per value, not range)", &kim());
    show(&db, q5, "NEST-JA2 (joins over the range first)", &QueryOptions::transformed_merge());

    // ---- Section 5.4: duplicates in the outer join column ----------
    println!("════ Section 5.4 — the duplicates problem ════\n");
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (3, 2), (10, 1), (10, 0), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 8/14/77), (3, 2, 11/11/78), (10, 1, 6/22/76);",
    )?;
    println!("Same query Q2, duplicates in PARTS.PNUM\n");
    show(&db, q2, "nested iteration (correct: 3, 10, 8)", &QueryOptions::nested_iteration());
    show(
        &db,
        q2,
        "outer join WITHOUT the projection step (wrong: 8 — counts inflated)",
        &no_projection(),
    );
    show(&db, q2, "full NEST-JA2 (DISTINCT projection first)", &QueryOptions::transformed_merge());

    // ---- The transformation pipeline, narrated ----------------------
    println!("════ NEST-JA2 pipeline for Q2 (Section 6.1 walkthrough) ════\n");
    let out = db.query_with(q2, &QueryOptions::transformed_merge())?;
    for line in &out.explain {
        println!("  {line}");
    }
    println!("\nplan:\n{}", db.plan(q2)?);
    Ok(())
}
