//! Section 9 live: a Figure-2-shaped query tree (root A, children on
//! multiple branches, a trans-aggregate join predicate spanning the
//! aggregate block), transformed by the recursive `nest_g` and verified
//! against nested iteration.
//!
//! ```sh
//! cargo run --example deep_nesting
//! ```

use nested_query_opt::core::UnnestOptions;
use nested_query_opt::db::{Database, QueryOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), SNAME CHAR(10), STATUS INT, CITY CHAR(10));
         CREATE TABLE P (PNO CHAR(4), PNAME CHAR(10), COLOR CHAR(8), WEIGHT INT, CITY CHAR(10));
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT, ORIGIN CHAR(10));
         INSERT INTO S VALUES
           ('S1','SMITH',400,'LONDON'), ('S2','JONES',400,'PARIS'),
           ('S3','BLAKE',30,'PARIS'),   ('S4','CLARK',20,'LONDON'),
           ('S5','ADAMS',30,'ATHENS');
         INSERT INTO P VALUES
           ('P1','NUT','RED',12,'LONDON'),  ('P2','BOLT','GREEN',17,'PARIS'),
           ('P3','SCREW','BLUE',17,'ROME'), ('P4','SCREW','RED',14,'LONDON'),
           ('P5','CAM','BLUE',12,'PARIS'),  ('P6','COG','RED',19,'LONDON');
         INSERT INTO SP VALUES
           ('S1','P1',300,'LONDON'), ('S1','P2',200,'PARIS'),
           ('S1','P3',400,'ROME'),   ('S1','P4',200,'LONDON'),
           ('S1','P5',100,'PARIS'),  ('S1','P6',100,'LONDON'),
           ('S2','P1',300,'PARIS'),  ('S2','P2',400,'PARIS'),
           ('S3','P2',200,'PARIS'),  ('S4','P2',200,'LONDON'),
           ('S4','P4',300,'LONDON'), ('S4','P5',400,'LONDON');",
    )?;

    // A four-level nested query shaped like Figure 2:
    //   A (root over S)
    //   ├── B (aggregate block over SP)  — type-JA once E's predicate is
    //   │   └── C (over P)               inherited upward
    //   │       └── D (over SP X, references S.CITY — the trans-aggregate
    //   │              join predicate spanning B)
    //   └── E (over P, uncorrelated)
    let sql = "SELECT SNAME FROM S WHERE \
                 STATUS = (SELECT MAX(QTY) FROM SP WHERE PNO IN \
                             (SELECT PNO FROM P WHERE PNO IN \
                                (SELECT PNO FROM SP X WHERE X.ORIGIN = S.CITY))) \
                 AND CITY IN (SELECT CITY FROM P)";

    println!("query:\n  {sql}\n");

    // 1. The query tree with classified edges.
    let tree = db.query_tree(sql)?;
    println!("query tree (Figure 2 style):\n{}", tree.render());
    println!(
        "blocks: {}, depth: {}, contains type-JA after inheritance: see trace below\n",
        tree.block_count(),
        tree.depth()
    );

    // 2. The recursive transformation, step by step.
    let plan = db.plan(sql)?;
    println!("transformation trace (postorder nest_g):");
    for line in &plan.trace {
        println!("  · {line}");
    }
    println!("\nresulting plan:\n{plan}\n");

    // 3. Execute both ways and compare.
    let ni = db.query_with(sql, &QueryOptions::nested_iteration())?;
    let opts = QueryOptions {
        unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
        ..QueryOptions::transformed()
    };
    let tr = db.query_with(sql, &opts)?;
    assert!(tr.relation.same_set(&ni.relation), "strategies must agree");
    println!("nested iteration: {} | transformed: {}", ni.io, tr.io);
    println!("\nresult:\n{}", ni.relation);
    Ok(())
}
