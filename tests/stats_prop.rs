//! The statistics registry's load-bearing invariant: **observation never
//! perturbs the figure of merit**. Every figure and table in the repo is
//! denominated in counted page I/O, and PR-over-PR those numbers must not
//! move because an always-on statistics subsystem appeared under them.
//!
//! For generated databases and nested queries, a run with statistics
//! collection ON must be byte-identical to a run with it OFF in
//!
//! * the result rows (values *and* order),
//! * the full four-counter I/O trace (reads, writes, buffer hits, buffer
//!   misses — not just the reads+writes headline), and
//! * the error rendering when the query fails,
//!
//! across worker thread counts (1 vs 4), both evaluation strategies
//! (nested iteration and transform), and both storage backends (in-memory
//! and the durable page store). The stats side additionally queries a
//! system view after the workload, proving that *reading* statistics
//! moves no counter either (system views live on uncounted system pages).
//!
//! Replays and shrinks through the usual testkit machinery
//! (`NSQL_TEST_SEED`, `NSQL_TEST_CASES`).

use nested_query_opt::diff::{gen_case, DiffCase};
use nsql_db::{Database, ExecMode, QueryOptions, Strategy};
use nsql_storage::IoSnapshot;
use nsql_testkit::TempDir;
use nsql_types::Relation;

fn opts(strategy: Strategy, threads: usize) -> QueryOptions {
    QueryOptions {
        strategy,
        cold_start: true,
        threads,
        exec_mode: ExecMode::Row,
        ..Default::default()
    }
}

/// Load the case's tables into a fresh in-memory database.
fn mem_db(tables: &[(String, Relation)]) -> Database {
    let mut db = Database::with_storage(8, 256);
    for (name, rel) in tables {
        db.catalog_mut().load_table(name, rel).expect("unique generated table names");
    }
    db
}

/// Load the case's tables into a fresh file-backed database under `dir`.
fn file_db(tables: &[(String, Relation)], dir: &TempDir) -> Database {
    let mut db = Database::open_with(8, 256, dir.path()).expect("open durable store");
    for (name, rel) in tables {
        db.catalog_mut().load_table(name, rel).expect("unique generated table names");
    }
    db
}

/// One observed run: the query outcome (rows in output order, or the error
/// rendering) plus the *full* four-counter I/O delta across the run —
/// errors must reproduce with identical traces too.
type Observed = (Result<Vec<nsql_types::Tuple>, String>, IoSnapshot);

fn observe(db: &Database, case: &DiffCase, o: &QueryOptions, stats_on: bool) -> Observed {
    db.stats().set_enabled(stats_on);
    let before = db.storage().io_snapshot();
    let outcome = match db.run_query(&case.query, o) {
        Ok(out) => Ok(out.relation.tuples().to_vec()),
        Err(e) => Err(format!("{e}")),
    };
    if stats_on {
        // Reading statistics back is part of the stats-on run: the system
        // view materializes onto uncounted system pages, so even this
        // query-over-the-registry must leave the trace untouched.
        db.query("SELECT CALLS FROM NSQL_STAT_STATEMENTS")
            .expect("system view is always queryable");
    }
    (outcome, db.storage().io_snapshot().since(&before))
}

/// Rows and the four-counter I/O trace are byte-identical with statistics
/// collection on vs off, for both strategies, thread counts 1 and 4, and
/// both storage backends.
#[test]
fn stats_collection_is_invisible_in_rows_and_io() {
    nsql_testkit::forall(80, "stats_on_off_invariance", gen_case, |case| {
        // Shrink candidates may drop a FROM entry whose alias is still
        // referenced; such queries run nowhere, so there is nothing to pin.
        {
            let db = mem_db(&case.tables);
            if nsql_analyzer::validate_query(db.catalog(), &case.query).is_err() {
                return Ok(());
            }
        }
        for strategy in [Strategy::NestedIteration, Strategy::Transform] {
            for threads in [1usize, 4] {
                let o = opts(strategy, threads);
                // In-memory backend.
                let off = observe(&mem_db(&case.tables), case, &o, false);
                let on = observe(&mem_db(&case.tables), case, &o, true);
                if on != off {
                    return Err(diverged("mem", strategy, threads, case, &off, &on));
                }
                // Durable page-store backend.
                let dir = TempDir::new("nsql-stats-prop-off");
                let off = observe(&file_db(&case.tables, &dir), case, &o, false);
                let dir = TempDir::new("nsql-stats-prop-on");
                let on = observe(&file_db(&case.tables, &dir), case, &o, true);
                if on != off {
                    return Err(diverged("file", strategy, threads, case, &off, &on));
                }
            }
        }
        Ok(())
    });
}

fn diverged(
    backend: &str,
    strategy: Strategy,
    threads: usize,
    case: &DiffCase,
    off: &Observed,
    on: &Observed,
) -> String {
    format!(
        "stats collection perturbed the run ({backend}, {}, {threads} thread(s))\n\
         off: {off:?}\non:  {on:?}\nsql: {}",
        strategy.name(),
        nsql_sql::print_query(&case.query)
    )
}

/// After a stats-on run, the registry actually holds the workload: the
/// fingerprint aggregates are queryable and count every call. (The
/// invariance test above would pass vacuously if collection silently never
/// happened; this pins the other side.)
#[test]
fn stats_on_actually_collects() {
    nsql_testkit::forall(40, "stats_on_collects", gen_case, |case| {
        let db = mem_db(&case.tables);
        if nsql_analyzer::validate_query(db.catalog(), &case.query).is_err() {
            return Ok(());
        }
        db.stats().set_enabled(true);
        let o = opts(Strategy::NestedIteration, 1);
        let _ = db.run_query(&case.query, &o);
        let _ = db.run_query(&case.query, &o);
        let fp = nsql_analyzer::query_fingerprint(&case.query);
        let snap = db.stats().snapshot();
        let Some(stmt) = snap.statements.iter().find(|s| s.query == fp) else {
            return Err(format!("fingerprint not aggregated: {fp}"));
        };
        if stmt.calls != 2 {
            return Err(format!("expected 2 calls for {fp}, saw {}", stmt.calls));
        }
        if stmt.min_us > stmt.max_us || stmt.total_us < stmt.max_us {
            return Err(format!("inconsistent timing aggregates: {stmt:?}"));
        }
        Ok(())
    });
}
