//! Robustness: degenerate databases (empty tables, single rows, NULLs in
//! data), non-integer join columns, and error paths. Every case compares
//! the transformed execution against nested iteration or pins an exact
//! error.

use nested_query_opt::db::{Database, DbError, QueryOptions};

const Q_JA: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)";

fn db_with(parts: &str, supply: &str) -> Database {
    let mut db = Database::new();
    db.execute_script(&format!(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT);
         {parts}{supply}"
    ))
    .unwrap();
    db
}

fn check(db: &Database, sql: &str) {
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert!(
        tr.relation.same_bag(&ni.relation),
        "{sql}\nNI:\n{}\nTR:\n{}",
        ni.relation,
        tr.relation
    );
}

#[test]
fn both_tables_empty() {
    let db = db_with("", "");
    check(&db, Q_JA);
    let r = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    assert!(r.relation.is_empty());
}

#[test]
fn empty_inner_relation_gives_zero_counts() {
    // With no SUPPLY rows at all, every part's count is 0: parts with
    // QOH = 0 must survive — only possible via the outer join.
    let db = db_with("INSERT INTO PARTS VALUES (1, 0), (2, 3);", "");
    check(&db, Q_JA);
    let r = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    assert_eq!(r.relation.len(), 1, "{}", r.relation);
}

#[test]
fn empty_outer_relation() {
    let db = db_with("", "INSERT INTO SUPPLY VALUES (1, 5);");
    check(&db, Q_JA);
}

#[test]
fn single_row_each() {
    let db = db_with(
        "INSERT INTO PARTS VALUES (1, 1);",
        "INSERT INTO SUPPLY VALUES (1, 9);",
    );
    check(&db, Q_JA);
    let r = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    assert_eq!(r.relation.len(), 1);
}

#[test]
fn nulls_in_aggregated_column() {
    // COUNT(QUAN) ignores NULL QUANs; a part whose only shipments have
    // NULL quantities counts 0.
    let db = db_with(
        "INSERT INTO PARTS VALUES (1, 0), (2, 2);",
        "INSERT INTO SUPPLY VALUES (1, NULL), (2, 4), (2, 5), (1, NULL);",
    );
    check(&db, Q_JA);
    let r = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    // Part 1: COUNT = 0 = QOH ✓. Part 2: COUNT = 2 = QOH ✓.
    assert_eq!(r.relation.len(), 2, "{}", r.relation);
}

#[test]
fn null_outer_join_key_is_a_documented_divergence_for_count() {
    // A corner the paper never considers: a NULL in the *outer* join
    // column. Under nested iteration, the correlation is unknown for every
    // inner row, so COUNT = 0 and a QOH-0 outer tuple SURVIVES. NEST-JA2's
    // final equality join (TEMP3.PNUM = PARTS.PNUM) can never match a NULL
    // key, so the transformed query drops the row. The paper's algorithm
    // genuinely has this behaviour (a modern fix would use null-safe
    // equality); we pin it as a documented divergence, like the Section-8
    // ANY/ALL caveat. See DESIGN.md.
    let db = db_with(
        "INSERT INTO PARTS VALUES (NULL, 0), (1, 1);",
        "INSERT INTO SUPPLY VALUES (NULL, 9), (1, 9);",
    );
    let ni = db.query_with(Q_JA, &QueryOptions::nested_iteration()).unwrap();
    assert_eq!(ni.relation.len(), 2, "reference keeps the NULL-keyed row\n{}", ni.relation);
    let tr = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    assert_eq!(tr.relation.len(), 1, "transformed drops it\n{}", tr.relation);

    // With MAX the two strategies agree: MAX(∅) = NULL makes the
    // comparison unknown under nested iteration too, so the row is dropped
    // on both paths.
    check(
        &db,
        "SELECT PNUM FROM PARTS WHERE QOH = \
         (SELECT MAX(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
    );
}

#[test]
fn string_join_columns() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE DEPT (DNAME CHAR(10), HEADCOUNT INT);
         CREATE TABLE EMP (DNAME CHAR(10), SAL INT);
         INSERT INTO DEPT VALUES ('SALES', 2), ('ENG', 0), ('OPS', 1);
         INSERT INTO EMP VALUES ('SALES', 10), ('SALES', 20), ('OPS', 30);",
    )
    .unwrap();
    let sql = "SELECT DNAME FROM DEPT WHERE HEADCOUNT = \
               (SELECT COUNT(SAL) FROM EMP WHERE EMP.DNAME = DEPT.DNAME)";
    check(&db, sql);
    let r = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert_eq!(r.relation.len(), 3, "{}", r.relation);
}

#[test]
fn date_join_predicate_in_inner_restriction() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE ORDERS (OID INT, PLACED DATE);
         CREATE TABLE EVENTS (OID INT, AT DATE);
         INSERT INTO ORDERS VALUES (1, 1-1-80), (2, 6-1-81);
         INSERT INTO EVENTS VALUES (1, 7-3-79), (1, 2-2-80), (2, 1-1-80);",
    )
    .unwrap();
    // Orders with exactly one event before they were placed (correlated on
    // a DATE comparison — a non-equality correlation on dates).
    let sql = "SELECT OID FROM ORDERS WHERE 1 = \
               (SELECT COUNT(OID) FROM EVENTS WHERE EVENTS.AT < ORDERS.PLACED \
                AND EVENTS.OID = ORDERS.OID)";
    check(&db, sql);
}

#[test]
fn unsupported_transform_is_a_clean_error_not_a_wrong_answer() {
    let db = db_with(
        "INSERT INTO PARTS VALUES (1, 1);",
        "INSERT INTO SUPPLY VALUES (1, 1);",
    );
    // Subquery under OR — outside the algorithms' class.
    let sql = "SELECT PNUM FROM PARTS WHERE QOH = 99 OR \
               PNUM IN (SELECT PNUM FROM SUPPLY)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    assert_eq!(ni.relation.len(), 1);
    let tr = db.query_with(sql, &QueryOptions::transformed_merge());
    assert!(
        matches!(tr, Err(DbError::Transform(_))),
        "must refuse, not silently mis-evaluate"
    );
}

#[test]
fn arity_and_type_errors_are_reported() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE T (A INT, B CHAR(4));").unwrap();
    // Arity mismatch on INSERT.
    let e = db.execute_script("INSERT INTO T VALUES (1);");
    assert!(matches!(e, Err(DbError::Type(_))), "{e:?}");
    // Comparing string column to int literal is a type error at runtime.
    db.execute_script("INSERT INTO T VALUES (1, 'X');").unwrap();
    let e = db.query("SELECT A FROM T WHERE B = 1");
    assert!(e.is_err());
}

#[test]
fn insert_into_missing_table_is_catalog_error() {
    let mut db = Database::new();
    let e = db.execute_script("INSERT INTO NOPE VALUES (1);");
    assert!(matches!(e, Err(DbError::Catalog(_))), "{e:?}");
}

#[test]
fn repeated_queries_are_deterministic() {
    let db = db_with(
        "INSERT INTO PARTS VALUES (1, 2), (2, 1), (3, 0);",
        "INSERT INTO SUPPLY VALUES (1, 5), (1, 6), (2, 7);",
    );
    let a = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    let b = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    assert!(a.relation.same_bag(&b.relation));
    assert_eq!(a.io, b.io, "cold-start runs must cost identically");
}

#[test]
fn no_disk_page_leak_across_queries() {
    // Temporary tables are dropped after each query; repeated runs must
    // not grow the live page count.
    let db = db_with(
        "INSERT INTO PARTS VALUES (1, 2), (2, 1);",
        "INSERT INTO SUPPLY VALUES (1, 5), (2, 7);",
    );
    let _ = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    let baseline = db.storage().io_stats();
    for _ in 0..5 {
        let _ = db.query_with(Q_JA, &QueryOptions::transformed_merge()).unwrap();
    }
    let after = db.storage().io_stats();
    // I/O per run is constant (checked above); this asserts the per-run
    // delta stays flat rather than growing with accumulated garbage.
    let per_run = (after.total() - baseline.total()) / 5;
    let single = baseline.total();
    assert!(per_run <= single, "per-run I/O {per_run} grew beyond first run {single}");
}

#[test]
fn ja_with_two_outer_tables() {
    // The outer block joins two tables; the correlation references one of
    // them while the compared operand comes from the other.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE A (X INT, V INT);
         CREATE TABLE B (X INT, K INT);
         CREATE TABLE C (K INT, W INT);
         INSERT INTO A VALUES (1, 2), (2, 0), (3, 1);
         INSERT INTO B VALUES (1, 10), (2, 20), (3, 30);
         INSERT INTO C VALUES (10, 5), (10, 6), (30, 7);",
    )
    .unwrap();
    let sql = "SELECT A.X FROM A, B WHERE A.X = B.X AND A.V = \
               (SELECT COUNT(W) FROM C WHERE C.K = B.K)";
    check(&db, sql);
    let r = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    // A(1): count over C.K=10 → 2 = V ✓; A(2): count over K=20 → 0 = V ✓;
    // A(3): count over K=30 → 1 = V ✓.
    assert_eq!(r.relation.len(), 3, "{}", r.relation);
}

#[test]
fn ja_outer_operand_expression_side_flipped() {
    // The scalar subquery written on the LEFT of the comparison.
    let db = db_with(
        "INSERT INTO PARTS VALUES (1, 1), (2, 5);",
        "INSERT INTO SUPPLY VALUES (1, 9), (2, 1), (2, 2);",
    );
    let sql = "SELECT PNUM FROM PARTS WHERE \
               (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM) = QOH";
    check(&db, sql);
}
