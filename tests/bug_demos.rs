//! Experiments E3–E8: the paper's Section 5–6 bug demonstrations,
//! cell-for-cell.
//!
//! Each test pins the three-way comparison the paper makes: the
//! nested-iteration ground truth, Kim's buggy NEST-JA output, and the
//! NEST-JA2 fix.

use nested_query_opt::core::{JaVariant, UnnestOptions};
use nested_query_opt::db::{Database, QueryOptions, Strategy};
use nested_query_opt::types::Value;

/// Kiessling's query Q2 (Section 5.1).
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

/// Query Q5 (Section 5.3).
const Q5: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT MAX(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)";

fn kiessling_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
           (10, 2, 8-10-81), (8, 5, 5-7-83);",
    )
    .unwrap();
    db
}

fn section_5_3_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 0), (10, 4), (8, 4);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78), (9, 5, 3-2-79);",
    )
    .unwrap();
    db
}

fn section_5_4_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (3, 2), (10, 1), (10, 0), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 8/14/77), (3, 2, 11/11/78), (10, 1, 6/22/76);",
    )
    .unwrap();
    db
}

fn ints(db: &Database, sql: &str, opts: &QueryOptions) -> Vec<i64> {
    let out = db.query_with(sql, opts).unwrap();
    let mut vals: Vec<i64> = out
        .relation
        .tuples()
        .iter()
        .map(|t| match t.get(0) {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other}"),
        })
        .collect();
    vals.sort_unstable();
    vals
}

fn kim_opts() -> QueryOptions {
    QueryOptions {
        strategy: Strategy::Transform,
        unnest: UnnestOptions { ja_variant: JaVariant::KimOriginal, ..Default::default() },
        cold_start: true,
        ..Default::default()
    }
}

fn no_projection_opts() -> QueryOptions {
    QueryOptions {
        strategy: Strategy::Transform,
        unnest: UnnestOptions { ja_variant: JaVariant::Ja2NoProjection, ..Default::default() },
        cold_start: true,
        ..Default::default()
    }
}

// --------------------------------------------------------------------- E3

#[test]
fn e3_count_bug_three_way() {
    let db = kiessling_db();
    // Ground truth [KIE 84:4]: {10, 8}.
    assert_eq!(ints(&db, Q2, &QueryOptions::nested_iteration()), vec![8, 10]);
    // Kim's NEST-JA loses part 8 (COUNT can never be 0).
    assert_eq!(ints(&db, Q2, &kim_opts()), vec![10]);
    // NEST-JA2 restores it (E4).
    assert_eq!(ints(&db, Q2, &QueryOptions::transformed_merge()), vec![8, 10]);
}

#[test]
fn e4_temp3_contents_match_section_5_2() {
    // The paper's TEMP3: {(3, 2), (10, 1), (8, 0)}.
    let db = kiessling_db();
    let plan = db.plan(Q2).unwrap();
    assert_eq!(plan.temps.len(), 3);
    let exec = nested_query_opt::engine::Exec::new(db.storage().clone());
    let mut pe = nested_query_opt::db::plan_exec::PlanExecutor::new(
        exec,
        db.catalog(),
        nested_query_opt::db::JoinPolicy::ForceMergeJoin,
    );
    let rel = pe.execute_transform_plan(&plan, false).unwrap();
    // Inspect TEMP3 (the aggregate temporary).
    let temp3 = pe.temp("TEMP3").expect("TEMP3 registered");
    let mut rows: Vec<(i64, i64)> = temp3
        .file
        .scan(db.storage())
        .map(|t| {
            let Value::Int(p) = t.get(0) else { panic!() };
            let Value::Int(c) = t.get(1) else { panic!() };
            (*p, *c)
        })
        .collect();
    rows.sort_unstable();
    assert_eq!(rows, vec![(3, 2), (8, 0), (10, 1)]);
    let mut finals: Vec<String> = rel.tuples().iter().map(|t| t.get(0).to_string()).collect();
    finals.sort();
    assert_eq!(finals, vec!["10", "8"]);
}

// --------------------------------------------------------------------- E5

#[test]
fn e5_count_star_is_rewritten_to_join_column() {
    // Section 5.2.1: with COUNT(*), the temporary must count the join
    // column, or padded rows are counted as 1. Our COUNT(*) path must give
    // the same answer as COUNT(SHIPDATE).
    let db = kiessling_db();
    let q2_star = Q2.replace("COUNT(SHIPDATE)", "COUNT(*)");
    assert_eq!(ints(&db, &q2_star, &QueryOptions::nested_iteration()), vec![8, 10]);
    assert_eq!(ints(&db, &q2_star, &QueryOptions::transformed_merge()), vec![8, 10]);
}

// --------------------------------------------------------------------- E6

#[test]
fn e6_non_equality_bug_three_way() {
    let db = section_5_3_db();
    // Nested iteration: {8} (Section 5.3).
    assert_eq!(ints(&db, Q5, &QueryOptions::nested_iteration()), vec![8]);
    // Kim's NEST-JA: {10, 8} — aggregates per join-column value, not range.
    assert_eq!(ints(&db, Q5, &kim_opts()), vec![8, 10]);
    // NEST-JA2 joins over the range before aggregating: {8}.
    assert_eq!(ints(&db, Q5, &QueryOptions::transformed_merge()), vec![8]);
}

#[test]
fn e6_kim_temp5_contents() {
    // Kim's TEMP5 on the Section-5.3 data: {(3,4), (10,1), (9,5)}.
    let db = section_5_3_db();
    let q = nested_query_opt::sql::parse_query(Q5).unwrap();
    let plan = nested_query_opt::core::transform_query(
        db.catalog(),
        &q,
        &UnnestOptions { ja_variant: JaVariant::KimOriginal, ..Default::default() },
    )
    .unwrap();
    let exec = nested_query_opt::engine::Exec::new(db.storage().clone());
    let mut pe = nested_query_opt::db::plan_exec::PlanExecutor::new(
        exec,
        db.catalog(),
        nested_query_opt::db::JoinPolicy::ForceMergeJoin,
    );
    let _ = pe.execute_transform_plan(&plan, false).unwrap();
    let temp = pe.temp("TEMP1").expect("Kim's temporary");
    let mut rows: Vec<(i64, i64)> = temp
        .file
        .scan(db.storage())
        .map(|t| {
            let Value::Int(p) = t.get(0) else { panic!() };
            let Value::Int(m) = t.get(1) else { panic!() };
            (*p, *m)
        })
        .collect();
    rows.sort_unstable();
    assert_eq!(rows, vec![(3, 4), (9, 5), (10, 1)]);
}

// --------------------------------------------------------------------- E7

#[test]
fn e7_duplicates_problem_three_way() {
    let db = section_5_4_db();
    // Nested iteration: {3, 10, 8} (Section 5.4).
    assert_eq!(ints(&db, Q2, &QueryOptions::nested_iteration()), vec![3, 8, 10]);
    // The outer-join fix *without* the projection step: duplicates in
    // PARTS.PNUM inflate the counts — result {8} only.
    assert_eq!(ints(&db, Q2, &no_projection_opts()), vec![8]);
    // Full NEST-JA2 (with the DISTINCT projection): correct.
    assert_eq!(ints(&db, Q2, &QueryOptions::transformed_merge()), vec![3, 8, 10]);
}

#[test]
fn e7_inflated_temp_counts_without_projection() {
    // Section 5.4's wrong TEMP3: {(3, 4), (10, 2), (8, 0)}.
    let db = section_5_4_db();
    let q = nested_query_opt::sql::parse_query(Q2).unwrap();
    let plan = nested_query_opt::core::transform_query(
        db.catalog(),
        &q,
        &UnnestOptions { ja_variant: JaVariant::Ja2NoProjection, ..Default::default() },
    )
    .unwrap();
    let exec = nested_query_opt::engine::Exec::new(db.storage().clone());
    let mut pe = nested_query_opt::db::plan_exec::PlanExecutor::new(
        exec,
        db.catalog(),
        nested_query_opt::db::JoinPolicy::ForceMergeJoin,
    );
    let _ = pe.execute_transform_plan(&plan, false).unwrap();
    let temp3 = pe.temp("TEMP3").expect("TEMP3");
    let mut rows: Vec<(i64, i64)> = temp3
        .file
        .scan(db.storage())
        .map(|t| {
            let Value::Int(p) = t.get(0) else { panic!() };
            let Value::Int(c) = t.get(1) else { panic!() };
            (*p, *c)
        })
        .collect();
    rows.sort_unstable();
    assert_eq!(rows, vec![(3, 4), (8, 0), (10, 2)]);
}

// --------------------------------------------------------------------- E8

#[test]
fn e8_nest_ja2_walkthrough_temp_tables() {
    // Section 6.1's three steps on the duplicates data:
    // TEMP1 = {3, 10, 8}; TEMP3 = {(3,2), (10,1), (8,0)}; result {3,10,8}.
    let db = section_5_4_db();
    let plan = db.plan(Q2).unwrap();
    let exec = nested_query_opt::engine::Exec::new(db.storage().clone());
    let mut pe = nested_query_opt::db::plan_exec::PlanExecutor::new(
        exec,
        db.catalog(),
        nested_query_opt::db::JoinPolicy::ForceMergeJoin,
    );
    let rel = pe.execute_transform_plan(&plan, false).unwrap();

    let temp1 = pe.temp("TEMP1").expect("TEMP1");
    let mut t1: Vec<i64> = temp1
        .file
        .scan(db.storage())
        .map(|t| match t.get(0) {
            Value::Int(i) => *i,
            _ => panic!(),
        })
        .collect();
    t1.sort_unstable();
    assert_eq!(t1, vec![3, 8, 10], "TEMP1 must be the DISTINCT projection");

    let temp3 = pe.temp("TEMP3").expect("TEMP3");
    let mut t3: Vec<(i64, i64)> = temp3
        .file
        .scan(db.storage())
        .map(|t| {
            let Value::Int(p) = t.get(0) else { panic!() };
            let Value::Int(c) = t.get(1) else { panic!() };
            (*p, *c)
        })
        .collect();
    t3.sort_unstable();
    assert_eq!(t3, vec![(3, 2), (8, 0), (10, 1)]);

    let mut finals: Vec<String> = rel.tuples().iter().map(|t| t.get(0).to_string()).collect();
    finals.sort();
    assert_eq!(finals, vec!["10", "3", "8"]);
}

#[test]
fn bug_demos_are_policy_independent() {
    // The wrong answers come from the *transformation*, not the join
    // method: every physical policy reproduces the same (buggy or fixed)
    // result.
    use nested_query_opt::db::JoinPolicy;
    let db = kiessling_db();
    for policy in [JoinPolicy::ForceNestedLoop, JoinPolicy::ForceMergeJoin, JoinPolicy::CostBased]
    {
        let mut kim = kim_opts();
        kim.join_policy = policy;
        assert_eq!(ints(&db, Q2, &kim), vec![10], "{policy:?}");
        let ja2 = QueryOptions {
            strategy: Strategy::Transform,
            join_policy: policy,
            cold_start: true,
            ..Default::default()
        };
        assert_eq!(ints(&db, Q2, &ja2), vec![8, 10], "{policy:?}");
    }
}

// ------------------------------------------------------- edge-case demos

#[test]
fn count_bug_with_empty_inner_relation() {
    // The COUNT bug in its purest form: SUPPLY has no rows at all, so
    // *every* group is empty and every count is 0. Kim's NEST-JA produces
    // an empty temporary, and the join against it returns nothing — the
    // whole answer is lost, not just one row.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (10, 0), (8, 0);",
    )
    .unwrap();
    // Ground truth: the parts with QOH = 0.
    assert_eq!(ints(&db, Q2, &QueryOptions::nested_iteration()), vec![8, 10]);
    // Kim's NEST-JA: empty TEMP ⇒ empty result.
    assert_eq!(ints(&db, Q2, &kim_opts()), Vec::<i64>::new());
    // NEST-JA2's outer join pads every projected part with COUNT 0.
    assert_eq!(ints(&db, Q2, &QueryOptions::transformed_merge()), vec![8, 10]);
}

#[test]
fn null_outer_join_key_survives_the_outer_join_but_not_the_back_join() {
    // Companion to robustness.rs's documented divergence: with a NULL in
    // the outer join column, where exactly does NEST-JA2 lose the row?
    // Not at the outer join — TEMP3 carries the NULL-keyed group with
    // COUNT 0, exactly as the padding rule dictates — but at the final
    // back-join, whose equality predicate never matches a NULL key.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (NULL, 0), (10, 1);
         INSERT INTO SUPPLY VALUES (10, 7, 6-8-78);",
    )
    .unwrap();
    // Nested iteration keeps the NULL-keyed part (its COUNT is 0 = QOH).
    let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
    assert_eq!(ni.relation.len(), 2, "{}", ni.relation);

    let plan = db.plan(Q2).unwrap();
    let exec = nested_query_opt::engine::Exec::new(db.storage().clone());
    let mut pe = nested_query_opt::db::plan_exec::PlanExecutor::new(
        exec,
        db.catalog(),
        nested_query_opt::db::JoinPolicy::ForceMergeJoin,
    );
    let rel = pe.execute_transform_plan(&plan, false).unwrap();
    let temp3 = pe.temp("TEMP3").expect("TEMP3");
    let mut rows: Vec<(Option<i64>, i64)> = temp3
        .file
        .scan(db.storage())
        .map(|t| {
            let p = match t.get(0) {
                Value::Int(i) => Some(*i),
                Value::Null => None,
                other => panic!("unexpected key {other}"),
            };
            let Value::Int(c) = t.get(1) else { panic!() };
            (p, *c)
        })
        .collect();
    rows.sort_unstable();
    assert_eq!(
        rows,
        vec![(None, 0), (Some(10), 1)],
        "the outer join must pad the NULL-keyed group with COUNT 0"
    );
    // …and yet the final answer has only part 10: the back-join's
    // PARTS.PNUM = TEMP3.PNUM is unknown for NULL = NULL.
    assert_eq!(rel.len(), 1, "{rel}");
}

#[test]
fn duplicate_outer_tuples_survive_the_back_join() {
    // The flip side of the Section-5.4 duplicates problem: the DISTINCT
    // projection that fixes the counts must not *lose* duplicates in the
    // final answer. The back-join runs against the original PARTS, so two
    // identical qualifying parts both appear — bag-equal to nested
    // iteration.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 2), (3, 2), (10, 0);
         INSERT INTO SUPPLY VALUES (3, 4, 7-3-79), (3, 2, 10-1-78);",
    )
    .unwrap();
    let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(Q2, &QueryOptions::transformed_merge()).unwrap();
    assert!(
        tr.relation.same_bag(&ni.relation),
        "NI:\n{}\nTR:\n{}",
        ni.relation,
        tr.relation
    );
    // Part 3 (COUNT = 2 = QOH) twice, part 10 (COUNT = 0 = QOH) once.
    assert_eq!(ints(&db, Q2, &QueryOptions::transformed_merge()), vec![3, 3, 10]);
}

// --------------------------------------------------------------------- §5.2 ordering warning

#[test]
fn restriction_after_join_kills_padded_rows_as_the_paper_warns() {
    // Section 5.2: "the condition which applies to only one relation
    // (SUPPLY.SHIPDATE < 1-1-80) must be applied before the join is
    // performed. Otherwise the join would not contain the last row, and
    // the result would be incorrect."
    let db = kiessling_db();
    let late = QueryOptions {
        strategy: Strategy::Transform,
        unnest: UnnestOptions {
            ja_variant: JaVariant::Ja2LateRestriction,
            ..Default::default()
        },
        cold_start: true,
        ..Default::default()
    };
    // The broken ordering loses part 8 (its padded row is filtered away)
    // — the same wrong answer as Kim's NEST-JA, for a different reason.
    assert_eq!(ints(&db, Q2, &late), vec![10]);
    // The correct ordering (restrict first) keeps it.
    assert_eq!(ints(&db, Q2, &QueryOptions::transformed_merge()), vec![8, 10]);
}
