//! The differential oracle property suite.
//!
//! Random nested queries over random biased databases are evaluated by the
//! naive `nsql-oracle` interpreter and by every engine pipeline — nested
//! iteration (threads 1 and 4), batched correlated evaluation (threads 1
//! and 4, plus a cache-on variant), the NEST-G transformation under every join
//! policy (serial and parallel), the duplicate-collapsing `ForceDistinct`
//! mode, and the index-backed variants (every generated table carries a
//! B+tree on `K`; `tr-ix-prefer` forces index restriction and index
//! back-joins on, `tr-ix-never` forces them off) — and compared at the
//! strength the paper promises
//! (bag equality, downgraded or skipped only under the documented
//! divergence licenses; see DESIGN.md "Oracle semantics").
//!
//! Failures print a replayable `NSQL_TEST_SEED` and a greedily shrunk
//! counterexample (rows removed first, then the query simplified). Override
//! the case count with `NSQL_TEST_CASES`.

use nested_query_opt::diff::{run_cache_dml_property, run_diff_property};

/// The headline property: ≥600 generated query/database pairs, every
/// pipeline, zero divergences. Nested iteration is never skipped; the
/// transformation pipelines skip only under a license or an
/// unsupported-class refusal, and must still be *compared* on the majority
/// of cases (a harness that licensed everything away would prove nothing).
#[test]
fn every_pipeline_agrees_with_the_oracle() {
    let stats = run_diff_property("every_pipeline_agrees_with_the_oracle", 600);
    assert!(!stats.is_empty(), "sweep must have produced comparisons");
    // NSQL_TEST_CASES scales the sweep down for smoke runs; the 500-pair
    // acceptance floor applies to the full default run.
    let floor = match std::env::var("NSQL_TEST_CASES") {
        Ok(v) => v.parse::<u64>().unwrap_or(500).min(500),
        Err(_) => 500,
    };
    for s in &stats {
        let total = s.compared + s.skipped;
        eprintln!(
            "pipeline {:>14}: {} compared, {} skipped ({} pairs)",
            s.name, s.compared, s.skipped, total
        );
        assert!(total >= floor, "[{}] fewer than {floor} pairs generated: {total}", s.name);
        // Meaningless on tiny NSQL_TEST_SEED/NSQL_TEST_CASES replays, where
        // the one replayed case may legitimately be licensed away.
        if total >= 100 {
            assert!(
                s.compared * 2 > total,
                "[{}] licenses/refusals swallowed most cases: {} of {total} compared",
                s.name,
                s.compared
            );
        }
    }
    // The index-backed pipelines must be in the sweep: preferring the index
    // path and refusing it must both agree with the oracle on every case,
    // otherwise an index scan returning a wrong range (or a back-join
    // dropping/duplicating probes) would slip through as a silent plan
    // difference rather than a caught divergence.
    for ix in ["tr-ix-prefer", "tr-ix-never"] {
        assert!(
            stats.iter().any(|s| s.name == ix && s.compared + s.skipped > 0),
            "index pipeline {ix} missing from the sweep"
        );
    }
    // The vectorized pipelines must be in the sweep too: batch kernels and
    // the per-binding memo must be semantically invisible on every case,
    // serial and parallel, for both strategies.
    for v in ["ni-vec", "ni-vec-par4", "tr-vec-cost", "tr-vec-hash"] {
        assert!(
            stats.iter().any(|s| s.name == v && s.compared + s.skipped > 0),
            "vectorized pipeline {v} missing from the sweep"
        );
    }
    // The batched-evaluation pipelines must be in the sweep, and — like
    // nested iteration — are never licensed away: sort-deduplicating the
    // outer bindings and replaying memoized verdicts must be bag-equal to
    // the oracle on every case, serial and parallel, cache on or off, and
    // must surface the same scalar-cardinality errors.
    for b in ["ba-serial", "ba-par4", "ba-cache"] {
        let s = stats
            .iter()
            .find(|s| s.name == b)
            .unwrap_or_else(|| panic!("batched pipeline {b} missing from the sweep"));
        assert_eq!(s.skipped, 0, "[{b}] batched pipelines have no divergence licenses");
    }
}

/// Cache transparency under interleaved DML: every generated query runs
/// cache-off once and cache-on twice (populate, then hit) on both
/// strategies, with random INSERTs into every table between rounds. The
/// cache-on runs must be bit-identical to cache-off in rows *and* counted
/// page I/O, and cache-off must agree with the oracle — a stale entry
/// surviving the inserts fails three ways at once.
#[test]
fn cache_is_transparent_under_interleaved_dml() {
    let stats = run_cache_dml_property("cache_is_transparent_under_interleaved_dml", 600);
    assert!(!stats.is_empty(), "sweep must have produced comparisons");
    for v in ["ni-cache", "tr-cache"] {
        let s = stats
            .iter()
            .find(|s| s.name == v)
            .unwrap_or_else(|| panic!("cache pipeline {v} missing from the sweep"));
        let total = s.compared + s.skipped;
        eprintln!("pipeline {:>14}: {} compared, {} skipped ({} pairs)", s.name, s.compared, s.skipped, total);
        if total >= 100 {
            assert!(
                s.compared * 2 > total,
                "[{v}] licenses/refusals swallowed most cases: {} of {total} compared",
                s.compared
            );
        }
    }
}
