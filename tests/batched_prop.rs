//! Properties specific to batched correlated evaluation.
//!
//! The diff sweep (`tests/diff_prop.rs`) already holds the `ba-*` pipelines
//! to the oracle's full-strength contract; this suite pins down the two
//! claims the sweep cannot express:
//!
//! * **determinism across knobs** — rows *and* counted page I/O from a
//!   batched run are byte-identical across sort thread counts (1 vs 4) and
//!   across storage backends (in-memory vs the durable page store), on
//!   NULL- and duplicate-heavy generated databases. Only the binding sort
//!   is parallel, and it is built from `external_sort_threads`, whose
//!   counted I/O is thread-invariant by construction — this test keeps
//!   that invariant load-bearing. Errors must reproduce identically too.
//!
//! * **set-theoretic outer-block mutations** — metamorphic variants of the
//!   outer block that are semantically neutral for nested iteration must
//!   be equally neutral for the batching machinery: conjunct idempotence
//!   (`WHERE p` → `WHERE p AND p`, which doubles the memo lookups for the
//!   same verdict), conjunct reversal (replay follows the rewritten
//!   conjunct order, as nested iteration does), and outer-row duplication
//!   (every binding now occurs twice, so the sort/dedup phase halves the
//!   candidate set while replay must still answer per row). Each variant
//!   runs under both nested iteration and batched evaluation and the two
//!   must agree bag-for-bag — or raise the same error.
//!
//! Both properties replay and shrink through the usual testkit machinery
//! (`NSQL_TEST_SEED`, `NSQL_TEST_CASES`).

use nested_query_opt::diff::{gen_case, DiffCase};
use nsql_db::{Database, ExecMode, QueryOptions, Strategy};
use nsql_sql::Predicate;
use nsql_testkit::TempDir;
use nsql_types::Relation;

fn opts(strategy: Strategy, threads: usize) -> QueryOptions {
    QueryOptions { strategy, cold_start: true, threads, exec_mode: ExecMode::Row, ..Default::default() }
}

/// Load the case's tables into a fresh in-memory database.
fn mem_db(tables: &[(String, Relation)]) -> Database {
    let mut db = Database::with_storage(8, 256);
    for (name, rel) in tables {
        db.catalog_mut().load_table(name, rel).expect("unique generated table names");
    }
    db
}

/// Load the case's tables into a fresh file-backed database under `dir`.
fn file_db(tables: &[(String, Relation)], dir: &TempDir) -> Database {
    let mut db = Database::open_with(8, 256, dir.path()).expect("open durable store");
    for (name, rel) in tables {
        db.catalog_mut().load_table(name, rel).expect("unique generated table names");
    }
    db
}

/// One observed run: result rows in output order plus counted page I/O, or
/// the error rendering when the query fails.
type Observed = Result<(Vec<nsql_types::Tuple>, u64, u64), String>;

fn observe(db: &Database, case: &DiffCase, o: &QueryOptions) -> Observed {
    match db.run_query(&case.query, o) {
        Ok(out) => Ok((out.relation.tuples().to_vec(), out.io.reads, out.io.writes)),
        Err(e) => Err(format!("{e}")),
    }
}

/// Batched runs are byte-identical — rows, row *order*, page reads, page
/// writes, and error text — across sort thread counts and storage backends.
#[test]
fn batched_io_is_byte_identical_across_threads_and_backends() {
    nsql_testkit::forall(150, "batched_io_thread_backend_invariance", gen_case, |case| {
        // Shrink candidates may drop a FROM entry whose alias is still
        // referenced; such queries run nowhere, so there is nothing to pin.
        {
            let db = mem_db(&case.tables);
            if nsql_analyzer::validate_query(db.catalog(), &case.query).is_err() {
                return Ok(());
            }
        }
        let mut runs: Vec<(String, Observed)> = Vec::new();
        for threads in [1usize, 4] {
            let db = mem_db(&case.tables);
            runs.push((
                format!("mem/t{threads}"),
                observe(&db, case, &opts(Strategy::Batched, threads)),
            ));
            let dir = TempDir::new("nsql-batched-prop");
            let db = file_db(&case.tables, &dir);
            runs.push((
                format!("file/t{threads}"),
                observe(&db, case, &opts(Strategy::Batched, threads)),
            ));
        }
        let (base_name, base) = &runs[0];
        for (name, run) in &runs[1..] {
            if run != base {
                return Err(format!(
                    "batched run diverged between configs\n\
                     {base_name}: {base:?}\n{name}: {run:?}\n\
                     sql: {}",
                    nsql_sql::print_query(&case.query)
                ));
            }
        }
        Ok(())
    });
}

/// The metamorphic variants of a case: label plus (tables, query).
fn outer_block_mutations(case: &DiffCase) -> Vec<(&'static str, DiffCase)> {
    let mut variants = vec![("original", case.clone())];

    // Conjunct idempotence: WHERE p → WHERE p AND p. Every nested conjunct
    // now consults its memo twice per surviving row.
    if let Some(p) = &case.query.where_clause {
        let mut q = case.query.clone();
        q.where_clause = Some(Predicate::And(vec![p.clone(), p.clone()]));
        variants.push(("idempotent-conjunct", DiffCase { tables: case.tables.clone(), query: q }));
    }

    // Conjunct reversal: replay must follow the rewritten conjunct order
    // exactly as nested iteration does (short-circuiting included).
    if let Some(Predicate::And(ps)) = &case.query.where_clause {
        if ps.len() > 1 {
            let mut q = case.query.clone();
            let mut rev = ps.clone();
            rev.reverse();
            q.where_clause = Some(Predicate::And(rev));
            variants.push(("reversed-conjuncts", DiffCase { tables: case.tables.clone(), query: q }));
        }
    }

    // Outer-row duplication: each binding occurs twice, so the sorted
    // candidate set dedups to half while replay answers every row.
    let doubled = case
        .tables
        .iter()
        .map(|(name, rel)| {
            let mut tuples = rel.tuples().to_vec();
            tuples.extend(rel.tuples().iter().cloned());
            (name.clone(), Relation::new(rel.schema().clone(), tuples).expect("same schema"))
        })
        .collect();
    variants.push(("doubled-rows", DiffCase { tables: doubled, query: case.query.clone() }));

    variants
}

/// On every metamorphic variant, batched evaluation agrees with nested
/// iteration bag-for-bag — or errors with the same rendering.
#[test]
fn batched_matches_nested_iteration_under_outer_block_mutations() {
    nsql_testkit::forall(150, "batched_metamorphic_outer_mutations", gen_case, |case| {
        for (label, variant) in outer_block_mutations(case) {
            let db = mem_db(&variant.tables);
            if nsql_analyzer::validate_query(db.catalog(), &variant.query).is_err() {
                continue;
            }
            let ni = db.run_query(&variant.query, &opts(Strategy::NestedIteration, 1));
            let ba = db.run_query(&variant.query, &opts(Strategy::Batched, 1));
            match (ni, ba) {
                (Ok(n), Ok(b)) => {
                    if !b.relation.same_bag(&n.relation) {
                        return Err(format!(
                            "[{label}] bag disagreement\nsql: {}\nnested iteration:\n{}\nbatched:\n{}",
                            nsql_sql::print_query(&variant.query),
                            n.relation,
                            b.relation
                        ));
                    }
                }
                (Err(ne), Err(be)) => {
                    let (ne, be) = (format!("{ne}"), format!("{be}"));
                    if ne != be {
                        return Err(format!(
                            "[{label}] error disagreement\nsql: {}\nnested iteration: {ne}\nbatched: {be}",
                            nsql_sql::print_query(&variant.query)
                        ));
                    }
                }
                (n, b) => {
                    return Err(format!(
                        "[{label}] outcome disagreement\nsql: {}\nnested iteration: {n:?}\nbatched: {b:?}",
                        nsql_sql::print_query(&variant.query)
                    ));
                }
            }
        }
        Ok(())
    });
}
