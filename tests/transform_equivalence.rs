//! Equivalence oracle: for a catalog of queries in the supported dialect,
//! the transformed execution must produce the same bag of rows as the
//! nested-iteration reference, across every join policy.
//!
//! Queries whose inner join column is not a key are run in
//! duplicate-preserving mode and compared as sets (the NEST-N-J caveat;
//! see DESIGN.md).

use nested_query_opt::core::UnnestOptions;
use nested_query_opt::db::{Database, JoinPolicy, QueryOptions, Strategy};

fn paper_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), SNAME CHAR(10), STATUS INT, CITY CHAR(10));
         CREATE TABLE P (PNO CHAR(4), PNAME CHAR(10), COLOR CHAR(8), WEIGHT INT, CITY CHAR(10));
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT, ORIGIN CHAR(10));
         INSERT INTO S VALUES
           ('S1','SMITH',20,'LONDON'), ('S2','JONES',10,'PARIS'),
           ('S3','BLAKE',30,'PARIS'),  ('S4','CLARK',20,'LONDON'),
           ('S5','ADAMS',30,'ATHENS');
         INSERT INTO P VALUES
           ('P1','NUT','RED',12,'LONDON'),  ('P2','BOLT','GREEN',17,'PARIS'),
           ('P3','SCREW','BLUE',17,'ROME'), ('P4','SCREW','RED',14,'LONDON'),
           ('P5','CAM','BLUE',12,'PARIS'),  ('P6','COG','RED',19,'LONDON');
         INSERT INTO SP VALUES
           ('S1','P1',300,'LONDON'), ('S1','P2',200,'PARIS'),
           ('S1','P3',400,'ROME'),   ('S1','P4',200,'LONDON'),
           ('S1','P5',100,'PARIS'),  ('S1','P6',100,'LONDON'),
           ('S2','P1',300,'PARIS'),  ('S2','P2',400,'PARIS'),
           ('S3','P2',200,'PARIS'),  ('S4','P2',200,'LONDON'),
           ('S4','P4',300,'LONDON'), ('S4','P5',400,'LONDON');",
    )
    .unwrap();
    db
}

const POLICIES: [JoinPolicy; 4] = [
    JoinPolicy::ForceNestedLoop,
    JoinPolicy::ForceMergeJoin,
    JoinPolicy::ForceHashJoin,
    JoinPolicy::CostBased,
];

/// Queries where the inner join column is unique (key) — bag equivalence.
const KEYED_QUERIES: &[&str] = &[
    // Type-A (Query 2 style).
    "SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
    "SELECT SNO FROM SP WHERE QTY > (SELECT AVG(QTY) FROM SP X)",
    "SELECT PNO FROM P WHERE WEIGHT = (SELECT MIN(WEIGHT) FROM P X)",
    // Type-N over a key (P.PNO is unique).
    "SELECT SNO, PNO FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE WEIGHT > 15)",
    "SELECT SNAME FROM S WHERE CITY IN (SELECT CITY FROM P WHERE COLOR = 'BLUE')",
    // Type-JA (Query 5 style).
    "SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
    "SELECT PNO FROM P WHERE WEIGHT > (SELECT AVG(QTY) FROM SP WHERE SP.PNO = P.PNO)",
    "SELECT SNO FROM S WHERE STATUS = (SELECT COUNT(PNO) FROM SP WHERE SP.SNO = S.SNO)",
    // Correlated COUNT against a constant-ish column.
    "SELECT SNAME FROM S WHERE 2 < (SELECT COUNT(PNO) FROM SP WHERE SP.SNO = S.SNO)",
    // Non-equality correlation with MAX.
    "SELECT PNO FROM P WHERE WEIGHT = (SELECT MAX(WEIGHT) FROM P X WHERE X.PNO < P.PNO)",
    // Multi-column equality correlation.
    "SELECT SNO FROM SP WHERE QTY = (SELECT MAX(QTY) FROM SP X \
       WHERE X.SNO = SP.SNO AND X.PNO = SP.PNO)",
    // Simple outer predicates restrict the projection (Section 6 step 1).
    "SELECT SNAME FROM S WHERE STATUS > 10 AND \
       STATUS = (SELECT COUNT(PNO) FROM SP WHERE SP.SNO = S.SNO)",
];

/// Queries where the inner join column has duplicates — set equivalence in
/// duplicate-preserving mode.
const UNKEYED_QUERIES: &[&str] = &[
    "SELECT SNAME FROM S WHERE SNO IS IN (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
    "SELECT SNAME FROM S WHERE CITY IN (SELECT ORIGIN FROM SP WHERE QTY >= 300)",
    "SELECT PNAME FROM P WHERE PNO IN (SELECT PNO FROM SP WHERE QTY > 250)",
    "SELECT SNO FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
       (SELECT PNO FROM P WHERE WEIGHT > 15))",
];

#[test]
fn keyed_queries_bag_equivalent_across_policies() {
    let db = paper_db();
    for sql in KEYED_QUERIES {
        let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
        for policy in POLICIES {
            let opts = QueryOptions {
                strategy: Strategy::Transform,
                join_policy: policy,
                cold_start: true,
                ..Default::default()
            };
            let tr = db.query_with(sql, &opts).unwrap();
            assert!(
                tr.relation.same_bag(&ni.relation),
                "{sql}\npolicy {policy:?}\nNI:\n{}\nTR:\n{}\nexplain:\n{}",
                ni.relation,
                tr.relation,
                tr.explain.join("\n")
            );
        }
    }
}

#[test]
fn unkeyed_queries_set_equivalent_in_preserving_mode() {
    let db = paper_db();
    for sql in UNKEYED_QUERIES {
        let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
        for policy in POLICIES {
            let opts = QueryOptions {
                strategy: Strategy::Transform,
                join_policy: policy,
                unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
                cold_start: true,
                ..Default::default()
            };
            let tr = db.query_with(sql, &opts).unwrap();
            assert!(
                tr.relation.same_set(&ni.relation),
                "{sql}\npolicy {policy:?}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
        }
    }
}

#[test]
fn faithful_mode_can_duplicate_outer_tuples() {
    // The documented NEST-N-J caveat: without duplicate preservation, the
    // canonical join multiplies outer tuples by matching inner tuples.
    let db = paper_db();
    let sql = "SELECT SNAME FROM S WHERE CITY IN (SELECT ORIGIN FROM SP WHERE QTY >= 300)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let faithful = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert!(faithful.relation.len() > ni.relation.len());
    assert!(faithful.relation.same_set(&ni.relation));
}

#[test]
fn flat_queries_identical_under_both_strategies() {
    let db = paper_db();
    for sql in [
        "SELECT SNO FROM SP WHERE QTY > 150",
        "SELECT DISTINCT CITY FROM S",
        "SELECT SNO, COUNT(PNO), MAX(QTY) FROM SP GROUP BY SNO",
        "SELECT SNAME FROM S, SP WHERE S.SNO = SP.SNO AND QTY = 400",
        "SELECT COUNT(*) FROM SP",
        "SELECT SNO, PNO FROM SP ORDER BY SNO DESC, PNO",
    ] {
        let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
        let tr = db.query_with(sql, &QueryOptions::transformed()).unwrap();
        assert!(
            tr.relation.same_bag(&ni.relation),
            "{sql}\nNI:\n{}\nTR:\n{}",
            ni.relation,
            tr.relation
        );
    }
}

#[test]
fn order_by_is_respected_in_transformed_path() {
    let db = paper_db();
    let r = db
        .query_with(
            "SELECT SNO, QTY FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE WEIGHT > 15) \
             ORDER BY QTY DESC, SNO",
            &QueryOptions::transformed(),
        )
        .unwrap()
        .relation;
    let qtys: Vec<String> = r.tuples().iter().map(|t| t.get(1).to_string()).collect();
    let mut sorted = qtys.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(qtys.len(), 6);
    assert!(qtys[0] >= qtys[qtys.len() - 1]);
}

/// Regression (found by the `diff_prop` differential harness, seed
/// 0x1f6274601e0ec59a): two correlation predicates referencing the *same*
/// outer column non-adjacently — here `PARTS.PNUM` on both sides of
/// `PARTS.QOH` — left a duplicate column in NEST-JA2's step-1 projection,
/// because `Vec::dedup` only removes consecutive repeats. The step-2b join
/// then failed with "join predicate … does not resolve" on the ambiguous
/// TEMP1 column. The projection must carry one column per *distinct* outer
/// correlation column.
#[test]
fn repeated_outer_correlation_column_resolves_in_ja2() {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIP INT);
         INSERT INTO PARTS VALUES (3, 2), (5, 3), (8, 0), (10, 1);
         INSERT INTO SUPPLY VALUES
           (3, 1, 3), (3, 2, 3), (3, 5, 4), (5, 1, 5), (10, 1, 10), (7, 1, 7);",
    )
    .unwrap();
    // Correlations in order: PNUM (=), QOH (>=, via QUAN <=), PNUM (=).
    let sql = "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY \
               WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN <= PARTS.QOH AND SHIP = PARTS.PNUM)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap().relation;
    // Part 8 has no supplies at all — COUNT over the empty group must be 0,
    // exercising the outer-join path of NEST-JA2 at the same time.
    let mut got: Vec<String> = ni.tuples().iter().map(|t| t.get(0).to_string()).collect();
    got.sort();
    assert_eq!(got, ["10", "3", "8"]);
    for policy in POLICIES {
        let opts = QueryOptions {
            strategy: Strategy::Transform,
            join_policy: policy,
            cold_start: true,
            ..Default::default()
        };
        let tr = db.query_with(sql, &opts).unwrap().relation;
        assert!(tr.same_bag(&ni), "policy {policy:?}\nNI:\n{ni}\nTR:\n{tr}");
    }
}
