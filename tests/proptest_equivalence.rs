//! Property-based equivalence: on *random* databases and a grammar of
//! random nested queries, the transformed execution equals the
//! nested-iteration reference.
//!
//! This is the workspace's strongest correctness evidence: every generated
//! case exercises NEST-JA2's outer join, COUNT(*) rewrite, non-equality
//! handling, and duplicate projection against the System R semantics.

use nested_query_opt::db::{Database, JoinPolicy, QueryOptions, Strategy as DbStrategy};
use proptest::prelude::*;

/// Random PARTS rows: keys may repeat (duplicates problem territory) and
/// QOH values are small so COUNT/SUM collisions actually happen.
fn parts_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, 0i64..5), 1..8)
}

/// Random SUPPLY rows: PNUM overlaps the PARTS key range only partially so
/// empty groups (the COUNT bug trigger) are common; dates straddle the
/// 1-1-80 boundary.
fn supply_strategy() -> impl Strategy<Value = Vec<(i64, i64, bool)>> {
    prop::collection::vec((0i64..10, 0i64..6, any::<bool>()), 0..12)
}

#[derive(Debug, Clone, Copy)]
enum Agg {
    Count,
    CountStar,
    Sum,
    Avg,
    Max,
    Min,
}

impl Agg {
    fn sql(self) -> &'static str {
        match self {
            Agg::Count => "COUNT(QUAN)",
            Agg::CountStar => "COUNT(*)",
            Agg::Sum => "SUM(QUAN)",
            Agg::Avg => "AVG(QUAN)",
            Agg::Max => "MAX(QUAN)",
            Agg::Min => "MIN(QUAN)",
        }
    }
}

fn agg_strategy() -> impl Strategy<Value = Agg> {
    prop::sample::select(vec![
        Agg::Count,
        Agg::CountStar,
        Agg::Sum,
        Agg::Avg,
        Agg::Max,
        Agg::Min,
    ])
}

fn op_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["=", "<", ">", "<=", ">=", "!="])
}

fn build_db(parts: &[(i64, i64)], supply: &[(i64, i64, bool)]) -> Database {
    let mut db = Database::new();
    let mut script = String::from(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);\
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);",
    );
    let part_rows: Vec<String> =
        parts.iter().map(|(p, q)| format!("({p}, {q})")).collect();
    script.push_str(&format!("INSERT INTO PARTS VALUES {};", part_rows.join(", ")));
    if !supply.is_empty() {
        let supply_rows: Vec<String> = supply
            .iter()
            .map(|(p, q, early)| {
                let date = if *early { "7-3-79" } else { "8-10-81" };
                format!("({p}, {q}, {date})")
            })
            .collect();
        script.push_str(&format!("INSERT INTO SUPPLY VALUES {};", supply_rows.join(", ")));
    }
    db.execute_script(&script).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Type-JA queries over random data: every aggregate × join operator ×
    /// outer operator, with the date restriction as the inner simple
    /// predicate — the full Q2/Q5 family.
    #[test]
    fn type_ja_transform_equals_nested_iteration(
        parts in parts_strategy(),
        supply in supply_strategy(),
        agg in agg_strategy(),
        join_op in op_strategy(),
        outer_op in prop::sample::select(vec!["=", "<", ">"]),
        restrict_dates in any::<bool>(),
        restrict_outer in any::<bool>(),
    ) {
        let db = build_db(&parts, &supply);
        let date_pred = if restrict_dates { " AND SHIPDATE < 1-1-80" } else { "" };
        let outer_pred = if restrict_outer { "QOH >= 0 AND " } else { "" };
        let sql = format!(
            "SELECT PNUM, QOH FROM PARTS WHERE {outer_pred}QOH {outer_op} \
             (SELECT {} FROM SUPPLY WHERE SUPPLY.PNUM {join_op} PARTS.PNUM{date_pred})",
            agg.sql()
        );
        let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
        for policy in [JoinPolicy::ForceNestedLoop, JoinPolicy::ForceMergeJoin, JoinPolicy::ForceHashJoin, JoinPolicy::CostBased] {
            let opts = QueryOptions {
                strategy: DbStrategy::Transform,
                join_policy: policy,
                cold_start: true,
                ..Default::default()
            };
            let tr = db.query_with(&sql, &opts).unwrap();
            prop_assert!(
                tr.relation.same_bag(&ni.relation),
                "{sql}\npolicy {policy:?}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
        }
    }

    /// Type-N membership over random data, duplicate-preserving mode, set
    /// comparison (the documented NEST-N-J caveat).
    #[test]
    fn type_n_membership_set_equal(
        parts in parts_strategy(),
        supply in supply_strategy(),
        restrict in any::<bool>(),
    ) {
        let db = build_db(&parts, &supply);
        let inner_pred = if restrict { " WHERE QUAN > 2" } else { "" };
        let sql = format!(
            "SELECT PNUM FROM PARTS WHERE PNUM IN (SELECT PNUM FROM SUPPLY{inner_pred})"
        );
        let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
        let opts = QueryOptions {
            strategy: DbStrategy::Transform,
            unnest: nested_query_opt::core::UnnestOptions {
                preserve_duplicates: true,
                ..Default::default()
            },
            cold_start: true,
            ..Default::default()
        };
        let tr = db.query_with(&sql, &opts).unwrap();
        prop_assert!(
            tr.relation.same_set(&ni.relation),
            "{sql}\nNI:\n{}\nTR:\n{}",
            ni.relation,
            tr.relation
        );
    }

    /// EXISTS / NOT EXISTS over random data (zero counts via outer join).
    #[test]
    fn exists_family_equal(
        parts in parts_strategy(),
        supply in supply_strategy(),
        negate in any::<bool>(),
    ) {
        let db = build_db(&parts, &supply);
        let kw = if negate { "NOT EXISTS" } else { "EXISTS" };
        let sql = format!(
            "SELECT PNUM, QOH FROM PARTS WHERE {kw} \
             (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)"
        );
        let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
        let tr = db.query_with(&sql, &QueryOptions::transformed_merge()).unwrap();
        prop_assert!(
            tr.relation.same_bag(&ni.relation),
            "{sql}\nNI:\n{}\nTR:\n{}",
            ni.relation,
            tr.relation
        );
    }

    /// Kim's buggy NEST-JA only ever *loses or keeps* COUNT rows relative
    /// to the reference when the join operator is equality — and the rows
    /// it returns with MAX/MIN on equality joins are always a subset
    /// property: on equality joins with non-COUNT aggregates it is correct
    /// (Section 5.3: "For aggregate functions other than COUNT Kim's
    /// algorithm NEST-JA works correctly for nested join predicates
    /// containing the equality operator").
    #[test]
    fn kim_is_correct_exactly_on_non_count_equality(
        parts in parts_strategy(),
        supply in supply_strategy(),
        agg in prop::sample::select(vec![Agg::Sum, Agg::Avg, Agg::Max, Agg::Min]),
    ) {
        let db = build_db(&parts, &supply);
        let sql = format!(
            "SELECT PNUM, QOH FROM PARTS WHERE QOH = \
             (SELECT {} FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
            agg.sql()
        );
        let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
        let kim = QueryOptions {
            strategy: DbStrategy::Transform,
            unnest: nested_query_opt::core::UnnestOptions {
                ja_variant: nested_query_opt::core::JaVariant::KimOriginal,
                ..Default::default()
            },
            cold_start: true,
            ..Default::default()
        };
        let tr = db.query_with(&sql, &kim).unwrap();
        prop_assert!(
            tr.relation.same_bag(&ni.relation),
            "{sql}\nNI:\n{}\nKIM:\n{}",
            ni.relation,
            tr.relation
        );
    }
}
