//! Property-based equivalence: on *random* databases and a grammar of
//! random nested queries, the transformed execution equals the
//! nested-iteration reference.
//!
//! This is the workspace's strongest correctness evidence: every generated
//! case exercises NEST-JA2's outer join, COUNT(*) rewrite, non-equality
//! handling, and duplicate projection against the System R semantics.
//!
//! The suite also *demonstrates the harness* the way the paper
//! demonstrates the bug: a deliberately false property — "Kim's NEST-JA
//! agrees with nested iteration on COUNT" — must fail with a replayable
//! seed and shrink to a counterexample of at most 3 outer and 3 inner
//! tuples (`kim_count_bug_is_found_and_shrunk_to_a_tiny_database`).

use nested_query_opt::db::{Database, JoinPolicy, QueryOptions, Strategy as DbStrategy};
use nsql_testkit::{forall, prop_assert, run_property, Config, Rng, Shrink};

/// Random PARTS rows: keys may repeat (duplicates problem territory) and
/// QOH values are small so COUNT/SUM collisions actually happen.
fn parts(rng: &mut Rng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(1usize..8);
    (0..n).map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..5))).collect()
}

/// Random SUPPLY rows: PNUM overlaps the PARTS key range only partially so
/// empty groups (the COUNT bug trigger) are common; dates straddle the
/// 1-1-80 boundary.
fn supply(rng: &mut Rng) -> Vec<(i64, i64, bool)> {
    let n = rng.gen_range(0usize..12);
    (0..n)
        .map(|_| (rng.gen_range(0i64..10), rng.gen_range(0i64..6), rng.gen_bool(0.5)))
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Agg {
    Count,
    CountStar,
    Sum,
    Avg,
    Max,
    Min,
}

impl Agg {
    fn sql(self) -> &'static str {
        match self {
            Agg::Count => "COUNT(QUAN)",
            Agg::CountStar => "COUNT(*)",
            Agg::Sum => "SUM(QUAN)",
            Agg::Avg => "AVG(QUAN)",
            Agg::Max => "MAX(QUAN)",
            Agg::Min => "MIN(QUAN)",
        }
    }
}

// Opaque test enums take the default (empty) shrinker.
impl Shrink for Agg {}

fn any_agg(rng: &mut Rng) -> Agg {
    *rng.choose(&[Agg::Count, Agg::CountStar, Agg::Sum, Agg::Avg, Agg::Max, Agg::Min])
}

fn any_op(rng: &mut Rng) -> &'static str {
    *rng.choose(&["=", "<", ">", "<=", ">=", "!="])
}

fn build_db(parts: &[(i64, i64)], supply: &[(i64, i64, bool)]) -> Database {
    let mut db = Database::new();
    let mut script = String::from(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);\
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);",
    );
    // Shrinking may empty either table; an absent INSERT is simply an
    // empty relation.
    if !parts.is_empty() {
        let part_rows: Vec<String> =
            parts.iter().map(|(p, q)| format!("({p}, {q})")).collect();
        script.push_str(&format!("INSERT INTO PARTS VALUES {};", part_rows.join(", ")));
    }
    if !supply.is_empty() {
        let supply_rows: Vec<String> = supply
            .iter()
            .map(|(p, q, early)| {
                let date = if *early { "7-3-79" } else { "8-10-81" };
                format!("({p}, {q}, {date})")
            })
            .collect();
        script.push_str(&format!("INSERT INTO SUPPLY VALUES {};", supply_rows.join(", ")));
    }
    db.execute_script(&script).unwrap();
    db
}

/// Type-JA queries over random data: every aggregate × join operator ×
/// outer operator, with the date restriction as the inner simple
/// predicate — the full Q2/Q5 family.
#[test]
fn type_ja_transform_equals_nested_iteration() {
    forall(
        64,
        "type_ja_transform_equals_nested_iteration",
        |rng| {
            (
                parts(rng),
                supply(rng),
                any_agg(rng),
                any_op(rng),
                *rng.choose(&["=", "<", ">"]),
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
            )
        },
        |(parts, supply, agg, join_op, outer_op, restrict_dates, restrict_outer)| {
            let db = build_db(parts, supply);
            let date_pred = if *restrict_dates { " AND SHIPDATE < 1-1-80" } else { "" };
            let outer_pred = if *restrict_outer { "QOH >= 0 AND " } else { "" };
            let sql = format!(
                "SELECT PNUM, QOH FROM PARTS WHERE {outer_pred}QOH {outer_op} \
                 (SELECT {} FROM SUPPLY WHERE SUPPLY.PNUM {join_op} PARTS.PNUM{date_pred})",
                agg.sql()
            );
            let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
            for policy in [
                JoinPolicy::ForceNestedLoop,
                JoinPolicy::ForceMergeJoin,
                JoinPolicy::ForceHashJoin,
                JoinPolicy::CostBased,
            ] {
                let opts = QueryOptions {
                    strategy: DbStrategy::Transform,
                    join_policy: policy,
                    cold_start: true,
                    ..Default::default()
                };
                let tr = db.query_with(&sql, &opts).unwrap();
                prop_assert!(
                    tr.relation.same_bag(&ni.relation),
                    "{sql}\npolicy {policy:?}\nNI:\n{}\nTR:\n{}",
                    ni.relation,
                    tr.relation
                );
            }
            Ok(())
        },
    );
}

/// Type-N membership over random data, duplicate-preserving mode, set
/// comparison (the documented NEST-N-J caveat).
#[test]
fn type_n_membership_set_equal() {
    forall(
        64,
        "type_n_membership_set_equal",
        |rng| (parts(rng), supply(rng), rng.gen_bool(0.5)),
        |(parts, supply, restrict)| {
            let db = build_db(parts, supply);
            let inner_pred = if *restrict { " WHERE QUAN > 2" } else { "" };
            let sql = format!(
                "SELECT PNUM FROM PARTS WHERE PNUM IN (SELECT PNUM FROM SUPPLY{inner_pred})"
            );
            let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
            let opts = QueryOptions {
                strategy: DbStrategy::Transform,
                unnest: nested_query_opt::core::UnnestOptions {
                    preserve_duplicates: true,
                    ..Default::default()
                },
                cold_start: true,
                ..Default::default()
            };
            let tr = db.query_with(&sql, &opts).unwrap();
            prop_assert!(
                tr.relation.same_set(&ni.relation),
                "{sql}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
            Ok(())
        },
    );
}

/// EXISTS / NOT EXISTS over random data (zero counts via outer join).
#[test]
fn exists_family_equal() {
    forall(
        64,
        "exists_family_equal",
        |rng| (parts(rng), supply(rng), rng.gen_bool(0.5)),
        |(parts, supply, negate)| {
            let db = build_db(parts, supply);
            let kw = if *negate { "NOT EXISTS" } else { "EXISTS" };
            let sql = format!(
                "SELECT PNUM, QOH FROM PARTS WHERE {kw} \
                 (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)"
            );
            let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
            let tr = db.query_with(&sql, &QueryOptions::transformed_merge()).unwrap();
            prop_assert!(
                tr.relation.same_bag(&ni.relation),
                "{sql}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
            Ok(())
        },
    );
}

fn kim_opts() -> QueryOptions {
    QueryOptions {
        strategy: DbStrategy::Transform,
        unnest: nested_query_opt::core::UnnestOptions {
            ja_variant: nested_query_opt::core::JaVariant::KimOriginal,
            ..Default::default()
        },
        cold_start: true,
        ..Default::default()
    }
}

/// Kim's buggy NEST-JA only ever *loses or keeps* COUNT rows relative
/// to the reference when the join operator is equality — and the rows
/// it returns with MAX/MIN on equality joins are always a subset
/// property: on equality joins with non-COUNT aggregates it is correct
/// (Section 5.3: "For aggregate functions other than COUNT Kim's
/// algorithm NEST-JA works correctly for nested join predicates
/// containing the equality operator").
#[test]
fn kim_is_correct_exactly_on_non_count_equality() {
    forall(
        64,
        "kim_is_correct_exactly_on_non_count_equality",
        |rng| (parts(rng), supply(rng), *rng.choose(&[Agg::Sum, Agg::Avg, Agg::Max, Agg::Min])),
        |(parts, supply, agg)| {
            let db = build_db(parts, supply);
            let sql = format!(
                "SELECT PNUM, QOH FROM PARTS WHERE QOH = \
                 (SELECT {} FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
                agg.sql()
            );
            let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
            let tr = db.query_with(&sql, &kim_opts()).unwrap();
            prop_assert!(
                tr.relation.same_bag(&ni.relation),
                "{sql}\nNI:\n{}\nKIM:\n{}",
                ni.relation,
                tr.relation
            );
            Ok(())
        },
    );
}

/// The harness demo required by this test layer's acceptance bar: assert
/// the *false* claim that Kim's NEST-JA matches nested iteration on
/// COUNT. The runner must find a counterexample, print a replayable seed,
/// and greedily shrink the database to at most 3 outer and 3 inner tuples
/// (the paper's own Section 5.1 counterexample uses 3 parts and 5
/// shipments; the minimal one is a single QOH-0 part with no shipments).
#[test]
fn kim_count_bug_is_found_and_shrunk_to_a_tiny_database() {
    let cfg = Config { cases: 256, env_seed: None, max_shrink_steps: 2048 };
    let failure = run_property(
        &cfg,
        "kim_matches_reference_on_count (deliberately false)",
        |rng| (parts(rng), supply(rng)),
        |(parts, supply)| {
            let db = build_db(parts, supply);
            let sql = "SELECT PNUM, QOH FROM PARTS WHERE QOH = \
                       (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)";
            let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
            let kim = db.query_with(sql, &kim_opts()).unwrap();
            prop_assert!(kim.relation.same_bag(&ni.relation), "COUNT bug");
            Ok(())
        },
    )
    .expect("the COUNT bug must surface within 256 random databases");

    let report = failure.render();
    assert!(
        report.contains("NSQL_TEST_SEED="),
        "failure report must print a replayable seed:\n{report}"
    );
    let (parts, supply) = &failure.shrunk;
    assert!(
        parts.len() <= 3 && supply.len() <= 3,
        "shrinking must reach ≤3 outer / ≤3 inner tuples, got {} / {}:\n{report}",
        parts.len(),
        supply.len()
    );
    // The shrunk database must still exhibit the bug, by construction: a
    // part whose COUNT-over-empty-or-matching group equals QOH under the
    // reference but is dropped (or distorted) by Kim's transformation.
    let db = build_db(parts, supply);
    let sql = "SELECT PNUM, QOH FROM PARTS WHERE QOH = \
               (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let kim = db.query_with(sql, &kim_opts()).unwrap();
    assert!(
        !kim.relation.same_bag(&ni.relation),
        "shrunk counterexample still demonstrates the divergence"
    );
}
