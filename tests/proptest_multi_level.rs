//! Property-based equivalence for *multi-level* nested queries: randomized
//! two-level shapes drive the Section-9 recursion — NEST-N-J merges of the
//! leaf into the middle block, upward inheritance of correlated
//! predicates, and type-JA detection at the middle level.

use nested_query_opt::core::UnnestOptions;
use nested_query_opt::db::{Database, QueryOptions};
use nsql_testkit::{forall, prop_assert, Rng};

fn rows(rng: &mut Rng, max: usize) -> Vec<(i64, i64)> {
    let n = rng.gen_range(1usize..max);
    (0..n).map(|_| (rng.gen_range(0i64..6), rng.gen_range(0i64..5))).collect()
}

fn build_db(a: &[(i64, i64)], b: &[(i64, i64)], c: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    let mut script = String::from(
        "CREATE TABLE TA (K INT, V INT);\
         CREATE TABLE TB (K INT, V INT);\
         CREATE TABLE TC (K INT, V INT);",
    );
    for (name, data) in [("TA", a), ("TB", b), ("TC", c)] {
        if data.is_empty() {
            continue; // shrinking may empty a table; skip the INSERT
        }
        let vals: Vec<String> = data.iter().map(|(k, v)| format!("({k}, {v})")).collect();
        script.push_str(&format!("INSERT INTO {name} VALUES {};", vals.join(", ")));
    }
    db.execute_script(&script).unwrap();
    db
}

/// The two-level query family. `leaf_corr_to` picks whether the innermost
/// block correlates to the middle table (TB) or spans up to the outer
/// table (TA) — the Figure-2 "trans-aggregate" case.
fn two_level_query(agg: &str, leaf_corr_to: &str, middle_is_agg: bool) -> String {
    if middle_is_agg {
        // outer TA — aggregate middle TB — membership leaf TC.
        format!(
            "SELECT K, V FROM TA WHERE V = \
               (SELECT {agg}(V) FROM TB WHERE TB.K = TA.K AND K IN \
                  (SELECT K FROM TC WHERE TC.V = {leaf_corr_to}.V))"
        )
    } else {
        // outer TA — membership middle TB — aggregate leaf TC.
        format!(
            "SELECT K, V FROM TA WHERE K IN \
               (SELECT K FROM TB WHERE TB.V = \
                  (SELECT {agg}(V) FROM TC WHERE TC.K = {leaf_corr_to}.K))"
        )
    }
}

#[test]
fn two_level_queries_transform_correctly() {
    forall(
        48,
        "two_level_queries_transform_correctly",
        |rng| {
            (
                rows(rng, 6),
                rows(rng, 8),
                rows(rng, 8),
                *rng.choose(&["COUNT", "MAX", "MIN", "SUM"]),
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
            )
        },
        |(a, b, c, agg, corr_up, middle_is_agg)| {
            let db = build_db(a, b, c);
            // corr_up spans the correlation past the middle block to the root
            // (the "trans-aggregate" reference of Section 9); otherwise the
            // leaf correlates to the middle block's own table.
            let corr_to = if *corr_up { "TA" } else { "TB" };
            let sql = two_level_query(agg, corr_to, *middle_is_agg);
            let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
            let opts = QueryOptions {
                unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
                ..QueryOptions::transformed_merge()
            };
            let tr = db.query_with(&sql, &opts).unwrap();
            prop_assert!(
                tr.relation.same_set(&ni.relation),
                "{sql}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
            Ok(())
        },
    );
}

#[test]
fn trans_aggregate_correlation_to_the_root() {
    forall(
        48,
        "trans_aggregate_correlation_to_the_root",
        |rng| (rows(rng, 5), rows(rng, 7), rows(rng, 7), *rng.choose(&["COUNT", "MAX", "SUM"])),
        |(a, b, c, agg)| {
            // The leaf references TA directly across the aggregate middle block
            // — after the leaf merges into the middle, the middle becomes
            // type-JA w.r.t. the root (the Section-9.1 walkthrough).
            let db = build_db(a, b, c);
            let sql = format!(
                "SELECT K, V FROM TA WHERE V = \
                   (SELECT {agg}(V) FROM TB WHERE K IN \
                      (SELECT K FROM TC WHERE TC.V = TA.V))"
            );
            let ni = db.query_with(&sql, &QueryOptions::nested_iteration()).unwrap();
            let opts = QueryOptions {
                unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
                ..QueryOptions::transformed_merge()
            };
            let tr = db.query_with(&sql, &opts).unwrap();
            prop_assert!(
                tr.relation.same_set(&ni.relation),
                "{sql}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
            Ok(())
        },
    );
}
