//! Miniature of experiment E1: on a workload scaled past the buffer size,
//! transformation + merge join must beat nested iteration by a wide margin
//! — the paper's 80–95% savings band — and the savings must come from
//! eliminating the per-outer-tuple rescans of the inner relation.

use nested_query_opt::db::{Database, QueryOptions};
use nested_query_opt::types::{ColumnType, Relation, Schema, Tuple, Value};

/// Build PARTS (n_outer rows) and SUPPLY (n_inner rows) large enough that
/// SUPPLY exceeds the buffer.
fn scaled_db(n_outer: i64, n_inner: i64) -> Database {
    let mut db = Database::with_storage(6, 512);
    let parts_schema = Schema::new(vec![
        nested_query_opt::db::database::col("PNUM", ColumnType::Int),
        nested_query_opt::db::database::col("QOH", ColumnType::Int),
    ]);
    let mut parts = Relation::empty(parts_schema);
    for i in 0..n_outer {
        parts
            .push(Tuple::new(vec![Value::Int(i), Value::Int(i % 7)]))
            .unwrap();
    }
    let supply_schema = Schema::new(vec![
        nested_query_opt::db::database::col("PNUM", ColumnType::Int),
        nested_query_opt::db::database::col("QUAN", ColumnType::Int),
    ]);
    let mut supply = Relation::empty(supply_schema);
    for i in 0..n_inner {
        supply
            .push(Tuple::new(vec![Value::Int(i % n_outer), Value::Int(i % 11)]))
            .unwrap();
    }
    db.catalog_mut().load_table("PARTS", &parts).unwrap();
    db.catalog_mut().load_table("SUPPLY", &supply).unwrap();
    db
}

const JA_QUERY: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN > 3)";

const J_QUERY: &str = "SELECT PNUM FROM PARTS WHERE QOH IN \
    (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)";

#[test]
fn type_ja_transformation_saves_at_least_80_percent() {
    let db = scaled_db(400, 2000);
    let supply_pages = db.catalog().table("SUPPLY").unwrap().page_count();
    assert!(supply_pages > 6, "inner relation must exceed the buffer");

    let ni = db.query_with(JA_QUERY, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(JA_QUERY, &QueryOptions::transformed_merge()).unwrap();
    assert!(tr.relation.same_bag(&ni.relation));

    let savings = 1.0 - tr.io.total() as f64 / ni.io.total() as f64;
    assert!(
        savings >= 0.80,
        "expected ≥80% savings (paper's band), got {:.1}% (NI {} vs TR {})",
        savings * 100.0,
        ni.io,
        tr.io
    );
}

#[test]
fn type_j_transformation_saves_at_least_80_percent() {
    let db = scaled_db(400, 2000);
    let ni = db.query_with(J_QUERY, &QueryOptions::nested_iteration()).unwrap();
    let opts = QueryOptions {
        unnest: nested_query_opt::core::UnnestOptions {
            preserve_duplicates: true,
            ..Default::default()
        },
        ..QueryOptions::transformed_merge()
    };
    let tr = db.query_with(J_QUERY, &opts).unwrap();
    assert!(tr.relation.same_set(&ni.relation));
    let savings = 1.0 - tr.io.total() as f64 / ni.io.total() as f64;
    assert!(
        savings >= 0.80,
        "expected ≥80% savings, got {:.1}% (NI {} vs TR {})",
        savings * 100.0,
        ni.io,
        tr.io
    );
}

#[test]
fn nested_iteration_cost_grows_with_outer_cardinality() {
    // The defining System R pathology: cost ∝ outer tuples × inner pages.
    let small = scaled_db(50, 1500);
    let large = scaled_db(200, 1500);
    let io_small = small
        .query_with(JA_QUERY, &QueryOptions::nested_iteration())
        .unwrap()
        .io
        .total();
    let io_large = large
        .query_with(JA_QUERY, &QueryOptions::nested_iteration())
        .unwrap()
        .io
        .total();
    let ratio = io_large as f64 / io_small as f64;
    assert!(
        ratio > 2.5,
        "4x outer tuples should give ≳3x I/O, got {ratio:.2} ({io_small} → {io_large})"
    );
}

#[test]
fn transformed_cost_is_flat_in_outer_cardinality() {
    let small = scaled_db(50, 1500);
    let large = scaled_db(200, 1500);
    let io_small = small
        .query_with(JA_QUERY, &QueryOptions::transformed_merge())
        .unwrap()
        .io
        .total();
    let io_large = large
        .query_with(JA_QUERY, &QueryOptions::transformed_merge())
        .unwrap()
        .io
        .total();
    let ratio = io_large as f64 / io_small as f64;
    assert!(
        ratio < 2.0,
        "transformed cost should grow sub-linearly in outer size, got {ratio:.2}"
    );
}

#[test]
fn small_inner_relations_make_nested_iteration_competitive() {
    // The crossover: when the inner relation fits in the buffer, repeated
    // rescans are free and nested iteration is no longer the loser.
    let db = scaled_db(100, 20); // SUPPLY fits easily
    let supply_pages = db.catalog().table("SUPPLY").unwrap().page_count();
    assert!(supply_pages <= 5);
    let ni = db.query_with(JA_QUERY, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(JA_QUERY, &QueryOptions::transformed_merge()).unwrap();
    assert!(tr.relation.same_bag(&ni.relation));
    assert!(
        (ni.io.total() as f64) < 3.0 * tr.io.total() as f64,
        "cached nested iteration should be within ~3x of transformation (NI {} vs TR {})",
        ni.io,
        tr.io
    );
}

#[test]
fn cost_based_policy_never_loses_badly_to_either_forced_policy() {
    use nested_query_opt::db::JoinPolicy;
    for (outer, inner) in [(50, 100), (200, 1200), (400, 2000)] {
        let db = scaled_db(outer, inner);
        let mut totals = std::collections::HashMap::new();
        for policy in
            [JoinPolicy::ForceNestedLoop, JoinPolicy::ForceMergeJoin, JoinPolicy::CostBased]
        {
            let opts = QueryOptions {
                join_policy: policy,
                ..QueryOptions::transformed()
            };
            let out = db.query_with(JA_QUERY, &opts).unwrap();
            totals.insert(policy.name(), out.io.total());
        }
        let best = totals.values().min().copied().unwrap();
        let cost_based = totals["cost-based"];
        assert!(
            cost_based as f64 <= best as f64 * 1.3 + 10.0,
            "cost-based {cost_based} should track the best {best} at ({outer},{inner}): {totals:?}"
        );
    }
}
