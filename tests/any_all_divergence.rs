//! The paper's own fidelity caveat (Section 8.2): the ANY/ALL rewrites are
//! "logically (but not necessarily semantically) equivalent".
//!
//! Over an **empty** inner result, SQL's quantifier semantics and the
//! MIN/MAX rewrite disagree:
//!
//! * `x < ALL (∅)` is TRUE (vacuous), but `x < (SELECT MIN …)` compares
//!   against `NULL` → UNKNOWN → row dropped.
//! * `x < ANY (∅)` is FALSE, and `x < MAX(∅) = NULL` is UNKNOWN — both
//!   reject the row, so ANY over an empty set happens to agree.
//!
//! These tests pin the divergence as *documented behaviour* of the faithful
//! implementation.

use nested_query_opt::db::{Database, QueryOptions};

fn db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), STATUS INT);
         CREATE TABLE SP (SNO CHAR(4), QTY INT);
         INSERT INTO S VALUES ('S1', 20), ('S2', 10);
         INSERT INTO SP VALUES ('S1', 300);",
    )
    .unwrap();
    db
}

#[test]
fn all_over_empty_set_diverges_exactly_as_documented() {
    let db = db();
    // Inner is empty: no shipments above 9000.
    let sql = "SELECT SNO FROM S WHERE STATUS < ALL (SELECT QTY FROM SP WHERE QTY > 9000)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    assert_eq!(ni.relation.len(), 2, "SQL: ALL over empty set is TRUE");
    let tr = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert_eq!(
        tr.relation.len(),
        0,
        "paper rewrite: STATUS < MIN(empty) = NULL is UNKNOWN — rows dropped"
    );
}

#[test]
fn any_over_empty_set_agrees_by_accident() {
    let db = db();
    let sql = "SELECT SNO FROM S WHERE STATUS < ANY (SELECT QTY FROM SP WHERE QTY > 9000)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert!(ni.relation.is_empty());
    assert!(tr.relation.is_empty());
}

#[test]
fn all_over_nonempty_set_agrees() {
    let db = db();
    let sql = "SELECT SNO FROM S WHERE STATUS < ALL (SELECT QTY FROM SP)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert_eq!(ni.relation.len(), 2);
    assert!(tr.relation.same_bag(&ni.relation));
}

#[test]
fn unrewritable_quantifiers_fall_back_with_clear_error() {
    // `= ALL` has no Section-8 rewrite: nested iteration evaluates it, the
    // transformation refuses with Unsupported.
    let db = db();
    let sql = "SELECT SNO FROM S WHERE STATUS = ALL (SELECT QTY FROM SP WHERE QTY < 0)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    assert_eq!(ni.relation.len(), 2, "= ALL over empty set is TRUE");
    let tr = db.query_with(sql, &QueryOptions::transformed_merge());
    assert!(matches!(
        tr,
        Err(nested_query_opt::db::DbError::Transform(
            nested_query_opt::core::TransformError::Unsupported(_)
        ))
    ));
}
