//! Experiment E9 companion: Section 9's recursive algorithm on queries
//! nested two and three levels deep, including type-JA nesting that spans
//! levels ("a join predicate reference must span a query block containing
//! an aggregate function for type-JA nesting to be present").

use nested_query_opt::db::{Database, QueryOptions};

fn db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), SNAME CHAR(10), STATUS INT, CITY CHAR(10));
         CREATE TABLE P (PNO CHAR(4), PNAME CHAR(10), COLOR CHAR(8), WEIGHT INT, CITY CHAR(10));
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT, ORIGIN CHAR(10));
         INSERT INTO S VALUES
           ('S1','SMITH',20,'LONDON'), ('S2','JONES',10,'PARIS'),
           ('S3','BLAKE',30,'PARIS'),  ('S4','CLARK',20,'LONDON'),
           ('S5','ADAMS',30,'ATHENS');
         INSERT INTO P VALUES
           ('P1','NUT','RED',12,'LONDON'),  ('P2','BOLT','GREEN',17,'PARIS'),
           ('P3','SCREW','BLUE',17,'ROME'), ('P4','SCREW','RED',14,'LONDON'),
           ('P5','CAM','BLUE',12,'PARIS'),  ('P6','COG','RED',19,'LONDON');
         INSERT INTO SP VALUES
           ('S1','P1',300,'LONDON'), ('S1','P2',200,'PARIS'),
           ('S1','P3',400,'ROME'),   ('S1','P4',200,'LONDON'),
           ('S1','P5',100,'PARIS'),  ('S1','P6',100,'LONDON'),
           ('S2','P1',300,'PARIS'),  ('S2','P2',400,'PARIS'),
           ('S3','P2',200,'PARIS'),  ('S4','P2',200,'LONDON'),
           ('S4','P4',300,'LONDON'), ('S4','P5',400,'LONDON');",
    )
    .unwrap();
    db
}

fn check_set_equivalent(db: &Database, sql: &str) {
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let opts = QueryOptions {
        unnest: nested_query_opt::core::UnnestOptions {
            preserve_duplicates: true,
            ..Default::default()
        },
        ..QueryOptions::transformed_merge()
    };
    let tr = db.query_with(sql, &opts).unwrap();
    assert!(
        tr.relation.same_set(&ni.relation),
        "{sql}\nNI:\n{}\nTR:\n{}\nexplain:\n{}",
        ni.relation,
        tr.relation,
        tr.explain.join("\n")
    );
}

#[test]
fn depth_two_n_over_j() {
    check_set_equivalent(
        &db(),
        "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
           (SELECT PNO FROM P WHERE P.CITY = S.CITY))",
    );
}

#[test]
fn depth_three_n_chain() {
    check_set_equivalent(
        &db(),
        "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
           (SELECT PNO FROM P WHERE WEIGHT > (SELECT MIN(WEIGHT) FROM P X)))",
    );
}

#[test]
fn ja_spanning_levels_like_figure_2() {
    // The aggregate block's correlation comes from a child merged into it:
    // exactly the Section-9 walkthrough.
    check_set_equivalent(
        &db(),
        "SELECT SNAME FROM S WHERE STATUS = \
           (SELECT MAX(QTY) FROM SP WHERE PNO IN \
              (SELECT PNO FROM P WHERE P.CITY = S.CITY)) ",
    );
}

#[test]
fn ja_inside_ja() {
    // Two aggregate levels: the inner JA reduces first, its temp joins
    // into the middle block, which then reduces against the root.
    check_set_equivalent(
        &db(),
        "SELECT SNO FROM S WHERE STATUS < \
           (SELECT SUM(QTY) FROM SP WHERE SP.SNO = S.SNO AND QTY = \
              (SELECT MAX(QTY) FROM SP X WHERE X.PNO = SP.PNO))",
    );
}

#[test]
fn two_nested_predicates_at_one_level() {
    check_set_equivalent(
        &db(),
        "SELECT SNAME FROM S \
         WHERE SNO IN (SELECT SNO FROM SP WHERE QTY > 200) \
           AND CITY IN (SELECT CITY FROM P WHERE WEIGHT > 15)",
    );
}

#[test]
fn mixed_types_at_one_level() {
    // One type-A predicate and one type-JA predicate side by side.
    check_set_equivalent(
        &db(),
        "SELECT SNO FROM SP \
         WHERE QTY > (SELECT AVG(QTY) FROM SP X) \
           AND QTY = (SELECT MAX(QTY) FROM SP Y WHERE Y.SNO = SP.SNO)",
    );
}

#[test]
fn figure_2_tree_renders_and_transforms() {
    let db = db();
    let sql = "SELECT SNAME FROM S WHERE \
                 SNO IN (SELECT SNO FROM SP WHERE \
                           QTY = (SELECT MAX(WEIGHT) FROM P WHERE \
                                    PNO IN (SELECT PNO FROM SP X WHERE X.ORIGIN = S.CITY))) \
                 AND CITY IN (SELECT CITY FROM P)";
    let tree = db.query_tree(sql).unwrap();
    assert_eq!(tree.block_count(), 5);
    assert_eq!(tree.depth(), 3);
    let rendered = tree.render();
    assert!(rendered.lines().count() >= 5, "{rendered}");
    // And it is still transformable + equivalent.
    check_set_equivalent(&db, sql);
}

#[test]
fn depth_is_bounded_only_by_the_query() {
    // A deeply-nested chain of memberships still flattens to one flat
    // query with all tables in the FROM clause.
    let db = db();
    let sql = "SELECT SNO FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
               (SELECT PNO FROM P WHERE PNO IN (SELECT PNO FROM SP X WHERE QTY > 100)))";
    let plan = db.plan(sql).unwrap();
    assert_eq!(plan.canonical.from.len(), 4);
    check_set_equivalent(&db, sql);
}
