//! Experiment E10: the Section-8 predicate extensions end-to-end.
//!
//! `EXISTS` / `NOT EXISTS` rewrite to COUNT comparisons — `NOT EXISTS`
//! needs the zero counts only the outer join can produce, so these queries
//! exercise the full NEST-JA2 machinery. `ANY` / `ALL` rewrite to MIN/MAX
//! scalar subqueries and `IN` forms.

use nested_query_opt::db::{Database, QueryOptions};
use nested_query_opt::types::Value;

fn db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), SNAME CHAR(10), STATUS INT, CITY CHAR(10));
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT, ORIGIN CHAR(10));
         INSERT INTO S VALUES
           ('S1','SMITH',20,'LONDON'), ('S2','JONES',10,'PARIS'),
           ('S3','BLAKE',30,'PARIS'),  ('S4','CLARK',20,'LONDON'),
           ('S5','ADAMS',30,'ATHENS');
         INSERT INTO SP VALUES
           ('S1','P1',300,'LONDON'), ('S1','P2',200,'PARIS'),
           ('S2','P1',300,'PARIS'),  ('S2','P2',400,'PARIS'),
           ('S3','P2',200,'PARIS'),  ('S4','P2',200,'LONDON'),
           ('S4','P4',300,'LONDON'), ('S4','P5',400,'LONDON');",
    )
    .unwrap();
    db
}

fn names(db: &Database, sql: &str, opts: &QueryOptions) -> Vec<String> {
    let r = db.query_with(sql, opts).unwrap().relation;
    let mut v: Vec<String> = r.tuples().iter().map(|t| t.get(0).to_string()).collect();
    v.sort();
    v
}

#[test]
fn correlated_exists_matches_reference() {
    let db = db();
    let sql = "SELECT SNO FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)";
    let ni = names(&db, sql, &QueryOptions::nested_iteration());
    let tr = names(&db, sql, &QueryOptions::transformed_merge());
    assert_eq!(ni, vec!["S1", "S2", "S3", "S4"]);
    assert_eq!(tr, ni);
}

#[test]
fn correlated_not_exists_needs_zero_counts() {
    // S5 has no shipments: only the outer join's zero count finds it.
    let db = db();
    let sql = "SELECT SNO FROM S WHERE NOT EXISTS (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)";
    let ni = names(&db, sql, &QueryOptions::nested_iteration());
    let tr = names(&db, sql, &QueryOptions::transformed_merge());
    assert_eq!(ni, vec!["S5"]);
    assert_eq!(tr, ni);
}

#[test]
fn not_exists_with_restriction() {
    // Suppliers with no shipment of 400 or more.
    let db = db();
    let sql = "SELECT SNO FROM S WHERE NOT EXISTS \
               (SELECT SNO FROM SP WHERE SP.SNO = S.SNO AND QTY >= 400)";
    let ni = names(&db, sql, &QueryOptions::nested_iteration());
    let tr = names(&db, sql, &QueryOptions::transformed_merge());
    assert_eq!(ni, vec!["S1", "S3", "S5"]);
    assert_eq!(tr, ni);
}

#[test]
fn uncorrelated_exists_becomes_type_a() {
    let db = db();
    let sql = "SELECT SNO FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE QTY > 350)";
    let ni = names(&db, sql, &QueryOptions::nested_iteration());
    let tr = names(&db, sql, &QueryOptions::transformed_merge());
    assert_eq!(ni.len(), 5, "inner is non-empty so every supplier passes");
    assert_eq!(tr, ni);
    // And the empty case.
    let sql = "SELECT SNO FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE QTY > 9000)";
    assert!(names(&db, sql, &QueryOptions::nested_iteration()).is_empty());
    assert!(names(&db, sql, &QueryOptions::transformed_merge()).is_empty());
}

#[test]
fn any_all_rewrites_match_on_nonempty_inners() {
    let db = db();
    for sql in [
        "SELECT SNO, PNO FROM SP WHERE QTY >= ALL (SELECT QTY FROM SP X)",
        "SELECT SNO, PNO FROM SP WHERE QTY < ANY (SELECT QTY FROM SP X)",
        "SELECT SNO FROM S WHERE STATUS > ANY (SELECT QTY FROM SP WHERE QTY < 100)",
        "SELECT SNO, PNO FROM SP WHERE QTY = ANY (SELECT QTY FROM SP X WHERE X.SNO = 'S2')",
        "SELECT SNO, PNO FROM SP WHERE QTY > ALL (SELECT QTY FROM SP X WHERE X.SNO = 'S3')",
    ] {
        let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
        let tr = db
            .query_with(
                sql,
                &QueryOptions {
                    unnest: nested_query_opt::core::UnnestOptions {
                        preserve_duplicates: true,
                        ..Default::default()
                    },
                    ..QueryOptions::transformed_merge()
                },
            )
            .unwrap();
        assert!(
            tr.relation.same_set(&ni.relation),
            "{sql}\nNI:\n{}\nTR:\n{}",
            ni.relation,
            tr.relation
        );
    }
}

#[test]
fn correlated_any_matches() {
    // "Suppliers with a shipment larger than any shipment from their city"
    // — correlated ALL, rewritten to MAX, then type-JA machinery.
    let db = db();
    let sql = "SELECT SNO, PNO, QTY FROM SP WHERE QTY >= ALL \
               (SELECT QTY FROM SP X WHERE X.ORIGIN = SP.ORIGIN)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(sql, &QueryOptions::transformed_merge()).unwrap();
    assert!(
        tr.relation.same_bag(&ni.relation),
        "NI:\n{}\nTR:\n{}",
        ni.relation,
        tr.relation
    );
    assert!(!ni.relation.is_empty());
}

#[test]
fn exists_transform_beats_nested_iteration_on_io() {
    // Even at toy scale the transformed NOT EXISTS does not rescan SP per
    // supplier.
    let db = db();
    let sql = "SELECT SNO FROM S WHERE NOT EXISTS (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).unwrap();
    let tr = db.query_with(sql, &QueryOptions::transformed()).unwrap();
    assert_eq!(tr.relation.len(), 1);
    // At this scale everything fits in buffer; just confirm both are
    // accounted and the transformed path is not catastrophically worse.
    assert!(ni.io.total() > 0);
    assert!(tr.io.total() > 0);
}

#[test]
fn count_values_visible_in_select() {
    // Sanity on the rewrite: 0 < COUNT comparison uses real counts.
    let db = db();
    let r = db
        .query_with(
            "SELECT SNO, COUNT(PNO) FROM SP GROUP BY SNO ORDER BY SNO",
            &QueryOptions::transformed(),
        )
        .unwrap()
        .relation;
    let counts: Vec<i64> = r
        .tuples()
        .iter()
        .map(|t| match t.get(1) {
            Value::Int(i) => *i,
            _ => panic!(),
        })
        .collect();
    assert_eq!(counts, vec![2, 2, 1, 3]);
}
