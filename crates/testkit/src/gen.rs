//! Generators (and shrinkers) for workspace domain types: values, dates,
//! tuples, relations, and small SQL ASTs.
//!
//! A generator is a plain function `fn(&mut Rng) -> T`; compose them with
//! ordinary Rust. The AST generator mirrors the grammar the parser
//! accepts, so `print → parse` round-trips are meaningful; shrinkers stay
//! inside the same invariants (non-empty SELECT/FROM lists, identifier
//! shapes, `COUNT(*)`-only star arguments) so a shrunk counterexample is
//! always a well-formed input, never a grammar violation.

use crate::rng::Rng;
use crate::shrink::Shrink;
use nsql_sql::token::Keyword;
use nsql_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, InRhs, Operand, Predicate, QueryBlock, Quantifier,
    ScalarExpr, SelectItem, TableRef,
};
use nsql_types::{ColumnType, Date, Relation, Schema, Tuple, Value};

// ---------------------------------------------------------------- values

/// A random string of `len` characters drawn from `alphabet`.
pub fn string_of(rng: &mut Rng, alphabet: &[char], len: usize) -> String {
    (0..len).map(|_| *rng.choose(alphabet)).collect()
}

/// A random valid date with the year in `years` (day capped at 28).
pub fn date(rng: &mut Rng, years: std::ops::Range<i32>) -> Date {
    let y = rng.gen_range(years);
    let m = rng.gen_range(1u8..13);
    let d = rng.gen_range(1u8..29);
    Date::new(y, m, d).expect("day <= 28 is valid in every month")
}

/// A random [`Value`] across all runtime types (the value-layer mix:
/// NULLs, full-range ints, small floats, short lowercase strings, dates).
pub fn value(rng: &mut Rng) -> Value {
    match rng.gen_range(0u32..5) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(i64::from(i32::MIN)..i64::from(i32::MAX) + 1)),
        2 => Value::Float(rng.gen_range(-1_000_000i64..1_000_000) as f64 / 100.0),
        3 => {
            let len = rng.gen_range(0usize..7);
            Value::str(string_of(rng, &LOWER, len))
        }
        _ => Value::Date(date(rng, 1900..2100)),
    }
}

/// A random *literal* as written in SQL text (the subset the printer can
/// emit and the parser re-read: ints, two-decimal floats, quotable
/// strings, NULL, dates).
pub fn literal(rng: &mut Rng) -> Value {
    match rng.gen_range(0u32..5) {
        0 => Value::Int(rng.gen_range(i64::from(i32::MIN)..i64::from(i32::MAX) + 1)),
        1 => {
            let a = rng.gen_range(-1000i64..1000) as f64;
            let b = rng.gen_range(0i64..100) as f64;
            Value::Float(a + b / 100.0)
        }
        2 => {
            let len = rng.gen_range(0usize..9);
            Value::str(string_of(rng, &ALNUM_SPACE, len))
        }
        3 => Value::Null,
        _ => Value::Date(date(rng, 1970..2030)),
    }
}

/// A random tuple matching `types` (≈10% NULLs per column).
pub fn tuple(rng: &mut Rng, types: &[ColumnType]) -> Tuple {
    Tuple::new(
        types
            .iter()
            .map(|ty| {
                if rng.gen_bool(0.1) {
                    return Value::Null;
                }
                match ty {
                    ColumnType::Int => Value::Int(rng.gen_range(-50i64..50)),
                    ColumnType::Float => Value::Float(rng.gen_range(-500i64..500) as f64 / 10.0),
                    ColumnType::Str => {
                        let len = rng.gen_range(1usize..5);
                        Value::str(string_of(rng, &LOWER, len))
                    }
                    ColumnType::Date => Value::Date(date(rng, 1970..2030)),
                    ColumnType::Bool => Value::Bool(rng.gen_bool(0.5)),
                }
            })
            .collect(),
    )
}

/// A random relation over `schema` with a row count drawn from `rows`.
/// Small value ranges force duplicate keys and empty-group collisions —
/// the territory of the paper's Section 5 bugs.
pub fn relation(rng: &mut Rng, schema: Schema, rows: std::ops::Range<usize>) -> Relation {
    let types: Vec<ColumnType> = schema.columns().iter().map(|c| c.ty).collect();
    let n = rng.gen_range(rows);
    let mut rel = Relation::empty(schema);
    for _ in 0..n {
        rel.push(tuple(rng, &types)).expect("generated tuple matches schema");
    }
    rel
}

const LOWER: [char; 26] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
    's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
];
const UPPER: [char; 26] = [
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R',
    'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z',
];
const IDENT_TAIL: [char; 37] = [
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R',
    'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9',
    '_',
];
const ALNUM_SPACE: [char; 63] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
    's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J',
    'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', '0', '1',
    '2', '3', '4', '5', '6', '7', '8', '9', ' ',
];

// ------------------------------------------------------------------ AST

/// A random identifier `[A-Z][A-Z0-9_]{0,6}` that is not a keyword.
pub fn ident(rng: &mut Rng) -> String {
    loop {
        let mut s = String::new();
        s.push(*rng.choose(&UPPER));
        let tail = rng.gen_range(0usize..7);
        for _ in 0..tail {
            s.push(*rng.choose(&IDENT_TAIL));
        }
        if Keyword::from_ident(&s).is_none() {
            return s;
        }
    }
}

fn option_of<T>(rng: &mut Rng, f: impl FnOnce(&mut Rng) -> T) -> Option<T> {
    if rng.gen_bool(0.5) {
        Some(f(rng))
    } else {
        None
    }
}

/// A random, possibly-qualified column reference.
pub fn column_ref(rng: &mut Rng) -> ColumnRef {
    ColumnRef { table: option_of(rng, ident), column: ident(rng) }
}

/// A random table reference with optional alias.
pub fn table_ref(rng: &mut Rng) -> TableRef {
    TableRef { table: ident(rng), alias: option_of(rng, ident) }
}

/// A uniformly chosen comparison operator.
pub fn compare_op(rng: &mut Rng) -> CompareOp {
    *rng.choose(&[
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ])
}

/// A comparison operand: column or literal (scalar subqueries enter the
/// grammar through [`predicate`]'s quantified/EXISTS/IN forms instead).
pub fn operand(rng: &mut Rng) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::Column(column_ref(rng))
    } else {
        Operand::Literal(literal(rng))
    }
}

/// A random SELECT item: a column, an aggregate over a column, or
/// `COUNT(*)`, with an optional alias.
pub fn select_item(rng: &mut Rng) -> SelectItem {
    let expr = match rng.gen_range(0u32..3) {
        0 => ScalarExpr::Column(column_ref(rng)),
        1 => {
            let f = *rng.choose(&[
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Max,
                AggFunc::Min,
            ]);
            ScalarExpr::Aggregate(f, AggArg::Column(column_ref(rng)))
        }
        _ => ScalarExpr::Aggregate(AggFunc::Count, AggArg::Star),
    };
    SelectItem { expr, alias: option_of(rng, ident) }
}

/// A random WHERE predicate with up to `depth` levels of subquery nesting.
pub fn predicate(rng: &mut Rng, depth: u32) -> Predicate {
    let with_sub = |rng: &mut Rng| leaf_or_subquery(rng, depth);
    match rng.gen_range(0u32..4) {
        0 => with_sub(rng),
        1 => Predicate::And((0..rng.gen_range(2usize..4)).map(|_| with_sub(rng)).collect()),
        2 => Predicate::Or((0..rng.gen_range(2usize..4)).map(|_| with_sub(rng)).collect()),
        _ => Predicate::Not(Box::new(with_sub(rng))),
    }
}

fn leaf_or_subquery(rng: &mut Rng, depth: u32) -> Predicate {
    let choices = if depth == 0 { 3 } else { 6 };
    match rng.gen_range(0u32..choices) {
        0 => Predicate::Compare { left: operand(rng), op: compare_op(rng), right: operand(rng) },
        1 => Predicate::In {
            operand: operand(rng),
            negated: rng.gen_bool(0.5),
            rhs: InRhs::List((0..rng.gen_range(1usize..4)).map(|_| literal(rng)).collect()),
        },
        2 => Predicate::IsNull { operand: operand(rng), negated: rng.gen_bool(0.5) },
        3 => Predicate::Exists {
            negated: rng.gen_bool(0.5),
            query: Box::new(query_block(rng, depth - 1)),
        },
        4 => Predicate::In {
            operand: operand(rng),
            negated: false,
            rhs: InRhs::Subquery(Box::new(query_block(rng, depth - 1))),
        },
        _ => Predicate::Quantified {
            left: operand(rng),
            op: compare_op(rng),
            quantifier: *rng.choose(&[Quantifier::Any, Quantifier::All]),
            query: Box::new(query_block(rng, depth - 1)),
        },
    }
}

/// A random query block with up to `depth` levels of subquery nesting.
pub fn query_block(rng: &mut Rng, depth: u32) -> QueryBlock {
    QueryBlock {
        distinct: rng.gen_bool(0.5),
        select: (0..rng.gen_range(1usize..4)).map(|_| select_item(rng)).collect(),
        from: (0..rng.gen_range(1usize..3)).map(|_| table_ref(rng)).collect(),
        where_clause: option_of(rng, |rng| predicate(rng, depth)),
        group_by: (0..rng.gen_range(0usize..3)).map(|_| column_ref(rng)).collect(),
        order_by: vec![],
    }
}

// ------------------------------------------------------------- shrinkers

/// Shrink an identifier within the identifier grammar: drop trailing
/// characters and simplify toward `"A"`, never producing a keyword.
fn shrink_ident(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    if s.len() > 1 {
        out.push(s[..s.len() - 1].to_string());
    }
    if s != "A" {
        out.push("A".to_string());
    }
    out.retain(|c| Keyword::from_ident(c).is_none());
    out
}

fn shrink_opt_ident(o: &Option<String>) -> Vec<Option<String>> {
    match o {
        None => Vec::new(),
        Some(s) => {
            let mut out = vec![None];
            out.extend(shrink_ident(s).into_iter().map(Some));
            out
        }
    }
}

/// Shrink a vector elementwise and by removal, keeping at least `min`
/// elements (SELECT and FROM lists must stay non-empty).
fn shrink_vec_min<T: Shrink + Clone>(v: &[T], min: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.len() > min {
        for i in 0..v.len() {
            let mut c = v.to_vec();
            c.remove(i);
            out.push(c);
        }
    }
    for i in 0..v.len() {
        for repl in v[i].shrink() {
            let mut c = v.to_vec();
            c[i] = repl;
            out.push(c);
        }
    }
    out
}

impl Shrink for Value {
    fn shrink(&self) -> Vec<Self> {
        match self {
            Value::Null => Vec::new(),
            Value::Int(i) => i.shrink().into_iter().map(Value::Int).collect(),
            Value::Float(f) => f.shrink().into_iter().map(Value::Float).collect(),
            Value::Str(s) => s.shrink().into_iter().map(Value::Str).collect(),
            Value::Date(d) => d.shrink().into_iter().map(Value::Date).collect(),
            Value::Bool(b) => b.shrink().into_iter().map(Value::Bool).collect(),
        }
    }
}

impl Shrink for Date {
    fn shrink(&self) -> Vec<Self> {
        let anchor = Date::new(2000, 1, 1).expect("valid");
        if *self == anchor {
            Vec::new()
        } else {
            vec![anchor]
        }
    }
}

impl Shrink for ColumnRef {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<ColumnRef> = shrink_opt_ident(&self.table)
            .into_iter()
            .map(|t| ColumnRef { table: t, column: self.column.clone() })
            .collect();
        out.extend(
            shrink_ident(&self.column)
                .into_iter()
                .map(|c| ColumnRef { table: self.table.clone(), column: c }),
        );
        out
    }
}

impl Shrink for TableRef {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<TableRef> = shrink_opt_ident(&self.alias)
            .into_iter()
            .map(|a| TableRef { table: self.table.clone(), alias: a })
            .collect();
        out.extend(
            shrink_ident(&self.table)
                .into_iter()
                .map(|t| TableRef { table: t, alias: self.alias.clone() }),
        );
        out
    }
}

impl Shrink for SelectItem {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<SelectItem> = shrink_opt_ident(&self.alias)
            .into_iter()
            .map(|a| SelectItem { expr: self.expr.clone(), alias: a })
            .collect();
        let exprs: Vec<ScalarExpr> = match &self.expr {
            ScalarExpr::Column(c) => c.shrink().into_iter().map(ScalarExpr::Column).collect(),
            ScalarExpr::Literal(v) => v.shrink().into_iter().map(ScalarExpr::Literal).collect(),
            // `*` stays COUNT-only, so never cross between Star and Column.
            ScalarExpr::Aggregate(f, AggArg::Column(c)) => {
                let mut e: Vec<ScalarExpr> = c
                    .shrink()
                    .into_iter()
                    .map(|c| ScalarExpr::Aggregate(*f, AggArg::Column(c)))
                    .collect();
                e.push(ScalarExpr::Column(c.clone()));
                e
            }
            ScalarExpr::Aggregate(_, AggArg::Star) => Vec::new(),
        };
        out.extend(exprs.into_iter().map(|expr| SelectItem { expr, alias: self.alias.clone() }));
        out
    }
}

impl Shrink for Operand {
    fn shrink(&self) -> Vec<Self> {
        match self {
            Operand::Column(c) => c.shrink().into_iter().map(Operand::Column).collect(),
            Operand::Literal(v) => v.shrink().into_iter().map(Operand::Literal).collect(),
            Operand::Subquery(q) => {
                q.shrink().into_iter().map(|q| Operand::Subquery(Box::new(q))).collect()
            }
        }
    }
}

impl Shrink for Predicate {
    fn shrink(&self) -> Vec<Self> {
        match self {
            // A conjunct/disjunct list first collapses to any single child,
            // then shrinks as a list of at least two (the printer drops
            // 1-element AND/OR, which would break the round-trip shape).
            Predicate::And(ps) => {
                let mut out = ps.clone();
                out.extend(shrink_vec_min(ps, 2).into_iter().map(Predicate::And));
                out
            }
            Predicate::Or(ps) => {
                let mut out = ps.clone();
                out.extend(shrink_vec_min(ps, 2).into_iter().map(Predicate::Or));
                out
            }
            Predicate::Not(p) => {
                let mut out = vec![(**p).clone()];
                out.extend(p.shrink().into_iter().map(|p| Predicate::Not(Box::new(p))));
                out
            }
            Predicate::Compare { left, op, right } => {
                let mut out: Vec<Predicate> = left
                    .shrink()
                    .into_iter()
                    .map(|l| Predicate::Compare { left: l, op: *op, right: right.clone() })
                    .collect();
                out.extend(right.shrink().into_iter().map(|r| Predicate::Compare {
                    left: left.clone(),
                    op: *op,
                    right: r,
                }));
                out
            }
            Predicate::In { operand, negated, rhs } => {
                let mut out = Vec::new();
                if *negated {
                    out.push(Predicate::In {
                        operand: operand.clone(),
                        negated: false,
                        rhs: rhs.clone(),
                    });
                }
                let rhss: Vec<InRhs> = match rhs {
                    InRhs::List(vs) => {
                        shrink_vec_min(vs, 1).into_iter().map(InRhs::List).collect()
                    }
                    InRhs::Subquery(q) => {
                        q.shrink().into_iter().map(|q| InRhs::Subquery(Box::new(q))).collect()
                    }
                };
                out.extend(rhss.into_iter().map(|rhs| Predicate::In {
                    operand: operand.clone(),
                    negated: *negated,
                    rhs,
                }));
                out.extend(operand.shrink().into_iter().map(|o| Predicate::In {
                    operand: o,
                    negated: *negated,
                    rhs: rhs.clone(),
                }));
                out
            }
            Predicate::IsNull { operand, negated } => {
                let mut out = Vec::new();
                if *negated {
                    out.push(Predicate::IsNull { operand: operand.clone(), negated: false });
                }
                out.extend(
                    operand
                        .shrink()
                        .into_iter()
                        .map(|o| Predicate::IsNull { operand: o, negated: *negated }),
                );
                out
            }
            Predicate::Exists { negated, query } => {
                let mut out = Vec::new();
                if *negated {
                    out.push(Predicate::Exists { negated: false, query: query.clone() });
                }
                out.extend(query.shrink().into_iter().map(|q| Predicate::Exists {
                    negated: *negated,
                    query: Box::new(q),
                }));
                out
            }
            Predicate::Quantified { left, op, quantifier, query } => {
                let mut out: Vec<Predicate> = query
                    .shrink()
                    .into_iter()
                    .map(|q| Predicate::Quantified {
                        left: left.clone(),
                        op: *op,
                        quantifier: *quantifier,
                        query: Box::new(q),
                    })
                    .collect();
                out.extend(left.shrink().into_iter().map(|l| Predicate::Quantified {
                    left: l,
                    op: *op,
                    quantifier: *quantifier,
                    query: query.clone(),
                }));
                out
            }
        }
    }
}

impl Shrink for QueryBlock {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.distinct {
            out.push(QueryBlock { distinct: false, ..self.clone() });
        }
        for select in shrink_vec_min(&self.select, 1) {
            out.push(QueryBlock { select, ..self.clone() });
        }
        for from in shrink_vec_min(&self.from, 1) {
            out.push(QueryBlock { from, ..self.clone() });
        }
        for where_clause in self.where_clause.shrink() {
            out.push(QueryBlock { where_clause, ..self.clone() });
        }
        for group_by in shrink_vec_min(&self.group_by, 0) {
            out.push(QueryBlock { group_by, ..self.clone() });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_are_never_keywords_and_well_formed() {
        let mut rng = Rng::from_seed(11);
        for _ in 0..500 {
            let s = ident(&mut rng);
            assert!(Keyword::from_ident(&s).is_none(), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.len() <= 7);
            for c in shrink_ident(&s) {
                assert!(Keyword::from_ident(&c).is_none(), "shrunk {c}");
                assert!(!c.is_empty());
            }
        }
    }

    #[test]
    fn query_block_shrink_preserves_grammar_minima() {
        let mut rng = Rng::from_seed(23);
        for _ in 0..100 {
            let q = query_block(&mut rng, 1);
            for cand in q.shrink() {
                assert!(!cand.select.is_empty(), "SELECT list must stay non-empty");
                assert!(!cand.from.is_empty(), "FROM list must stay non-empty");
            }
        }
    }

    #[test]
    fn relation_generator_respects_schema() {
        let mut rng = Rng::from_seed(5);
        let schema = Schema::new(vec![
            nsql_types::Column::new("K", ColumnType::Int),
            nsql_types::Column::new("D", ColumnType::Date),
        ]);
        let r = relation(&mut rng, schema, 0..30);
        assert!(r.len() < 30);
        for t in r.tuples() {
            assert_eq!(t.values().len(), 2);
        }
    }
}
