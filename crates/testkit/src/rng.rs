//! Seedable, dependency-free PRNG: xoshiro256++ with SplitMix64 seeding.
//!
//! xoshiro256++ (Blackman & Vigna, 2019) is the standard small fast
//! generator for simulation workloads; SplitMix64 expands a 64-bit seed
//! into the 256-bit state so that *any* `u64` — including 0 — is a valid,
//! well-mixed seed. Not cryptographic; do not use for secrets.

/// One SplitMix64 step: advances `x` and returns the next output.
pub fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn from_seed(seed: u64) -> Rng {
        let mut x = seed;
        Rng { s: [splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x)] }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator (e.g. one per test case).
    pub fn fork(&mut self) -> Rng {
        Rng::from_seed(self.next_u64())
    }

    /// Uniform in `[0, n)`; unbiased via rejection sampling. Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Reject the final partial block so every residue is equally likely.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform value in the half-open range `lo..hi`. Panics on an empty range.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// A uniformly chosen reference into a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleRange: Sized {
    /// Sample uniformly from `range`; panics when the range is empty.
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range {:?}", range);
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range {:?}", range);
                let span = (range.end as u128 - range.start as u128) as u64;
                (range.start as u128 + rng.next_below(span) as u128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64);
impl_sample_unsigned!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::from_seed(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_endpoints() {
        let mut r = Rng::from_seed(7);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen, "2000 draws should hit both endpoints");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::from_seed(1);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is virtually never identity");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Rng::from_seed(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.9)).count();
        assert!((8700..=9300).contains(&hits), "p=0.9 gave {hits}/10000");
    }
}
