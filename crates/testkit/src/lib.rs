#![deny(warnings)]
#![warn(missing_docs)]

//! Hermetic test infrastructure for the nested-query-opt workspace.
//!
//! The workspace builds and tests **offline**: no crates-io dependency is
//! allowed anywhere. This crate supplies, in-tree, the three things the
//! test layer previously pulled from the registry:
//!
//! * [`rng`] — a seedable xoshiro256++ PRNG (SplitMix64-seeded) with
//!   `gen_range`, `choose`, and `shuffle` (replaces `rand`);
//! * [`prop`] + [`shrink`] + [`gen`] — a minimal property-testing harness:
//!   generators are plain `Fn(&mut Rng) -> T` closures, the [`prop::forall`]
//!   runner reports a **replayable seed** on failure and greedily shrinks
//!   the counterexample (replaces `proptest`);
//! * [`bench`] — a tiny `harness = false` micro-benchmark timer with
//!   warmup, median-of-N reporting, and optional JSON output (replaces
//!   `criterion`).
//!
//! Every randomized test in the workspace is deterministic by default and
//! replayable via two environment variables:
//!
//! * `NSQL_TEST_CASES` — number of cases per property (harness default
//!   picks a per-property count);
//! * `NSQL_TEST_SEED` — run case 0 with exactly this seed (accepts decimal
//!   or `0x…` hex), which is what a failure report prints.

pub mod bench;
pub mod gen;
pub mod prop;
pub mod rng;
pub mod tempdir;
pub mod shrink;

pub use bench::{black_box, Bench};
pub use prop::{forall, forall_cfg, run_property, Config, Failure, PropResult};
pub use rng::Rng;
pub use tempdir::TempDir;
pub use shrink::Shrink;
