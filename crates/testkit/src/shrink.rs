//! Greedy input shrinking.
//!
//! [`Shrink::shrink`] proposes a finite list of *strictly simpler*
//! candidates for a value; the runner keeps the first candidate that still
//! fails the property and repeats until no candidate fails. Greedy
//! first-fail descent (rather than proptest's lazily explored tree) is
//! simple, deterministic, and in practice lands on near-minimal
//! counterexamples for the tuple/relation inputs used in this workspace.

/// Values that can propose simpler versions of themselves.
///
/// The default implementation proposes nothing, so opaque test enums can
/// opt in with an empty `impl Shrink for MyEnum {}`.
pub trait Shrink: Sized {
    /// Strictly simpler candidate values, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let x = *self;
                if x == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, x / 2];
                // Step toward zero by one: catches off-by-one boundaries
                // that halving jumps over.
                out.push(if x > 0 { x - 1 } else { x + 1 });
                out.dedup();
                out.retain(|&c| c != x);
                out
            }
        }
    )*};
}

impl_shrink_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let x = *self;
        if x == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0, x / 2.0, x.trunc()];
        out.retain(|&c| c != x);
        out
    }
}

impl Shrink for char {
    fn shrink(&self) -> Vec<Self> {
        // Pull toward the canonical smallest member of the value's class.
        let target = match self {
            'a'..='z' => 'a',
            'A'..='Z' => 'A',
            '0'..='9' => '0',
            _ => return Vec::new(),
        };
        if *self == target { Vec::new() } else { vec![target] }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        let mut out = Vec::new();
        // Drop one character at a time (keeps regex-shaped inputs valid
        // more often than chunk removal on short strings).
        for i in 0..chars.len() {
            let mut c = chars.clone();
            c.remove(i);
            out.push(c.into_iter().collect());
        }
        // Simplify one character in place.
        for i in 0..chars.len() {
            for repl in chars[i].shrink() {
                let mut c = chars.clone();
                c[i] = repl;
                out.push(c.iter().collect());
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(x) => {
                let mut out = vec![None];
                out.extend(x.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        // Remove progressively smaller chunks: empty, halves, then single
        // elements, so long vectors collapse in O(log n) rounds.
        out.push(Vec::new());
        let mut chunk = self.len() / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= self.len() {
                let mut v = self.clone();
                v.drain(start..start + chunk);
                out.push(v);
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Then shrink elements in place.
        for i in 0..self.len() {
            for repl in self[i].shrink() {
                let mut v = self.clone();
                v[i] = repl;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($n:tt $T:ident),+))*) => {$(
        impl<$($T: Shrink + Clone),+> Shrink for ($($T,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$n.shrink() {
                        let mut t = self.clone();
                        t.$n = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}

impl_shrink_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

impl Shrink for &'static str {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_shrink_toward_zero() {
        assert!(100i64.shrink().contains(&0));
        assert!(100i64.shrink().contains(&50));
        assert!(100i64.shrink().contains(&99));
        assert!((-7i64).shrink().contains(&-6));
        assert!(0i64.shrink().is_empty());
    }

    #[test]
    fn vec_shrink_proposes_empty_and_element_removal() {
        let v = vec![3i64, 1, 4];
        let cands = v.shrink();
        assert!(cands.contains(&vec![]));
        assert!(cands.contains(&vec![1, 4]), "single-element removal");
        assert!(cands.iter().any(|c| c == &vec![0, 1, 4]), "element shrink");
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        let cands = (4i64, true).shrink();
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(4, false)));
    }
}
