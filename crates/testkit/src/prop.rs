//! The property runner: generate, check, and on failure shrink + report a
//! replayable seed.
//!
//! A property test is three plain pieces:
//!
//! * a generator `Fn(&mut Rng) -> T`;
//! * a property `Fn(&T) -> PropResult` (use [`prop_assert!`] /
//!   [`prop_assert_eq!`] / [`prop_assert_ne!`] inside, and end with
//!   `Ok(())`);
//! * a call to [`forall`], which panics with a full report — seed, case
//!   number, original and shrunk counterexample — if any case fails.
//!
//! Replaying a failure: the report prints `NSQL_TEST_SEED=0x…`; with that
//! variable set, case 0 regenerates exactly the reported input
//! (`NSQL_TEST_CASES=1` stops after it).

use crate::rng::{splitmix64, Rng};
use crate::shrink::Shrink;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of one property evaluation: `Err` carries the assertion message.
pub type PropResult = Result<(), String>;

/// Default base seed (ASCII "nsqltest" truncated); every run is
/// deterministic unless `NSQL_TEST_SEED` overrides it.
pub const DEFAULT_SEED: u64 = 0x6e73_716c_7465_7374;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Seed for case 0 when pinned by the environment, else `None`.
    pub env_seed: Option<u64>,
    /// Cap on accepted shrink steps (and, ×8, on candidate evaluations).
    pub max_shrink_steps: u32,
}

impl Config {
    /// `cases` cases, honouring `NSQL_TEST_CASES` and `NSQL_TEST_SEED`.
    pub fn cases(cases: u32) -> Config {
        let cases = match std::env::var("NSQL_TEST_CASES") {
            Ok(v) => v.parse().unwrap_or_else(|_| panic!("bad NSQL_TEST_CASES: {v}")),
            Err(_) => cases,
        };
        let env_seed = std::env::var("NSQL_TEST_SEED").ok().map(|v| parse_seed(&v));
        Config { cases, env_seed, max_shrink_steps: 2048 }
    }
}

fn parse_seed(v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("bad NSQL_TEST_SEED: {v}"))
}

/// A failing case, after shrinking.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Property name as passed to the runner.
    pub name: String,
    /// Seed that regenerates `original` as case 0.
    pub seed: u64,
    /// Which case (0-based) failed first.
    pub case: u32,
    /// The input as generated.
    pub original: T,
    /// The input after greedy shrinking (== `original` if nothing smaller fails).
    pub shrunk: T,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
    /// The failure message of the *shrunk* input.
    pub message: String,
}

impl<T: fmt::Debug> Failure<T> {
    /// The full human-readable report.
    pub fn render(&self) -> String {
        format!(
            "property '{}' failed at case {} (seed {:#018x})\n\
             replay: NSQL_TEST_SEED={:#x} NSQL_TEST_CASES=1\n\
             original input: {:?}\n\
             shrunk input ({} steps): {:?}\n\
             error: {}",
            self.name, self.case, self.seed, self.seed, self.original, self.shrink_steps,
            self.shrunk, self.message
        )
    }
}

/// Evaluate the property, converting a panic into a failure message so the
/// shrinker can keep working through `unwrap`-style crashes.
fn eval<T, P: Fn(&T) -> PropResult>(prop: &P, input: &T) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked (non-string payload)".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Run `prop` on `cfg.cases` random inputs; return the (shrunk) first
/// failure, or `None` if every case passed. [`forall`] wraps this in a
/// panic; tests that *expect* a failure call it directly.
pub fn run_property<T, G, P>(cfg: &Config, name: &str, generate: G, prop: P) -> Option<Failure<T>>
where
    T: Shrink + Clone + fmt::Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> PropResult,
{
    // Without an env override, the per-case seed stream is derived from the
    // property name so distinct properties explore distinct inputs.
    let mut stream = DEFAULT_SEED ^ fnv1a(name.as_bytes());
    for case in 0..cfg.cases {
        let case_seed = match (case, cfg.env_seed) {
            (0, Some(s)) => s,
            _ => splitmix64(&mut stream),
        };
        let mut rng = Rng::from_seed(case_seed);
        let input = generate(&mut rng);
        if let Err(first_message) = eval(&prop, &input) {
            let (shrunk, shrink_steps, message) =
                shrink_failure(cfg, &prop, input.clone(), first_message);
            return Some(Failure {
                name: name.to_string(),
                seed: case_seed,
                case,
                original: input,
                shrunk,
                shrink_steps,
                message,
            });
        }
    }
    None
}

/// Greedy descent: take the first shrink candidate that still fails,
/// repeat until none does (or the step/evaluation budget runs out).
fn shrink_failure<T, P>(cfg: &Config, prop: &P, mut current: T, mut message: String) -> (T, u32, String)
where
    T: Shrink + Clone + fmt::Debug,
    P: Fn(&T) -> PropResult,
{
    let mut steps = 0u32;
    let mut evals = 0u64;
    let eval_budget = u64::from(cfg.max_shrink_steps) * 8;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in current.shrink() {
            evals += 1;
            if evals > eval_budget {
                break 'outer;
            }
            if let Err(m) = eval(prop, &candidate) {
                current = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: every simpler candidate passes
    }
    (current, steps, message)
}

/// Run a property over `cases` random inputs and panic with a replayable
/// report on the first (shrunk) failure.
pub fn forall<T, G, P>(cases: u32, name: &str, generate: G, prop: P)
where
    T: Shrink + Clone + fmt::Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> PropResult,
{
    forall_cfg(&Config::cases(cases), name, generate, prop);
}

/// [`forall`] with an explicit [`Config`].
pub fn forall_cfg<T, G, P>(cfg: &Config, name: &str, generate: G, prop: P)
where
    T: Shrink + Clone + fmt::Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> PropResult,
{
    if let Some(failure) = run_property(cfg, name, generate, prop) {
        panic!("{}", failure.render());
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fail the surrounding property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}\n{}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Fail the surrounding property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)));
        }
    }};
}

/// Fail the surrounding property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!("assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err(format!("assertion failed: {} != {}\n  both: {:?}\n{}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cases: u32) -> Config {
        // Ignore the ambient environment so these meta-tests are stable.
        Config { cases, env_seed: None, max_shrink_steps: 2048 }
    }

    #[test]
    fn passing_property_reports_no_failure() {
        let f = run_property(
            &cfg(200),
            "sum_commutes",
            |rng| (rng.gen_range(-100i64..100), rng.gen_range(-100i64..100)),
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        assert!(f.is_none());
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // "No vector sums to ≥ 10" is false. At any greedy local minimum
        // the sum is *exactly* 10 (one more decrement would pass) and no
        // element is 0 (removing it would still fail).
        let f = run_property(
            &cfg(200),
            "sums_stay_small",
            |rng| {
                let n = rng.gen_range(0usize..12);
                (0..n).map(|_| rng.gen_range(0i64..50)).collect::<Vec<i64>>()
            },
            |v| {
                prop_assert!(v.iter().sum::<i64>() < 10, "sum = {}", v.iter().sum::<i64>());
                Ok(())
            },
        )
        .expect("property is false");
        assert_eq!(f.shrunk.iter().sum::<i64>(), 10, "local minimum sums to exactly 10: {:?}", f.shrunk);
        assert!(!f.shrunk.contains(&0), "zero elements are removable: {:?}", f.shrunk);
        assert!(f.render().contains("NSQL_TEST_SEED="), "report must be replayable");
    }

    #[test]
    fn reported_seed_replays_the_original_input() {
        let generate = |rng: &mut Rng| {
            let n = rng.gen_range(1usize..8);
            (0..n).map(|_| rng.gen_range(0i64..100)).collect::<Vec<i64>>()
        };
        let f = run_property(&cfg(500), "has_no_big_element", generate, |v| {
            prop_assert!(v.iter().all(|&x| x < 90));
            Ok(())
        })
        .expect("property is false");
        // Replay: env-pinned seed regenerates the same input as case 0.
        let replay = Config { cases: 1, env_seed: Some(f.seed), max_shrink_steps: 0 };
        let again = run_property(&replay, "has_no_big_element", generate, |v| {
            prop_assert!(v.iter().all(|&x| x < 90));
            Ok(())
        })
        .expect("still fails");
        assert_eq!(again.original, f.original);
    }

    #[test]
    fn panics_inside_properties_are_shrinkable_failures() {
        let f = run_property(
            &cfg(100),
            "index_in_bounds",
            |rng| rng.gen_range(0usize..20),
            |&n| {
                let v = [0u8; 10];
                let _ = v[n]; // panics for n >= 10
                Ok(())
            },
        )
        .expect("out-of-bounds indices occur");
        assert_eq!(f.shrunk, 10, "minimal out-of-bounds index");
        assert!(f.message.contains("panic"));
    }
}
