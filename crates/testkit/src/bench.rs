//! A tiny `harness = false` micro-benchmark timer.
//!
//! API shape intentionally mirrors the slice of Criterion the workspace
//! used — `group` / `sample_size` / `bench_function` / `iter` — so bench
//! files read the same, with none of the registry dependencies.
//!
//! Behaviour:
//!
//! * **warmup** — each benchmark runs untimed until ~100 ms (at least 2
//!   iterations) before sampling, so cold caches don't pollute sample 0;
//! * **median-of-N** — N timed samples (default 10, or
//!   [`BenchGroup::sample_size`]; env `NSQL_BENCH_SAMPLES` overrides all),
//!   reported as `median (min … max)`. Medians resist scheduler noise
//!   without criterion's bootstrap machinery;
//! * **JSON** — with `NSQL_BENCH_JSON=<path>`, appends one JSON object per
//!   benchmark (group, name, nanosecond stats) for scripting;
//! * **test mode** — cargo runs `harness = false` bench targets during
//!   `cargo test` passing `--test`: each closure then runs once, untimed,
//!   as a smoke test, keeping tier-1 fast while still executing the code.

pub use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level bench context; create one per bench binary via
/// [`Bench::from_env`] and pass to each bench function.
pub struct Bench {
    test_mode: bool,
    sample_override: Option<usize>,
    json_path: Option<String>,
}

impl Bench {
    /// Build from process args (`--test` → smoke mode) and environment
    /// (`NSQL_BENCH_SAMPLES`, `NSQL_BENCH_JSON`).
    pub fn from_env() -> Bench {
        let test_mode = std::env::args().any(|a| a == "--test");
        let sample_override = std::env::var("NSQL_BENCH_SAMPLES")
            .ok()
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad NSQL_BENCH_SAMPLES: {v}")));
        Bench { test_mode, sample_override, json_path: std::env::var("NSQL_BENCH_JSON").ok() }
    }

    /// Start a named group of benchmarks.
    pub fn group(&mut self, name: &str) -> BenchGroup<'_> {
        if !self.test_mode {
            println!("── {name}");
        }
        BenchGroup { bench: self, name: name.to_string(), samples: 10 }
    }
}

/// A named group of related benchmarks.
pub struct BenchGroup<'a> {
    bench: &'a mut Bench,
    name: String,
    samples: usize,
}

impl BenchGroup<'_> {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Run one benchmark. The closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly once with the code under measurement.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.bench.sample_override.unwrap_or(self.samples);
        let mut b = Bencher { mode: if self.bench.test_mode { Mode::Smoke } else { Mode::Measure { samples } }, stats: None };
        f(&mut b);
        match (self.bench.test_mode, b.stats) {
            (true, _) => println!("smoke {}/{id} ... ok", self.name),
            (false, Some(stats)) => {
                println!(
                    "  {id:<28} {:>12} ({} … {}) n={samples}",
                    fmt_ns(stats.median_ns),
                    fmt_ns(stats.min_ns),
                    fmt_ns(stats.max_ns),
                );
                if let Some(path) = &self.bench.json_path {
                    let line = format!(
                        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
                        self.name, id, stats.median_ns, stats.min_ns, stats.max_ns, samples
                    );
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                        .and_then(|mut f| f.write_all(line.as_bytes()))
                        .unwrap_or_else(|e| panic!("cannot write NSQL_BENCH_JSON={path}: {e}"));
                }
            }
            (false, None) => panic!("benchmark '{id}' never called Bencher::iter"),
        }
        self
    }

    /// End the group (parity with the Criterion API; prints nothing).
    pub fn finish(&mut self) {}
}

enum Mode {
    Smoke,
    Measure { samples: usize },
}

struct Stats {
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

/// Handed to the benchmark closure; drives warmup and sampling.
pub struct Bencher {
    mode: Mode,
    stats: Option<Stats>,
}

impl Bencher {
    /// Measure `f`: warm up, then time `samples` runs and record
    /// median/min/max. In smoke mode, runs `f` once.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure { samples } => {
                // Warmup: at least 2 iterations, until ~100 ms elapses.
                let warm_start = Instant::now();
                let mut warm_iters = 0u32;
                while warm_iters < 2 || warm_start.elapsed() < Duration::from_millis(100) {
                    black_box(f());
                    warm_iters += 1;
                    if warm_iters >= 10_000 {
                        break;
                    }
                }
                let mut times: Vec<u128> = (0..samples)
                    .map(|_| {
                        let t = Instant::now();
                        black_box(f());
                        t.elapsed().as_nanos()
                    })
                    .collect();
                times.sort_unstable();
                self.stats = Some(Stats {
                    median_ns: times[times.len() / 2],
                    min_ns: times[0],
                    max_ns: times[times.len() - 1],
                });
            }
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Generate the `fn main()` of a `harness = false` bench target from a
/// list of `fn(&mut Bench)` benchmark functions (the shape
/// `criterion_group!`/`criterion_main!` used to provide).
#[macro_export]
macro_rules! bench_main {
    ($($f:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::from_env();
            $($f(&mut bench);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200 s");
    }

    #[test]
    fn measure_mode_produces_ordered_stats() {
        let mut b = Bencher { mode: Mode::Measure { samples: 5 }, stats: None };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        let s = b.stats.expect("stats recorded");
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.min_ns >= 50_000, "sleep(50µs) cannot take less");
    }
}
