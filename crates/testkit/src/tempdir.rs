//! Unique, self-cleaning temporary directories for file-backed tests.
//!
//! The workspace has zero crates-io dependencies, so this is the in-tree
//! stand-in for `tempfile`: a directory under `NSQL_DATA_DIR` (or the
//! system temp dir) whose name mixes the process id with a process-wide
//! counter, removed recursively on drop. Tests that crash mid-run leave
//! their directory behind, but never collide with a later run — and
//! `scripts/verify.sh` points `NSQL_DATA_DIR` at a per-run `mktemp -d`
//! that it removes on exit, so repeated verification runs accumulate no
//! state.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory, created on construction and recursively
/// deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory whose name starts with `prefix`.
    ///
    /// Lives under `NSQL_DATA_DIR` when that is set (the verify-script
    /// contract), else under the system temp dir.
    pub fn new(prefix: &str) -> TempDir {
        let base = std::env::var_os("NSQL_DATA_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_paths_and_cleanup() {
        let a = TempDir::new("nsql-test");
        let b = TempDir::new("nsql-test");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "drop must remove the tree");
    }
}
