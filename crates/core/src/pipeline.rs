//! Transformation output: temporary tables plus the canonical query.

use crate::logical::LogicalPlan;
use nsql_sql::{print_query, QueryBlock};
use std::fmt;

/// One temporary table to materialize before the canonical query runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TempTable {
    /// Generated name (`TEMP1`, `TEMP2`, …).
    pub name: String,
    /// Defining plan.
    pub plan: LogicalPlan,
}

/// The result of transforming a nested query: an ordered list of temporary
/// tables (earlier temps may be referenced by later ones) and a flat
/// canonical [`QueryBlock`] over base tables plus those temps.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPlan {
    /// Temporaries in creation order.
    pub temps: Vec<TempTable>,
    /// The canonical (single-level) query.
    pub canonical: QueryBlock,
    /// Human-readable log of the transformation steps taken, in the style
    /// of the paper's walkthroughs.
    pub trace: Vec<String>,
    /// Set when a faithful NEST-N-J IN-merge may duplicate outer tuples and
    /// the caller asked for duplicate-preserving semantics; `nsql-db`
    /// applies a final DISTINCT in that mode (see DESIGN.md).
    pub needs_distinct_for_semantics: bool,
}

impl TransformPlan {
    /// A plan with no temporaries (the query was already flat, or only
    /// NEST-N-J merges were needed).
    pub fn flat(canonical: QueryBlock) -> TransformPlan {
        TransformPlan {
            temps: Vec::new(),
            canonical,
            trace: Vec::new(),
            needs_distinct_for_semantics: false,
        }
    }

    /// Number of temporary tables.
    pub fn temp_count(&self) -> usize {
        self.temps.len()
    }
}

impl fmt::Display for TransformPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.temps {
            writeln!(f, "-- {} :=", t.name)?;
            write!(f, "{}", t.plan.explain())?;
        }
        write!(f, "-- canonical:\n{}", print_query(&self.canonical))
    }
}

/// Generator of fresh temporary-table names that avoids a caller-supplied
/// set of reserved names (base tables and names already used).
pub struct TempNamer {
    next: usize,
    reserved: Vec<String>,
}

impl TempNamer {
    /// Namer that will avoid `reserved` names.
    pub fn new(reserved: Vec<String>) -> TempNamer {
        TempNamer { next: 1, reserved }
    }

    /// Reserve and return a fresh name.
    pub fn fresh(&mut self, prefix: &str) -> String {
        loop {
            let candidate = format!("{prefix}{}", self.next);
            self.next += 1;
            if !self.reserved.iter().any(|r| r.eq_ignore_ascii_case(&candidate)) {
                self.reserved.push(candidate.clone());
                return candidate;
            }
        }
    }

    /// Mark a name as taken.
    pub fn reserve(&mut self, name: impl Into<String>) {
        self.reserved.push(name.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namer_skips_reserved() {
        let mut n = TempNamer::new(vec!["TEMP1".into(), "temp2".into()]);
        assert_eq!(n.fresh("TEMP"), "TEMP3");
        assert_eq!(n.fresh("TEMP"), "TEMP4");
        n.reserve("TEMP5");
        assert_eq!(n.fresh("TEMP"), "TEMP6");
    }

    #[test]
    fn display_shows_temps_and_canonical() {
        let plan = TransformPlan {
            temps: vec![TempTable { name: "TEMP1".into(), plan: LogicalPlan::scan("PARTS") }],
            canonical: nsql_sql::parse_query("SELECT PNUM FROM PARTS").unwrap(),
            trace: vec![],
            needs_distinct_for_semantics: false,
        };
        let s = plan.to_string();
        assert!(s.contains("-- TEMP1 :="), "{s}");
        assert!(s.contains("-- canonical:"), "{s}");
    }
}
