//! Algorithm NEST-JA2 (Section 6) — and the shared type-JA analysis.
//!
//! The three steps of the algorithm, quoted from Section 6.1:
//!
//! > 1. Project the join column of the outer relation, and restrict it with
//! >    any simple predicates applying to the outer relation.
//! > 2. Create a temporary relation, joining the inner relation with the
//! >    projection of the outer relation. If the aggregate function is
//! >    COUNT, the join must be an outer join, and the inner relation must
//! >    be restricted and projected before the join is performed. If the
//! >    aggregate function is COUNT(*), compute the COUNT function over the
//! >    join column. The join predicate must use the same operator as the
//! >    join predicate in the original query (except that it must be
//! >    converted to the corresponding outer operator in the case of
//! >    COUNT), and the join predicate in the original query must be
//! >    changed to `=`. In the SELECT clause, select the join column from
//! >    the outer table in the join predicate instead of the inner table.
//! >    The GROUP BY clause will also contain columns from the outer
//! >    relation.
//! > 3. Join the outer relation with the temporary relation, according to
//! >    the transformed version of the original query.
//!
//! [`apply_ja2`] implements steps 1 and 2, rewriting the aggregate inner
//! block into a type-J block over the temporary (Lemma 2's Q4 shape); the
//! recursive driver immediately finishes step 3 with NEST-N-J.

use crate::error::TransformError;
use crate::logical::{AggItem, JoinPred, LogicalJoinKind, LogicalPlan};
use crate::pipeline::{TempNamer, TempTable};
use crate::Result;
use nsql_analyzer::resolve::predicate_column_refs;
use nsql_obs::Tracer;
use nsql_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, Operand, Predicate, QueryBlock, ScalarExpr,
    SelectItem, TableRef,
};

/// One correlated join predicate of the inner block, oriented as
/// `inner_col op outer_col`.
#[derive(Debug, Clone, PartialEq)]
pub struct Correlation {
    /// Column of an inner relation.
    pub inner_col: ColumnRef,
    /// Operator with the inner column on the left.
    pub op: CompareOp,
    /// Column of the (single) outer relation.
    pub outer_col: ColumnRef,
}

/// Analysis of a type-JA inner block.
#[derive(Debug, Clone)]
pub struct JaAnalysis {
    /// The aggregate in the inner SELECT.
    pub func: AggFunc,
    /// Its argument.
    pub arg: AggArg,
    /// Conjuncts local to the inner relations.
    pub local_pred: Option<Predicate>,
    /// The correlated join predicates.
    pub correlations: Vec<Correlation>,
    /// Effective name of the outer relation all correlations reference.
    pub outer_name: String,
}

/// Decompose a (flat, fully-qualified) aggregate inner block into the parts
/// the JA algorithms work with. Errors if the block is outside the class
/// the paper's algorithms handle (disjunctive correlation, multiple outer
/// relations, non-column correlation operands, …).
pub fn analyze_ja(inner: &QueryBlock) -> Result<JaAnalysis> {
    if inner.select.len() != 1 {
        return Err(TransformError::Unsupported(
            "type-JA inner block must select exactly one aggregate".into(),
        ));
    }
    let (func, arg) = match &inner.select[0].expr {
        ScalarExpr::Aggregate(f, a) => (*f, a.clone()),
        other => {
            return Err(TransformError::Internal(format!(
                "analyze_ja on non-aggregate select {other:?}"
            )))
        }
    };
    if !inner.group_by.is_empty() {
        return Err(TransformError::Unsupported(
            "inner block already has GROUP BY".into(),
        ));
    }
    let inner_names: Vec<&str> = inner.from_names();
    let is_local_ref =
        |c: &ColumnRef| c.table.as_deref().is_some_and(|t| inner_names.contains(&t));

    let mut local = Vec::new();
    let mut correlations = Vec::new();
    let mut outer_name: Option<String> = None;
    for conjunct in inner
        .where_clause
        .as_ref()
        .map(|p| p.conjuncts().into_iter().cloned().collect::<Vec<_>>())
        .unwrap_or_default()
    {
        let refs = predicate_column_refs(&conjunct);
        let all_local = refs.iter().all(|c| is_local_ref(c));
        if all_local {
            local.push(conjunct);
            continue;
        }
        // A correlated conjunct must be a column-to-column comparison with
        // exactly one local side.
        let Predicate::Compare {
            left: Operand::Column(a),
            op,
            right: Operand::Column(b),
        } = &conjunct
        else {
            return Err(TransformError::Unsupported(format!(
                "correlated predicate is not a simple column comparison: {}",
                nsql_sql::print_predicate(&conjunct)
            )));
        };
        let (inner_col, op, outer_col) = match (is_local_ref(a), is_local_ref(b)) {
            (true, false) => (a.clone(), *op, b.clone()),
            (false, true) => (b.clone(), op.flip(), a.clone()),
            _ => {
                return Err(TransformError::Unsupported(format!(
                    "correlated predicate must join one inner and one outer column: {}",
                    nsql_sql::print_predicate(&conjunct)
                )))
            }
        };
        let o = outer_col
            .table
            .clone()
            .ok_or_else(|| TransformError::Internal("unqualified outer column".into()))?;
        match &outer_name {
            None => outer_name = Some(o),
            Some(existing) if *existing == o => {}
            Some(existing) => {
                return Err(TransformError::Unsupported(format!(
                    "correlations reference multiple outer relations ({existing} and {o})"
                )))
            }
        }
        correlations.push(Correlation { inner_col, op, outer_col });
    }
    let outer_name = outer_name.ok_or_else(|| {
        TransformError::Internal("analyze_ja on uncorrelated block (type-A?)".into())
    })?;
    Ok(JaAnalysis {
        func,
        arg,
        local_pred: if local.is_empty() { None } else { Some(Predicate::and(local)) },
        correlations,
        outer_name,
    })
}

/// Configuration knobs for [`apply_ja2`] — the defaults are the paper's
/// algorithm; each `false` reproduces one of the failure modes the paper
/// warns about.
#[derive(Debug, Clone, Copy)]
pub struct Ja2Config {
    /// Step 1's DISTINCT projection of the outer join column. Disabling it
    /// reproduces the Section-5.4 duplicates problem.
    pub project_outer: bool,
    /// Apply the inner relation's simple predicates *before* the join
    /// (building `Rt3`). Disabling it applies them to the join result
    /// instead, reproducing the Section-5.2 warning: "the condition which
    /// applies to only one relation must be applied before the join is
    /// performed. Otherwise the join would not contain the last row, and
    /// the result would be incorrect."
    pub restrict_before_join: bool,
}

impl Default for Ja2Config {
    fn default() -> Self {
        Ja2Config { project_outer: true, restrict_before_join: true }
    }
}

/// Information about the enclosing scopes needed by the JA transformations:
/// for a given effective table name, its base table and the simple
/// predicates restricting it in its owning block.
pub trait OuterScope {
    /// The base table behind an effective (possibly aliased) name visible
    /// in some enclosing block.
    fn base_table(&self, effective: &str) -> Option<String>;
    /// Simple conjuncts of the owning block that reference only this
    /// table (used to restrict the TEMP1 projection — Section 6 step 1).
    fn simple_predicates(&self, effective: &str) -> Vec<Predicate>;
}

/// Apply NEST-JA2 to a type-JA inner block. Appends the temporary-table
/// definitions to `temps` and returns the replacement type-J block (Lemma
/// 2's Q4 inner shape): `SELECT Rt.AGG FROM Rt WHERE Rt.c = <outer>.c AND …`
pub fn apply_ja2<S: OuterScope + ?Sized>(
    inner: &QueryBlock,
    scope: &S,
    namer: &mut TempNamer,
    temps: &mut Vec<TempTable>,
    trace: &mut Vec<String>,
    config: Ja2Config,
    tracer: &Tracer,
) -> Result<QueryBlock> {
    let analyze_span = tracer.begin("analyze type-JA block");
    let ja = analyze_ja(inner);
    tracer.end(analyze_span);
    let ja = ja?;
    let outer_base = scope.base_table(&ja.outer_name).ok_or_else(|| {
        TransformError::Internal(format!("outer relation {} not in scope", ja.outer_name))
    })?;

    // ---- Step 1: TEMP1 := DISTINCT projection of the outer join columns,
    //      restricted by the outer relation's simple predicates.
    let step1_span = tracer.begin("NEST-JA2 step 1");
    // One projected column per *distinct* outer column — two correlation
    // predicates may reference the same outer column (e.g. sibling
    // subqueries both correlated on A1.V), and `Vec::dedup` alone only
    // drops consecutive repeats, leaving TEMP1 with an ambiguous duplicate
    // column that the step-2b join can no longer resolve.
    let mut outer_cols: Vec<ColumnRef> = Vec::new();
    for c in ja.correlations.iter().map(|c| &c.outer_col) {
        if !outer_cols.contains(c) {
            outer_cols.push(c.clone());
        }
    }
    let outer_simple = scope.simple_predicates(&ja.outer_name);
    let temp1_name = namer.fresh("TEMP");
    let temp1_plan = LogicalPlan::Project {
        input: Box::new(
            LogicalPlan::Scan {
                table: outer_base,
                alias: Some(ja.outer_name.clone()),
            }
            .filtered(if outer_simple.is_empty() {
                None
            } else {
                Some(Predicate::and(outer_simple))
            }),
        ),
        items: outer_cols.iter().map(|c| SelectItem::column(c.clone())).collect(),
        distinct: config.project_outer,
    };
    trace.push(format!(
        "NEST-JA2 step 1: {temp1_name} := {} projection of {} over {}",
        if config.project_outer { "DISTINCT" } else { "NON-DISTINCT (§5.4 demo)" },
        outer_cols
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        ja.outer_name
    ));
    temps.push(TempTable { name: temp1_name.clone(), plan: temp1_plan });
    tracer.end(step1_span);

    // ---- Step 2a: TEMP2 := restriction + projection of the inner
    //      relation(s) (the paper's Rt3).
    let step2a_span = tracer.begin("NEST-JA2 step 2a");
    let is_count = ja.func == AggFunc::Count;
    // Columns TEMP2 must carry: the inner correlation columns and the
    // aggregate argument. COUNT(*) counts the (first) inner join column
    // (Section 5.2.1).
    let mut inner_cols: Vec<ColumnRef> =
        ja.correlations.iter().map(|c| c.inner_col.clone()).collect();
    let agg_col = match &ja.arg {
        AggArg::Column(c) => c.clone(),
        AggArg::Star => inner_cols
            .first()
            .cloned()
            .ok_or_else(|| TransformError::Internal("COUNT(*) with no join column".into()))?,
    };
    if !inner_cols.contains(&agg_col) {
        inner_cols.push(agg_col.clone());
    }
    if matches!(ja.arg, AggArg::Star) {
        trace.push(format!(
            "NEST-JA2 (5.2.1): COUNT(*) rewritten to COUNT({agg_col}) over the join column"
        ));
    }
    // With late restriction (§5.2 demonstration) the simple predicates are
    // applied above the join, so their columns must survive the TEMP2
    // projection.
    if !config.restrict_before_join {
        if let Some(p) = &ja.local_pred {
            for c in predicate_column_refs(p) {
                if !inner_cols.contains(c) {
                    inner_cols.push(c.clone());
                }
            }
        }
    }
    let temp2_name = namer.fresh("TEMP");
    // TEMP2 column names must be unambiguous even when an inner column has
    // the same name as an outer column; alias each projected column by its
    // plain column name (collisions across inner tables get suffixes).
    let mut used_names: Vec<String> = Vec::new();
    let mut temp2_aliases: Vec<String> = Vec::new();
    for c in &inner_cols {
        let mut name = c.column.clone();
        let mut n = 1;
        while used_names.contains(&name) {
            n += 1;
            name = format!("{}_{n}", c.column);
        }
        used_names.push(name.clone());
        temp2_aliases.push(name);
    }
    let temp2_restriction =
        if config.restrict_before_join { ja.local_pred.clone() } else { None };
    let temp2_plan = LogicalPlan::Project {
        input: Box::new(inner_from_plan(inner)?.filtered(temp2_restriction)),
        items: inner_cols
            .iter()
            .zip(&temp2_aliases)
            .map(|(c, a)| SelectItem { expr: ScalarExpr::Column(c.clone()), alias: Some(a.clone()) })
            .collect(),
        distinct: false,
    };
    trace.push(format!(
        "NEST-JA2 step 2a: {temp2_name} := {} of {}",
        if config.restrict_before_join {
            "restriction+projection"
        } else {
            "projection only (restriction deferred past the join — §5.2 demo)"
        },
        inner.from_names().join(", ")
    ));
    temps.push(TempTable { name: temp2_name.clone(), plan: temp2_plan });
    tracer.end(step2a_span);

    // ---- Step 2b: TEMP3 := GROUP BY over TEMP1 ⋈ TEMP2 (outer join for
    //      COUNT), selecting the outer join columns and the aggregate.
    let step2b_span = tracer.begin("NEST-JA2 step 2b");
    let temp3_name = namer.fresh("TEMP");
    let alias_of = |col: &ColumnRef| -> String {
        let idx = inner_cols.iter().position(|c| c == col).expect("collected above");
        temp2_aliases[idx].clone()
    };
    let on: Vec<JoinPred> = ja
        .correlations
        .iter()
        .map(|c| JoinPred {
            // `inner op outer` ⇔ `outer flip(op) inner`; TEMP1 (outer
            // projection) is the left / preserved side.
            left: ColumnRef::qualified(&temp1_name, &c.outer_col.column),
            op: c.op.flip(),
            right: ColumnRef::qualified(&temp2_name, alias_of(&c.inner_col)),
        })
        .collect();
    let group_by: Vec<ColumnRef> = outer_cols
        .iter()
        .map(|c| ColumnRef::qualified(&temp1_name, &c.column))
        .collect();
    let agg_alias = "AGG".to_string();
    let mut temp3_input = LogicalPlan::Join {
        left: Box::new(LogicalPlan::scan(&temp1_name)),
        right: Box::new(LogicalPlan::scan(&temp2_name)),
        kind: if is_count { LogicalJoinKind::LeftOuter } else { LogicalJoinKind::Inner },
        on,
    };
    if !config.restrict_before_join {
        if let Some(p) = &ja.local_pred {
            // Rewrite the inner-relation references to TEMP2 columns and
            // apply the restriction *after* the join — the broken ordering
            // the paper warns kills the outer join's padded rows.
            let mut rewritten = p.clone();
            rewrite_pred_to_temp(&mut rewritten, &inner_cols, &temp2_aliases, &temp2_name);
            temp3_input =
                LogicalPlan::Filter { input: Box::new(temp3_input), pred: rewritten };
        }
    }
    let temp3_plan = LogicalPlan::Aggregate {
        input: Box::new(temp3_input),
        group_by,
        aggs: vec![AggItem {
            func: ja.func,
            arg: AggArg::Column(ColumnRef::qualified(&temp2_name, alias_of(&agg_col))),
            alias: agg_alias.clone(),
        }],
    };
    trace.push(format!(
        "NEST-JA2 step 2b: {temp3_name} := GROUP BY over {temp1_name} {} {temp2_name}",
        if is_count { "LEFT OUTER JOIN" } else { "JOIN" }
    ));
    temps.push(TempTable { name: temp3_name.clone(), plan: temp3_plan });
    tracer.end(step2b_span);

    // ---- Replacement inner block (Lemma 2 Q4 shape): type-J over TEMP3,
    //      join predicates changed to equality.
    let step3_span = tracer.begin("NEST-JA2 step 3");
    let mut where_parts: Vec<Predicate> = Vec::new();
    let mut seen_outer: Vec<&ColumnRef> = Vec::new();
    for c in &ja.correlations {
        if seen_outer.contains(&&c.outer_col) {
            continue; // one equality per distinct outer column
        }
        seen_outer.push(&c.outer_col);
        where_parts.push(Predicate::col_cmp(
            ColumnRef::qualified(&temp3_name, &c.outer_col.column),
            CompareOp::Eq,
            c.outer_col.clone(),
        ));
    }
    trace.push(format!(
        "NEST-JA2 step 3: inner block replaced by SELECT {temp3_name}.{agg_alias} FROM {temp3_name}; \
         original join predicate(s) changed to ="
    ));
    tracer.end(step3_span);
    Ok(QueryBlock {
        distinct: false,
        select: vec![SelectItem::column(ColumnRef::qualified(&temp3_name, &agg_alias))],
        from: vec![TableRef::new(&temp3_name)],
        where_clause: Some(Predicate::and(where_parts)),
        group_by: vec![],
        order_by: vec![],
    })
}

/// Rewrite the column references of a simple predicate from inner-relation
/// qualifiers to the corresponding TEMP2 output columns.
fn rewrite_pred_to_temp(
    p: &mut Predicate,
    inner_cols: &[ColumnRef],
    aliases: &[String],
    temp_name: &str,
) {
    let fix = |o: &mut Operand| {
        if let Operand::Column(c) = o {
            if let Some(idx) = inner_cols.iter().position(|ic| ic == c) {
                *c = ColumnRef::qualified(temp_name, &aliases[idx]);
            }
        }
    };
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                rewrite_pred_to_temp(q, inner_cols, aliases, temp_name);
            }
        }
        Predicate::Not(q) => rewrite_pred_to_temp(q, inner_cols, aliases, temp_name),
        Predicate::Compare { left, right, .. } => {
            fix(left);
            fix(right);
        }
        Predicate::In { operand, .. } => fix(operand),
        Predicate::IsNull { operand, .. } => fix(operand),
        Predicate::Exists { .. } | Predicate::Quantified { .. } => {}
    }
}

/// Build the FROM plan of the inner block: a single scan, or a left-deep
/// cross-join tree for a multi-relation inner (which arises when deeper
/// blocks were merged into it — Section 9); local predicates are applied by
/// the caller as a filter above this plan.
pub(crate) fn inner_from_plan(inner: &QueryBlock) -> Result<LogicalPlan> {
    let mut iter = inner.from.iter();
    let first = iter.next().ok_or_else(|| {
        TransformError::Unsupported("inner block with empty FROM".into())
    })?;
    let mut plan = LogicalPlan::Scan {
        table: first.table.clone(),
        alias: first.alias.clone(),
    };
    for t in iter {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::Scan { table: t.table.clone(), alias: t.alias.clone() }),
            kind: LogicalJoinKind::Inner,
            on: vec![],
        };
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::parse_query;

    /// Pull the inner block of `WHERE x op (SELECT …)` after qualification
    /// against the Kiessling schemas.
    fn ja_inner(src: &str) -> QueryBlock {
        use nsql_analyzer::resolve::SchemaSource;
        use nsql_types::{ColumnType, Schema};
        struct Cat;
        impl SchemaSource for Cat {
            fn table_schema(&self, t: &str) -> Option<Schema> {
                use ColumnType::*;
                match t.to_ascii_uppercase().as_str() {
                    "PARTS" => Some(Schema::of_table("PARTS", &[("PNUM", Int), ("QOH", Int)])),
                    "SUPPLY" => Some(Schema::of_table(
                        "SUPPLY",
                        &[("PNUM", Int), ("QUAN", Int), ("SHIPDATE", Date)],
                    )),
                    _ => None,
                }
            }
        }
        let mut q = parse_query(src).unwrap();
        crate::qualify::qualify_query(&Cat, &mut q).unwrap();
        let Some(Predicate::Compare { right: Operand::Subquery(inner), .. }) = q.where_clause
        else {
            panic!("expected scalar subquery")
        };
        *inner
    }

    #[test]
    fn analyzes_kiessling_q2() {
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        let ja = analyze_ja(&inner).unwrap();
        assert_eq!(ja.func, AggFunc::Count);
        assert_eq!(ja.outer_name, "PARTS");
        assert_eq!(ja.correlations.len(), 1);
        assert_eq!(ja.correlations[0].op, CompareOp::Eq);
        assert_eq!(ja.correlations[0].inner_col, ColumnRef::qualified("SUPPLY", "PNUM"));
        assert_eq!(ja.correlations[0].outer_col, ColumnRef::qualified("PARTS", "PNUM"));
        assert!(ja.local_pred.is_some(), "SHIPDATE restriction is local");
    }

    #[test]
    fn analyzes_non_equality_orientation() {
        // Q5: SUPPLY.PNUM < PARTS.PNUM, written outer-side-right.
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
             WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        let ja = analyze_ja(&inner).unwrap();
        assert_eq!(ja.correlations[0].op, CompareOp::Lt);
        // And flipped when written the other way round.
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
             WHERE PARTS.PNUM > SUPPLY.PNUM AND SHIPDATE < 1-1-80)",
        );
        let ja = analyze_ja(&inner).unwrap();
        assert_eq!(ja.correlations[0].op, CompareOp::Lt);
        assert_eq!(ja.correlations[0].inner_col.table.as_deref(), Some("SUPPLY"));
    }

    #[test]
    fn rejects_disjunctive_correlation() {
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM OR SUPPLY.QUAN > PARTS.QOH)",
        );
        assert!(matches!(analyze_ja(&inner), Err(TransformError::Unsupported(_))));
    }

    #[test]
    fn ja2_produces_three_temps_and_type_j_block() {
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        struct Scope;
        impl OuterScope for Scope {
            fn base_table(&self, e: &str) -> Option<String> {
                (e == "PARTS").then(|| "PARTS".to_string())
            }
            fn simple_predicates(&self, _e: &str) -> Vec<Predicate> {
                vec![]
            }
        }
        let mut namer = TempNamer::new(vec![]);
        let mut temps = Vec::new();
        let mut trace = Vec::new();
        let replacement =
            apply_ja2(&inner, &Scope, &mut namer, &mut temps, &mut trace, Ja2Config::default(), &Tracer::disabled())
                .unwrap();
        assert_eq!(temps.len(), 3);
        // TEMP3 is a left outer join (COUNT).
        let LogicalPlan::Aggregate { input, .. } = &temps[2].plan else { panic!() };
        let LogicalPlan::Join { kind, .. } = input.as_ref() else { panic!() };
        assert_eq!(*kind, LogicalJoinKind::LeftOuter);
        // Replacement is SELECT TEMP3.AGG FROM TEMP3 WHERE TEMP3.PNUM = PARTS.PNUM.
        let printed = nsql_sql::print_query(&replacement);
        assert_eq!(
            printed,
            "SELECT TEMP3.AGG FROM TEMP3 WHERE TEMP3.PNUM = PARTS.PNUM"
        );
    }

    #[test]
    fn ja2_uses_inner_join_for_max() {
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
             WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        struct Scope;
        impl OuterScope for Scope {
            fn base_table(&self, e: &str) -> Option<String> {
                (e == "PARTS").then(|| "PARTS".to_string())
            }
            fn simple_predicates(&self, _e: &str) -> Vec<Predicate> {
                vec![]
            }
        }
        let mut namer = TempNamer::new(vec![]);
        let mut temps = Vec::new();
        let mut trace = Vec::new();
        let replacement =
            apply_ja2(&inner, &Scope, &mut namer, &mut temps, &mut trace, Ja2Config::default(), &Tracer::disabled())
                .unwrap();
        let LogicalPlan::Aggregate { input, .. } = &temps[2].plan else { panic!() };
        let LogicalPlan::Join { kind, on, .. } = input.as_ref() else { panic!() };
        assert_eq!(*kind, LogicalJoinKind::Inner);
        // TEMP1.PNUM > TEMP2.PNUM (outer flip of `inner < outer`).
        assert_eq!(on[0].op, CompareOp::Gt);
        // The join predicate in the rewritten query is equality.
        let printed = nsql_sql::print_query(&replacement);
        assert!(printed.contains("= PARTS.PNUM"), "{printed}");
    }

    #[test]
    fn count_star_counts_join_column() {
        let inner = ja_inner(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(*) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        struct Scope;
        impl OuterScope for Scope {
            fn base_table(&self, e: &str) -> Option<String> {
                (e == "PARTS").then(|| "PARTS".to_string())
            }
            fn simple_predicates(&self, _e: &str) -> Vec<Predicate> {
                vec![]
            }
        }
        let mut namer = TempNamer::new(vec![]);
        let mut temps = Vec::new();
        let mut trace = Vec::new();
        let _ = apply_ja2(&inner, &Scope, &mut namer, &mut temps, &mut trace, Ja2Config::default(), &Tracer::disabled())
            .unwrap();
        let LogicalPlan::Aggregate { aggs, .. } = &temps[2].plan else { panic!() };
        // COUNT over TEMP2.PNUM, not COUNT(*).
        let AggArg::Column(c) = &aggs[0].arg else {
            panic!("COUNT(*) must be rewritten to a column count")
        };
        assert_eq!(c.column, "PNUM");
    }
}
