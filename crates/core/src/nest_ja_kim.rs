//! Kim's original algorithm NEST-JA (Section 3.2) — the **buggy baseline**.
//!
//! > 1. Generate a temporary relation Rt(C1,…,Cn,Cn+1) from R2 such that
//! >    Rt.Cn+1 is the result of applying the aggregate function AGG on the
//! >    Cn+1 column of R2 which have matching values in R1 for C1, C2, etc.
//! > 2. Transform the inner query block of the initial query by changing
//! >    all references to R2 columns in join predicates which also
//! >    reference R1 to the corresponding Rt columns. The result is a
//! >    type-J nested query, which can be passed to algorithm NEST-N-J.
//!
//! Kept deliberately faithful so the paper's three failure demonstrations
//! reproduce exactly:
//!
//! * **COUNT bug** (Section 5.1): `Rt` is built with `GROUP BY` over the
//!   restricted inner relation only, so groups that would be empty simply
//!   do not appear and `COUNT` can never produce `0`.
//! * **Non-equality bug** (Section 5.3): the temporary aggregates tuples
//!   sharing a join-column *value*, but a `<` join predicate asks for
//!   aggregates over a *range* of values.
//! * **Duplicates problem** (Section 5.4): not applicable here (Kim's
//!   temporary never joins the outer relation), but the *fixed* algorithm
//!   without the projection step exhibits it; see
//!   [`crate::nest_ja2`] and experiment E7.

use crate::logical::{AggItem, LogicalPlan};
use crate::nest_ja2::{analyze_ja, inner_from_plan};
use crate::pipeline::{TempNamer, TempTable};
use crate::Result;
use nsql_sql::{
    ColumnRef, Predicate, QueryBlock, SelectItem, TableRef,
};

/// Apply Kim's NEST-JA to a type-JA inner block, returning the replacement
/// type-J block. Temp definitions are appended to `temps`.
pub fn apply_ja_kim(
    inner: &QueryBlock,
    namer: &mut TempNamer,
    temps: &mut Vec<TempTable>,
    trace: &mut Vec<String>,
) -> Result<QueryBlock> {
    let ja = analyze_ja(inner)?;

    // Step 1: Rt := GROUP BY over the restricted inner relation — no outer
    // join, no projection of the outer relation. (The bugs live here.)
    let temp_name = namer.fresh("TEMP");
    // The correlation list is in predicate order, not sorted, so
    // `Vec::dedup` (consecutive-only) would let a repeated inner column
    // survive when another column sits between its occurrences — an
    // order-preserving containment check deduplicates correctly.
    let mut group_cols: Vec<ColumnRef> = Vec::new();
    for c in &ja.correlations {
        if !group_cols.contains(&c.inner_col) {
            group_cols.push(c.inner_col.clone());
        }
    }
    let agg_alias = "AGG".to_string();
    let plan = LogicalPlan::Aggregate {
        input: Box::new(inner_from_plan(inner)?.filtered(ja.local_pred.clone())),
        group_by: group_cols.clone(),
        aggs: vec![AggItem { func: ja.func, arg: ja.arg.clone(), alias: agg_alias.clone() }],
    };
    trace.push(format!(
        "NEST-JA (Kim): {temp_name} := GROUP BY {} over restricted {}",
        group_cols.iter().map(ToString::to_string).collect::<Vec<_>>().join(", "),
        inner.from_names().join(", ")
    ));
    temps.push(TempTable { name: temp_name.clone(), plan });

    // Step 2: replacement inner block referencing Rt, join predicates keep
    // their original operators (reproducing the Section-5.3 bug).
    let mut where_parts = Vec::new();
    for c in &ja.correlations {
        where_parts.push(Predicate::col_cmp(
            ColumnRef::qualified(&temp_name, &c.inner_col.column),
            c.op,
            c.outer_col.clone(),
        ));
    }
    trace.push(format!(
        "NEST-JA (Kim): inner block replaced by SELECT {temp_name}.{agg_alias} FROM {temp_name} \
         (join operators kept as written)"
    ));
    Ok(QueryBlock {
        distinct: false,
        select: vec![SelectItem::column(ColumnRef::qualified(&temp_name, &agg_alias))],
        from: vec![TableRef::new(&temp_name)],
        where_clause: Some(Predicate::and(where_parts)),
        group_by: vec![],
        order_by: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalJoinKind;
    use nsql_analyzer::resolve::SchemaSource;
    use nsql_sql::{parse_query, Operand};
    use nsql_types::{ColumnType, Schema};

    struct Cat;
    impl SchemaSource for Cat {
        fn table_schema(&self, t: &str) -> Option<Schema> {
            use ColumnType::*;
            match t.to_ascii_uppercase().as_str() {
                "PARTS" => Some(Schema::of_table("PARTS", &[("PNUM", Int), ("QOH", Int)])),
                "SUPPLY" => Some(Schema::of_table(
                    "SUPPLY",
                    &[("PNUM", Int), ("QUAN", Int), ("SHIPDATE", Date)],
                )),
                _ => None,
            }
        }
    }

    fn inner_of(src: &str) -> QueryBlock {
        let mut q = parse_query(src).unwrap();
        crate::qualify::qualify_query(&Cat, &mut q).unwrap();
        let Some(Predicate::Compare { right: Operand::Subquery(inner), .. }) = q.where_clause
        else {
            panic!()
        };
        *inner
    }

    #[test]
    fn kim_temp_is_plain_group_by_over_inner() {
        let inner = inner_of(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        let mut namer = TempNamer::new(vec![]);
        let mut temps = Vec::new();
        let mut trace = Vec::new();
        let replacement = apply_ja_kim(&inner, &mut namer, &mut temps, &mut trace).unwrap();
        assert_eq!(temps.len(), 1, "Kim builds exactly one temporary");
        let LogicalPlan::Aggregate { input, group_by, .. } = &temps[0].plan else { panic!() };
        assert_eq!(group_by, &[ColumnRef::qualified("SUPPLY", "PNUM")]);
        // No join anywhere under the aggregate.
        fn has_join(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Join { .. } => true,
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. } => has_join(input),
                LogicalPlan::Scan { .. } => false,
            }
        }
        assert!(!has_join(input), "Kim's temp must not join the outer relation");
        let printed = nsql_sql::print_query(&replacement);
        assert_eq!(printed, "SELECT TEMP1.AGG FROM TEMP1 WHERE TEMP1.PNUM = PARTS.PNUM");
    }

    #[test]
    fn group_by_dedups_non_adjacent_repeated_columns() {
        // Shrunk regression for the consecutive-only `Vec::dedup` bug
        // class (first found in NEST-JA2 by PR 4): SUPPLY.PNUM correlates
        // twice with SUPPLY.QUAN correlating in between, so the repeated
        // column is non-adjacent and `dedup()` let it survive into the
        // GROUP BY list.
        let inner = inner_of(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SUPPLY.QUAN = PARTS.QOH \
             AND SUPPLY.PNUM < PARTS.PNUM)",
        );
        let mut namer = TempNamer::new(vec![]);
        let mut temps = Vec::new();
        let mut trace = Vec::new();
        apply_ja_kim(&inner, &mut namer, &mut temps, &mut trace).unwrap();
        let LogicalPlan::Aggregate { group_by, .. } = &temps[0].plan else { panic!() };
        assert_eq!(
            group_by,
            &[
                ColumnRef::qualified("SUPPLY", "PNUM"),
                ColumnRef::qualified("SUPPLY", "QUAN")
            ],
            "repeated correlation column must appear once"
        );
    }

    #[test]
    fn kim_keeps_non_equality_operator() {
        let inner = inner_of(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
             WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        let mut namer = TempNamer::new(vec![]);
        let mut temps = Vec::new();
        let mut trace = Vec::new();
        let replacement = apply_ja_kim(&inner, &mut namer, &mut temps, &mut trace).unwrap();
        let printed = nsql_sql::print_query(&replacement);
        // The faithful bug: `<` survives into the transformed query.
        assert!(printed.contains("TEMP1.PNUM < PARTS.PNUM"), "{printed}");
        let _ = LogicalJoinKind::Inner; // silence unused import in cfg(test)
    }
}
