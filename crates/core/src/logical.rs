//! Logical plans for temporary-table definitions.
//!
//! The canonical query a transformation produces is a flat
//! [`QueryBlock`](nsql_sql::QueryBlock), but the temporary tables NEST-JA2
//! builds need two things SQL-82 query blocks cannot express: an **outer
//! join** and a GROUP BY over a join result. This small IR covers exactly
//! the plan shapes the paper's algorithms emit; `nsql-db`'s physical layer
//! executes it with a configurable join method.

use nsql_sql::{AggArg, AggFunc, ColumnRef, CompareOp, Predicate, SelectItem};
use std::fmt;

/// Inner or left-outer join at the logical level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalJoinKind {
    /// Plain join.
    Inner,
    /// Left outer join (the paper's `=+` / COUNT-bug device).
    LeftOuter,
}

/// One join predicate: `left-side-column op right-side-column`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPred {
    /// Column from the left input.
    pub left: ColumnRef,
    /// Comparison operator (non-equality is allowed; see Section 5.3).
    pub op: CompareOp,
    /// Column from the right input.
    pub right: ColumnRef,
}

impl fmt::Display for JoinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op.symbol(), self.right)
    }
}

/// One aggregate output of an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// The function.
    pub func: AggFunc,
    /// Argument (`Star` only for COUNT).
    pub arg: AggArg,
    /// Output column name.
    pub alias: String,
}

/// A logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base or temporary table under an effective name.
    Scan {
        /// Catalog table name.
        table: String,
        /// Effective (alias) name columns are qualified by; defaults to the
        /// table name.
        alias: Option<String>,
    },
    /// Restriction by a simple (subquery-free) predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        pred: Predicate,
    },
    /// Projection; items must be columns or literals (no aggregates).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions with optional aliases.
        items: Vec<SelectItem>,
        /// Eliminate duplicates?
        distinct: bool,
    },
    /// Join of two plans.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join kind.
        kind: LogicalJoinKind,
        /// Join predicates (conjunctive).
        on: Vec<JoinPred>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by columns (become output columns, keeping their names).
        group_by: Vec<ColumnRef>,
        /// Aggregates to compute.
        aggs: Vec<AggItem>,
    },
}

impl LogicalPlan {
    /// Scan shorthand.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan { table: table.into().to_ascii_uppercase(), alias: None }
    }

    /// Filter shorthand (no-op when `pred` is `None`).
    pub fn filtered(self, pred: Option<Predicate>) -> LogicalPlan {
        match pred {
            Some(p) => LogicalPlan::Filter { input: Box::new(self), pred: p },
            None => self,
        }
    }

    /// Render a one-line-per-node EXPLAIN-style description.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan { table, alias } => {
                out.push_str(&pad);
                match alias {
                    Some(a) => out.push_str(&format!("Scan {table} AS {a}\n")),
                    None => out.push_str(&format!("Scan {table}\n")),
                }
            }
            LogicalPlan::Filter { input, pred } => {
                out.push_str(&format!("{pad}Filter {}\n", nsql_sql::print_predicate(pred)));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Project { input, items, distinct } => {
                let cols: Vec<String> = items
                    .iter()
                    .map(|i| match (&i.expr, &i.alias) {
                        (nsql_sql::ScalarExpr::Column(c), None) => c.to_string(),
                        (nsql_sql::ScalarExpr::Column(c), Some(a)) => format!("{c} AS {a}"),
                        (e, _) => format!("{e:?}"),
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Project{} [{}]\n",
                    if *distinct { " DISTINCT" } else { "" },
                    cols.join(", ")
                ));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Join { left, right, kind, on } => {
                let preds: Vec<String> = on.iter().map(JoinPred::to_string).collect();
                let kind = match kind {
                    LogicalJoinKind::Inner => "Join",
                    LogicalJoinKind::LeftOuter => "LeftOuterJoin",
                };
                out.push_str(&format!("{pad}{kind} ON {}\n", preds.join(" AND ")));
                left.explain_into(out, indent + 1);
                right.explain_into(out, indent + 1);
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let groups: Vec<String> = group_by.iter().map(ColumnRef::to_string).collect();
                let aggs: Vec<String> = aggs
                    .iter()
                    .map(|a| match &a.arg {
                        AggArg::Star => format!("{}(*) AS {}", a.func.name(), a.alias),
                        AggArg::Column(c) => format!("{}({c}) AS {}", a.func.name(), a.alias),
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate GROUP BY [{}] COMPUTE [{}]\n",
                    groups.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(out, indent + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::parse_query;

    #[test]
    fn explain_renders_tree() {
        let inner = LogicalPlan::scan("SUPPLY").filtered(
            parse_query("SELECT PNUM FROM SUPPLY WHERE SHIPDATE < 1-1-80")
                .unwrap()
                .where_clause,
        );
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::scan("TEMP1")),
                right: Box::new(inner),
                kind: LogicalJoinKind::LeftOuter,
                on: vec![JoinPred {
                    left: ColumnRef::qualified("TEMP1", "PNUM"),
                    op: CompareOp::Eq,
                    right: ColumnRef::qualified("SUPPLY", "PNUM"),
                }],
            }),
            group_by: vec![ColumnRef::qualified("TEMP1", "PNUM")],
            aggs: vec![AggItem {
                func: AggFunc::Count,
                arg: AggArg::Column(ColumnRef::qualified("SUPPLY", "SHIPDATE")),
                alias: "CT".into(),
            }],
        };
        let s = plan.explain();
        assert!(s.contains("LeftOuterJoin ON TEMP1.PNUM = SUPPLY.PNUM"), "{s}");
        assert!(s.contains("COUNT(SUPPLY.SHIPDATE) AS CT"), "{s}");
        assert!(s.contains("Scan TEMP1"), "{s}");
    }

    #[test]
    fn filtered_none_is_identity() {
        let p = LogicalPlan::scan("T").filtered(None);
        assert_eq!(p, LogicalPlan::scan("T"));
    }
}
