//! The recursive general transformation — procedure `nest_g` (Section 9).
//!
//! A direct postorder recursive algorithm: for each nested predicate, first
//! transform the inner block (which flattens everything below it), then
//! classify the now-flat inner block against its parent and dispatch:
//!
//! * type-A → the inner block becomes a one-row temporary (global
//!   aggregate), cross-joined into the parent;
//! * type-N / type-J → algorithm NEST-N-J merges the blocks;
//! * type-JA → algorithm NEST-JA2 (or, on request, Kim's buggy NEST-JA)
//!   reduces the block to type-J, and NEST-N-J finishes the job.
//!
//! As the paper highlights, the information needed at each step "is
//! confined to two levels of the query": deeper correlations are carried
//! upward by the merges ("the trans-aggregate join predicate \[is\]
//! inherited by the recursive transformation of inner query blocks").

use crate::error::TransformError;
use crate::logical::{AggItem, LogicalPlan};
use crate::nest_ja2::{apply_ja2, inner_from_plan, Ja2Config, OuterScope};
use crate::nest_ja_kim::apply_ja_kim;
use crate::nest_n_j::{merge_inner, Connecting};
use crate::pipeline::{TempNamer, TempTable, TransformPlan};
use crate::qualify::qualify_query;
use crate::rewrites::rewrite_extended;
use crate::Result;
use nsql_analyzer::resolve::{predicate_column_refs, SchemaSource};
use nsql_obs::Tracer;
use nsql_sql::{
    ColumnRef, CompareOp, InRhs, Operand, Predicate, QueryBlock, ScalarExpr, SelectItem,
    TableRef,
};

/// Which type-JA algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JaVariant {
    /// The paper's corrected NEST-JA2 (default).
    #[default]
    Ja2,
    /// NEST-JA2 *without* step 1's DISTINCT projection of the outer join
    /// column — the intermediate (still wrong) algorithm of Section 5.4,
    /// kept for the duplicates-problem demonstration.
    Ja2NoProjection,
    /// NEST-JA2 with the inner restriction applied *after* the outer join
    /// — the ordering Section 5.2 warns about ("the join would not
    /// contain the last row, and the result would be incorrect").
    Ja2LateRestriction,
    /// Kim's original NEST-JA — exhibits the COUNT and non-equality bugs.
    KimOriginal,
}

/// Options controlling the transformation.
#[derive(Debug, Clone, Default)]
pub struct UnnestOptions {
    /// Type-JA algorithm choice.
    pub ja_variant: JaVariant,
    /// When set, the executor is asked to deduplicate the final result of
    /// IN-merges (modern semijoin semantics; see the NEST-N-J duplicate
    /// caveat in DESIGN.md). The faithful default is off.
    pub preserve_duplicates: bool,
    /// Run the plan-rule fixpoint engine ([`crate::rules`]) over the
    /// temporary-table plans (predicate pushdown, projection pruning).
    /// Off by default: the paper's literal temp shapes — including the
    /// Section 5.2/5.4 demonstration variants whose *point* is a
    /// suboptimal shape — are what the default pipeline pins.
    pub logical_rules: bool,
}

/// Transform a nested query into a [`TransformPlan`]: temporary-table
/// definitions plus a flat canonical query.
pub fn transform_query<S: SchemaSource>(
    catalog: &S,
    query: &QueryBlock,
    options: &UnnestOptions,
) -> Result<TransformPlan> {
    transform_query_traced(catalog, query, options, &Tracer::disabled())
}

/// [`transform_query`] with a span tracer: each NEST-G recursion level and
/// each algorithm dispatch (NEST-N-J merge, type-A temp, NEST-JA2 steps
/// 1/2a/2b/3, Kim's NEST-JA) opens a nested span. With a disabled tracer
/// this is exactly `transform_query`.
pub fn transform_query_traced<S: SchemaSource>(
    catalog: &S,
    query: &QueryBlock,
    options: &UnnestOptions,
    tracer: &Tracer,
) -> Result<TransformPlan> {
    let mut q = query.clone();
    qualify_query(catalog, &mut q)?;
    let mut reserved = Vec::new();
    collect_table_names(&q, &mut reserved);
    let mut ctx = Ctx {
        options: options.clone(),
        namer: TempNamer::new(reserved),
        temps: Vec::new(),
        trace: Vec::new(),
        merged_in_membership: false,
        tracer: tracer.clone(),
    };
    ctx.nest_g(&mut q, &[])?;
    let Ctx { temps: mut out_temps, trace: mut out_trace, merged_in_membership, .. } = ctx;
    if options.logical_rules {
        let engine = crate::rules::RuleEngine::standard();
        for temp in &mut out_temps {
            let (optimized, firings) = tracer
                .scope("logical rules", || engine.optimize(temp.plan.clone()));
            for f in &firings {
                out_trace.push(format!("rule {} on {}: {}", f.rule, temp.name, f.detail));
            }
            temp.plan = optimized;
        }
    }
    Ok(TransformPlan {
        temps: out_temps,
        canonical: q,
        trace: out_trace,
        needs_distinct_for_semantics: options.preserve_duplicates && merged_in_membership,
    })
}

fn collect_table_names(q: &QueryBlock, out: &mut Vec<String>) {
    for t in &q.from {
        out.push(t.table.clone());
        if let Some(a) = &t.alias {
            out.push(a.clone());
        }
    }
    if let Some(p) = &q.where_clause {
        collect_pred_tables(p, out);
    }
}

fn collect_pred_tables(p: &Predicate, out: &mut Vec<String>) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                collect_pred_tables(q, out);
            }
        }
        Predicate::Not(q) => collect_pred_tables(q, out),
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    collect_table_names(q, out);
                }
            }
        }
        Predicate::In { rhs: InRhs::Subquery(q), .. } => collect_table_names(q, out),
        Predicate::Exists { query, .. } | Predicate::Quantified { query, .. } => {
            collect_table_names(query, out)
        }
        _ => {}
    }
}

/// Snapshot of one enclosing block for scope lookups during JA handling.
struct ScopeFrame {
    from: Vec<TableRef>,
    simple_conjuncts: Vec<Predicate>,
}

impl ScopeFrame {
    fn of(block: &QueryBlock) -> ScopeFrame {
        let simple_conjuncts = block
            .where_clause
            .as_ref()
            .map(|p| {
                p.conjuncts()
                    .into_iter()
                    .filter(|c| c.is_simple())
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        ScopeFrame { from: block.from.clone(), simple_conjuncts }
    }
}

impl OuterScope for [ScopeFrame] {
    fn base_table(&self, effective: &str) -> Option<String> {
        for frame in self {
            for t in &frame.from {
                if t.effective_name().eq_ignore_ascii_case(effective) {
                    return Some(t.table.clone());
                }
            }
        }
        None
    }

    fn simple_predicates(&self, effective: &str) -> Vec<Predicate> {
        for frame in self {
            if !frame
                .from
                .iter()
                .any(|t| t.effective_name().eq_ignore_ascii_case(effective))
            {
                continue;
            }
            return frame
                .simple_conjuncts
                .iter()
                .filter(|c| {
                    let refs = predicate_column_refs(c);
                    !refs.is_empty()
                        && refs
                            .iter()
                            .all(|r| r.table.as_deref() == Some(effective))
                })
                .cloned()
                .collect();
        }
        Vec::new()
    }
}

struct Ctx {
    options: UnnestOptions,
    namer: TempNamer,
    temps: Vec<TempTable>,
    trace: Vec<String>,
    merged_in_membership: bool,
    tracer: Tracer,
}

impl Ctx {
    /// The recursive procedure. `ancestors` runs nearest-first.
    fn nest_g(&mut self, block: &mut QueryBlock, ancestors: &[ScopeFrame]) -> Result<()> {
        // Recursion-depth span; an error return leaves it open, and the
        // tracer's finish() folds open spans in, so `?` stays safe.
        let span = self.tracer.begin(&format!("NEST-G depth {}", ancestors.len()));
        let result = self.nest_g_inner(block, ancestors);
        self.tracer.end(span);
        result
    }

    fn nest_g_inner(&mut self, block: &mut QueryBlock, ancestors: &[ScopeFrame]) -> Result<()> {
        // Section 8 rewrites at this level first.
        if let Some(w) = block.where_clause.take() {
            block.where_clause = Some(rewrite_extended(w, &mut self.trace));
        }

        // Scope chain for descendants: this block, then the ancestors.
        let mut chain: Vec<ScopeFrame> = Vec::with_capacity(ancestors.len() + 1);
        chain.push(ScopeFrame::of(block));
        chain.extend(ancestors.iter().map(|f| ScopeFrame {
            from: f.from.clone(),
            simple_conjuncts: f.simple_conjuncts.clone(),
        }));

        let conjuncts = match block.where_clause.take() {
            Some(p) => p.into_conjuncts(),
            None => Vec::new(),
        };
        let mut kept: Vec<Predicate> = Vec::new();
        for conjunct in conjuncts {
            if conjunct.is_simple() {
                kept.push(conjunct);
                continue;
            }
            let (operand, op, inner, via_membership) = match conjunct {
                Predicate::Compare {
                    left,
                    op,
                    right: Operand::Subquery(inner),
                } => (left, op, *inner, false),
                Predicate::Compare {
                    left: Operand::Subquery(inner),
                    op,
                    right,
                } => (right, op.flip(), *inner, false),
                Predicate::In { operand, negated: false, rhs: InRhs::Subquery(inner) } => {
                    (operand, CompareOp::Eq, *inner, true)
                }
                other => {
                    return Err(TransformError::Unsupported(format!(
                        "nested predicate shape not handled by the transformation algorithms: {}",
                        nsql_sql::print_predicate(&other)
                    )))
                }
            };
            let merged =
                self.transform_nested(block, operand, op, inner, via_membership, &chain)?;
            kept.push(merged);
        }
        if !kept.is_empty() {
            block.where_clause = Some(Predicate::and(kept));
        }
        Ok(())
    }

    /// Transform one nested predicate; returns the replacement predicate.
    fn transform_nested(
        &mut self,
        block: &mut QueryBlock,
        operand: Operand,
        op: CompareOp,
        mut inner: QueryBlock,
        via_membership: bool,
        chain: &[ScopeFrame],
    ) -> Result<Predicate> {
        // Postorder: flatten the inner block first.
        self.nest_g(&mut inner, chain)?;

        // Classify and dispatch through the block-rule catalog: the rule's
        // precondition runs before its rewrite, surfacing the same error
        // the rewrite itself would raise.
        let shape = crate::rules::NestedShape {
            correlated: block_is_correlated(&inner),
            aggregate: inner.has_aggregate_select(),
        };
        let rule = crate::rules::select_block_rule(
            shape,
            self.options.ja_variant == JaVariant::KimOriginal,
        );
        rule.precondition(&inner)?;
        let inner_to_merge = match rule.action {
            crate::rules::BlockAction::MergeNJ => {
                let ty = if shape.correlated { 'J' } else { 'N' };
                self.trace.push(format!(
                    "type-{ty} nesting: NEST-N-J merges [{}] into the outer block",
                    inner.from_names().join(", ")
                ));
                if via_membership {
                    self.merged_in_membership = true;
                }
                inner
            }
            crate::rules::BlockAction::TypeAConstant => {
                // Type-A: one-row temporary, cross-joined.
                self.trace.push("type-A nesting: inner block evaluates to a constant; \
                     materialized as a one-row temporary".to_string());
                let span = self.tracer.begin("type-A temp");
                let out = self.type_a_temp(inner);
                self.tracer.end(span);
                out?
            }
            crate::rules::BlockAction::NestJa2 => {
                // Type-JA: reduce to type-J first.
                let config = match self.options.ja_variant {
                    JaVariant::Ja2 => {
                        self.trace.push("type-JA nesting: applying NEST-JA2".to_string());
                        Ja2Config::default()
                    }
                    JaVariant::Ja2NoProjection => {
                        self.trace.push(
                            "type-JA nesting: applying NEST-JA2 WITHOUT the outer projection \
                             (Section 5.4 demonstration variant)"
                                .to_string(),
                        );
                        Ja2Config { project_outer: false, ..Ja2Config::default() }
                    }
                    JaVariant::Ja2LateRestriction => {
                        self.trace.push(
                            "type-JA nesting: applying NEST-JA2 with the restriction AFTER \
                             the join (Section 5.2 demonstration variant)"
                                .to_string(),
                        );
                        Ja2Config { restrict_before_join: false, ..Ja2Config::default() }
                    }
                    JaVariant::KimOriginal => {
                        unreachable!("the rule catalog routes KimOriginal to NestJaKim")
                    }
                };
                let span = self.tracer.begin("NEST-JA2");
                let out = apply_ja2(
                    &inner,
                    chain,
                    &mut self.namer,
                    &mut self.temps,
                    &mut self.trace,
                    config,
                    &self.tracer,
                );
                self.tracer.end(span);
                out?
            }
            crate::rules::BlockAction::NestJaKim => {
                self.trace
                    .push("type-JA nesting: applying Kim's NEST-JA (buggy baseline)".to_string());
                let span = self.tracer.begin("NEST-JA (Kim)");
                let out =
                    apply_ja_kim(&inner, &mut self.namer, &mut self.temps, &mut self.trace);
                self.tracer.end(span);
                out?
            }
        };
        let merge_span = self.tracer.begin("NEST-N-J merge");
        let outcome = merge_inner(
            block,
            Connecting { operand, op },
            inner_to_merge,
            &mut self.namer,
        );
        self.tracer.end(merge_span);
        let outcome = outcome?;
        for (old, new) in &outcome.renames {
            self.trace.push(format!("renamed inner table {old} to {new} to avoid collision"));
        }
        Ok(outcome.combined_predicate())
    }

    /// Type-A: materialize the (uncorrelated, flat) aggregate block as a
    /// one-row temporary and return a block selecting its value.
    fn type_a_temp(&mut self, inner: QueryBlock) -> Result<QueryBlock> {
        check_type_a(&inner)?;
        let ScalarExpr::Aggregate(func, arg) = inner.select[0].expr.clone() else {
            return Err(TransformError::Internal("type-A without aggregate".into()));
        };
        let local_pred = inner.where_clause.clone();
        let name = self.namer.fresh("TEMP");
        let alias = "AGG".to_string();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(inner_from_plan(&inner)?.filtered(local_pred)),
            group_by: vec![],
            aggs: vec![AggItem { func, arg, alias: alias.clone() }],
        };
        self.trace.push(format!("type-A: {name} := global aggregate over [{}]",
            inner.from_names().join(", ")));
        self.temps.push(TempTable { name: name.clone(), plan });
        Ok(QueryBlock {
            distinct: false,
            select: vec![SelectItem::column(ColumnRef::qualified(&name, &alias))],
            from: vec![TableRef::new(&name)],
            where_clause: None,
            group_by: vec![],
            order_by: vec![],
        })
    }
}

/// Type-A's applicability check, shared between [`Ctx::type_a_temp`] and
/// the rule catalog's precondition step ([`crate::rules`]): the inner
/// block must select exactly one item and it must be an aggregate.
pub fn check_type_a(inner: &QueryBlock) -> Result<()> {
    if inner.select.len() != 1 {
        return Err(TransformError::Unsupported(
            "type-A inner block must select exactly one aggregate".into(),
        ));
    }
    if !matches!(inner.select[0].expr, ScalarExpr::Aggregate(..)) {
        return Err(TransformError::Internal("type-A without aggregate".into()));
    }
    Ok(())
}

/// Syntactic correlation test on a fully-qualified, flat block: any level
/// reference whose qualifier is not an effective FROM name is an outer
/// reference.
fn block_is_correlated(q: &QueryBlock) -> bool {
    let names = q.from_names();
    let is_outer = |c: &ColumnRef| !c.table.as_deref().is_some_and(|t| names.contains(&t));
    if let Some(p) = &q.where_clause {
        if predicate_column_refs(p).into_iter().any(&is_outer) {
            return true;
        }
    }
    q.select.iter().any(|item| match &item.expr {
        ScalarExpr::Column(c) => is_outer(c),
        ScalarExpr::Aggregate(_, nsql_sql::AggArg::Column(c)) => is_outer(c),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_analyzer::resolve::SchemaSource;
    use nsql_sql::{parse_query, print_query};
    use nsql_types::{ColumnType, Schema};

    struct Cat;
    impl SchemaSource for Cat {
        fn table_schema(&self, t: &str) -> Option<Schema> {
            use ColumnType::*;
            match t.to_ascii_uppercase().as_str() {
                "PARTS" => Some(Schema::of_table("PARTS", &[("PNUM", Int), ("QOH", Int)])),
                "SUPPLY" => Some(Schema::of_table(
                    "SUPPLY",
                    &[("PNUM", Int), ("QUAN", Int), ("SHIPDATE", Date)],
                )),
                "S" => Some(Schema::of_table(
                    "S",
                    &[("SNO", Str), ("SNAME", Str), ("STATUS", Int), ("CITY", Str)],
                )),
                "P" => Some(Schema::of_table(
                    "P",
                    &[("PNO", Str), ("PNAME", Str), ("COLOR", Str), ("WEIGHT", Int), ("CITY", Str)],
                )),
                "SP" => Some(Schema::of_table(
                    "SP",
                    &[("SNO", Str), ("PNO", Str), ("QTY", Int), ("ORIGIN", Str)],
                )),
                _ => None,
            }
        }
    }

    fn transform(src: &str) -> TransformPlan {
        transform_query(&Cat, &parse_query(src).unwrap(), &UnnestOptions::default()).unwrap()
    }

    #[test]
    fn type_n_becomes_canonical_join() {
        let plan = transform(
            "SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)",
        );
        assert!(plan.temps.is_empty());
        assert_eq!(
            print_query(&plan.canonical),
            "SELECT SP.SNO FROM SP, P WHERE P.WEIGHT > 50 AND SP.PNO = P.PNO"
        );
    }

    #[test]
    fn type_j_becomes_canonical_join() {
        let plan = transform(
            "SELECT SNAME FROM S WHERE SNO IS IN \
             (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
        );
        assert!(plan.temps.is_empty());
        assert_eq!(
            print_query(&plan.canonical),
            "SELECT S.SNAME FROM S, SP WHERE SP.QTY > 100 AND SP.ORIGIN = S.CITY AND S.SNO = SP.SNO"
        );
    }

    #[test]
    fn type_a_becomes_one_row_temp() {
        let plan = transform("SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)");
        assert_eq!(plan.temps.len(), 1);
        let LogicalPlan::Aggregate { group_by, .. } = &plan.temps[0].plan else { panic!() };
        assert!(group_by.is_empty(), "type-A temp is a global aggregate");
        assert_eq!(
            print_query(&plan.canonical),
            "SELECT SP.SNO FROM SP, TEMP1 WHERE SP.PNO = TEMP1.AGG"
        );
    }

    #[test]
    fn type_ja_produces_temps_and_flat_query() {
        let plan = transform(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        assert_eq!(plan.temps.len(), 3);
        let canonical = print_query(&plan.canonical);
        assert_eq!(
            canonical,
            "SELECT PARTS.PNUM FROM PARTS, TEMP3 \
             WHERE TEMP3.PNUM = PARTS.PNUM AND PARTS.QOH = TEMP3.AGG"
        );
    }

    #[test]
    fn kim_variant_produces_single_temp() {
        let plan = transform_query(
            &Cat,
            &parse_query(
                "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
                 WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
            )
            .unwrap(),
            &UnnestOptions { ja_variant: JaVariant::KimOriginal, ..Default::default() },
        )
        .unwrap();
        assert_eq!(plan.temps.len(), 1);
    }

    #[test]
    fn exists_rewrite_flows_into_ja2() {
        // Correlated EXISTS → 0 < COUNT(*) → type-JA via the outer join.
        let plan = transform(
            "SELECT SNAME FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)",
        );
        assert_eq!(plan.temps.len(), 3, "{plan}");
        let canonical = print_query(&plan.canonical);
        assert!(canonical.contains("0 < TEMP3.AGG"), "{canonical}");
    }

    #[test]
    fn deep_n_chain_flattens_completely() {
        let plan = transform(
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
             (SELECT PNO FROM P WHERE WEIGHT > 15))",
        );
        assert!(plan.temps.is_empty());
        let canonical = print_query(&plan.canonical);
        assert!(canonical.contains("FROM S, SP, P"), "{canonical}");
        assert!(!canonical.contains("IN ("), "{canonical}");
    }

    #[test]
    fn figure_2_multi_level_ja_detection() {
        // The Section-9 walkthrough: the aggregate block (B) has a child (C)
        // whose join predicate references the root's table; after C merges
        // into B, B is type-JA and NEST-JA2 fires.
        let plan = transform(
            "SELECT SNAME FROM S WHERE STATUS = \
               (SELECT MAX(QTY) FROM SP WHERE PNO IN \
                  (SELECT PNO FROM P WHERE P.CITY = S.CITY))",
        );
        // C (the P block) merges into B (the SP block); B inherits the
        // reference to S.CITY → type-JA → three temporaries.
        assert_eq!(plan.temps.len(), 3, "{plan}");
        let canonical = print_query(&plan.canonical);
        assert!(canonical.contains("FROM S, TEMP3"), "{canonical}");
        assert!(canonical.contains("S.STATUS = TEMP3.AGG"), "{canonical}");
        // The trace shows the recursion story.
        let trace = plan.trace.join("\n");
        assert!(trace.contains("type-J nesting"), "{trace}");
        assert!(trace.contains("NEST-JA2"), "{trace}");
    }

    #[test]
    fn negated_membership_is_unsupported() {
        let e = transform_query(
            &Cat,
            &parse_query("SELECT SNO FROM S WHERE SNO NOT IN (SELECT SNO FROM SP)").unwrap(),
            &UnnestOptions::default(),
        );
        assert!(matches!(e, Err(TransformError::Unsupported(_))));
    }

    #[test]
    fn subquery_under_or_is_unsupported() {
        let e = transform_query(
            &Cat,
            &parse_query(
                "SELECT SNO FROM S WHERE STATUS = 1 OR SNO IN (SELECT SNO FROM SP)",
            )
            .unwrap(),
            &UnnestOptions::default(),
        );
        assert!(matches!(e, Err(TransformError::Unsupported(_))));
    }

    #[test]
    fn flat_query_passes_through() {
        let plan = transform("SELECT SNO FROM SP WHERE QTY > 100");
        assert!(plan.temps.is_empty());
        assert_eq!(print_query(&plan.canonical), "SELECT SP.SNO FROM SP WHERE SP.QTY > 100");
    }

    #[test]
    fn in_merge_sets_distinct_flag_only_with_option() {
        let q = parse_query("SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P)").unwrap();
        let faithful = transform_query(&Cat, &q, &UnnestOptions::default()).unwrap();
        assert!(!faithful.needs_distinct_for_semantics);
        let preserving = transform_query(
            &Cat,
            &q,
            &UnnestOptions { preserve_duplicates: true, ..Default::default() },
        )
        .unwrap();
        assert!(preserving.needs_distinct_for_semantics);
    }

    #[test]
    fn self_join_membership_renames() {
        let plan = transform(
            "SELECT SP.SNO FROM SP WHERE QTY = ANY (SELECT QTY FROM SP X WHERE X.PNO = 'P1')",
        );
        let canonical = print_query(&plan.canonical);
        assert!(canonical.contains("FROM SP, SP X"), "{canonical}");
        assert!(canonical.contains("SP.QTY = X.QTY"), "{canonical}");
    }
}
