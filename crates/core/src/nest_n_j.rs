//! Kim's algorithm NEST-N-J (Section 3.1).
//!
//! > 1. Combine the FROM clauses of all query blocks into one FROM clause.
//! > 2. AND together the WHERE clauses of all query blocks, replacing
//! >    IS IN by `=`.
//! > 3. Retain the SELECT clause of the outermost query block.
//!
//! The implementation merges one inner block at a time (the recursive
//! driver in [`crate::nest_g`] feeds blocks innermost-first, so repeated
//! application handles any depth). One engineering addition the paper
//! leaves implicit: when the inner FROM reuses a table name visible in the
//! outer FROM, the inner occurrence is renamed with a fresh alias so the
//! merged FROM clause stays well-formed.

use crate::error::TransformError;
use crate::pipeline::TempNamer;
use crate::Result;
use nsql_sql::{ColumnRef, CompareOp, Operand, Predicate, QueryBlock, ScalarExpr};

/// The predicate connecting outer and inner: `operand op (inner)`.
/// `IS IN` arrives here as [`CompareOp::Eq`] per step 2 of the algorithm.
#[derive(Debug, Clone)]
pub struct Connecting {
    /// The outer-side operand.
    pub operand: Operand,
    /// The comparison operator.
    pub op: CompareOp,
}

/// Outcome details of a merge.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The inner block's WHERE clause (step 2's "AND together"), to be
    /// conjoined into the outer WHERE by the caller.
    pub inner_where: Option<Predicate>,
    /// The join predicate that replaced the nested predicate.
    pub join_pred: Predicate,
    /// Renames applied to the inner FROM entries (old effective name →
    /// new alias).
    pub renames: Vec<(String, String)>,
}

impl MergeOutcome {
    /// The combined predicate: inner WHERE AND the join predicate.
    pub fn combined_predicate(self) -> Predicate {
        match self.inner_where {
            Some(w) => Predicate::and(vec![w, self.join_pred]),
            None => self.join_pred,
        }
    }
}

/// NEST-N-J's applicability check, shared between [`merge_inner`] and the
/// rule catalog's precondition step ([`crate::rules`]): the inner block
/// must select exactly one column, carry no GROUP BY, and be flat (no
/// subqueries left below — the recursive driver transforms children
/// first).
pub fn merge_precondition(inner: &QueryBlock) -> Result<()> {
    if inner.select.len() != 1 {
        return Err(TransformError::Unsupported(format!(
            "inner block must select exactly one column (found {})",
            inner.select.len()
        )));
    }
    if !inner.group_by.is_empty() {
        return Err(TransformError::Unsupported(
            "inner block with GROUP BY cannot be merged by NEST-N-J".into(),
        ));
    }
    if inner
        .where_clause
        .as_ref()
        .is_some_and(Predicate::contains_subquery)
    {
        return Err(TransformError::Internal(
            "NEST-N-J received a non-flat inner block; transform children first".into(),
        ));
    }
    Ok(())
}

/// Merge a flat `inner` block into `outer`, removing nothing from
/// `outer.where_clause` — the caller replaces the nested predicate with the
/// returned join predicate. `inner` must be fully qualified, flat (no
/// subqueries), and select exactly one plain column.
pub fn merge_inner(
    outer: &mut QueryBlock,
    connecting: Connecting,
    mut inner: QueryBlock,
    namer: &mut TempNamer,
) -> Result<MergeOutcome> {
    merge_precondition(&inner)?;

    // Resolve FROM-name collisions by renaming the inner occurrence.
    let outer_names: Vec<String> =
        outer.from.iter().map(|t| t.effective_name().to_string()).collect();
    let mut renames = Vec::new();
    for entry in &mut inner.from {
        let name = entry.effective_name().to_string();
        if outer_names.iter().any(|n| n.eq_ignore_ascii_case(&name)) {
            namer.reserve(name.clone());
            let fresh = namer.fresh(&format!("{}_", entry.table));
            entry.alias = Some(fresh.clone());
            renames.push((name, fresh));
        }
    }
    for (old, new) in &renames {
        rename_level_refs(&mut inner, old, new);
    }

    // The join predicate: outer operand op inner select column.
    let inner_col = match &inner.select[0].expr {
        ScalarExpr::Column(c) => c.clone(),
        other => {
            return Err(TransformError::Unsupported(format!(
                "inner SELECT must be a plain column for NEST-N-J (found {other:?})"
            )))
        }
    };
    let join_pred = Predicate::Compare {
        left: connecting.operand,
        op: connecting.op,
        right: Operand::Column(inner_col),
    };

    // Step 1: combine FROMs. Step 2's AND of the WHERE clauses is returned
    // for the caller to splice (the caller owns the outer WHERE during the
    // conjunct walk).
    outer.from.append(&mut inner.from);
    Ok(MergeOutcome { inner_where: inner.where_clause.take(), join_pred, renames })
}

/// Rewrite every reference qualified by `old` in a *flat* block.
fn rename_level_refs(q: &mut QueryBlock, old: &str, new: &str) {
    let fix = |c: &mut ColumnRef| {
        if c.table.as_deref() == Some(old) {
            c.table = Some(new.to_string());
        }
    };
    for item in &mut q.select {
        match &mut item.expr {
            ScalarExpr::Column(c) => fix(c),
            ScalarExpr::Aggregate(_, nsql_sql::AggArg::Column(c)) => fix(c),
            _ => {}
        }
    }
    for c in &mut q.group_by {
        fix(c);
    }
    for k in &mut q.order_by {
        fix(&mut k.column);
    }
    if let Some(p) = &mut q.where_clause {
        rename_flat_pred(p, old, new);
    }
}

fn rename_flat_pred(p: &mut Predicate, old: &str, new: &str) {
    let fix_operand = |o: &mut Operand| {
        if let Operand::Column(c) = o {
            if c.table.as_deref() == Some(old) {
                c.table = Some(new.to_string());
            }
        }
    };
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                rename_flat_pred(q, old, new);
            }
        }
        Predicate::Not(q) => rename_flat_pred(q, old, new),
        Predicate::Compare { left, right, .. } => {
            fix_operand(left);
            fix_operand(right);
        }
        Predicate::In { operand, .. } => fix_operand(operand),
        Predicate::IsNull { operand, .. } => fix_operand(operand),
        Predicate::Exists { .. } | Predicate::Quantified { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::{parse_query, print_query, InRhs};

    fn split_in(src: &str) -> (QueryBlock, Operand, QueryBlock) {
        let mut q = parse_query(src).unwrap();
        let Some(Predicate::In { operand, rhs: InRhs::Subquery(inner), negated: false }) =
            q.where_clause.take()
        else {
            panic!("expected IN subquery")
        };
        (q, operand, *inner)
    }

    #[test]
    fn merges_lemma_1_example() {
        // Q2 of Lemma 1 → Q1: SELECT Ri.Ck FROM Ri WHERE Ri.Ch IN
        // (SELECT Rj.Cm FROM Rj) becomes the canonical join.
        let (mut outer, operand, inner) = split_in(
            "SELECT RI.CK FROM RI WHERE RI.CH IN (SELECT RJ.CM FROM RJ)",
        );
        let mut namer = TempNamer::new(vec![]);
        let out = merge_inner(
            &mut outer,
            Connecting { operand, op: CompareOp::Eq },
            inner,
            &mut namer,
        )
        .unwrap();
        outer.and_where(out.combined_predicate());
        assert_eq!(
            print_query(&outer),
            "SELECT RI.CK FROM RI, RJ WHERE RI.CH = RJ.CM"
        );
    }

    #[test]
    fn merges_inner_where_too() {
        let (mut outer, operand, inner) = split_in(
            "SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE WEIGHT > 50)",
        );
        let mut namer = TempNamer::new(vec![]);
        let out = merge_inner(
            &mut outer,
            Connecting { operand, op: CompareOp::Eq },
            inner,
            &mut namer,
        )
        .unwrap();
        outer.and_where(out.combined_predicate());
        let printed = print_query(&outer);
        assert_eq!(
            printed,
            "SELECT SNO FROM SP, P WHERE WEIGHT > 50 AND PNO = PNO"
        );
    }

    #[test]
    fn renames_colliding_tables() {
        let (mut outer, operand, inner) = split_in(
            "SELECT SP.SNO FROM SP WHERE SP.QTY IN (SELECT SP.QTY FROM SP WHERE SP.PNO = 'P1')",
        );
        let mut namer = TempNamer::new(vec![]);
        let out = merge_inner(
            &mut outer,
            Connecting { operand, op: CompareOp::Eq },
            inner,
            &mut namer,
        )
        .unwrap();
        let printed = {
            let combined = out.clone().combined_predicate();
            outer.and_where(combined);
            print_query(&outer)
        };
        assert_eq!(out.renames.len(), 1);
        let fresh = &out.renames[0].1;
        assert!(printed.contains(&format!("FROM SP, SP {fresh}")), "{printed}");
        assert!(printed.contains(&format!("{fresh}.PNO = 'P1'")), "{printed}");
        assert!(printed.contains(&format!("SP.QTY = {fresh}.QTY")), "{printed}");
    }

    #[test]
    fn rejects_multi_column_inner_select() {
        let (mut outer, operand, inner) =
            split_in("SELECT SNO FROM SP WHERE PNO IN (SELECT PNO, WEIGHT FROM P)");
        let mut namer = TempNamer::new(vec![]);
        assert!(merge_inner(
            &mut outer,
            Connecting { operand, op: CompareOp::Eq },
            inner,
            &mut namer
        )
        .is_err());
    }

    #[test]
    fn rejects_non_flat_inner() {
        let (mut outer, operand, inner) = split_in(
            "SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE PNO IN (SELECT PNO FROM P2))",
        );
        let mut namer = TempNamer::new(vec![]);
        assert!(matches!(
            merge_inner(
                &mut outer,
                Connecting { operand, op: CompareOp::Eq },
                inner,
                &mut namer
            ),
            Err(TransformError::Internal(_))
        ));
    }
}
