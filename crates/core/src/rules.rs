//! Rule-based logical optimizer.
//!
//! Two rule families share one match → precondition → rewrite discipline:
//!
//! * **Block rules** host the paper's NEST-* transforms. The recursive
//!   NEST-G driver ([`crate::nest_g`]) classifies each nested predicate by
//!   the (correlated, aggregate) pair and asks the catalog
//!   ([`select_block_rule`]) which rule fires; the rule's *precondition*
//!   re-uses exactly the validation its rewrite performs (NEST-N-J's
//!   [`merge_precondition`](crate::nest_n_j::merge_precondition), NEST-JA2
//!   / Kim's [`analyze_ja`](crate::nest_ja2::analyze_ja), type-A's
//!   [`check_type_a`](crate::nest_g::check_type_a)), so a precondition
//!   failure surfaces the same [`TransformError`] the bespoke dispatch
//!   produced. Each block rule names the Section-7 formula that prices it;
//!   `nsql-db` evaluates those formulas with catalog statistics when it
//!   compares strategies.
//!
//! * **Plan rules** rewrite the [`LogicalPlan`] temporaries: predicate
//!   pushdown (through projections, into the matching side of inner joins,
//!   merging adjacent filters — never across a left outer join, whose
//!   NULL-extending rows a pushed filter would wrongly remove) and
//!   projection pruning (dropping a plain non-distinct projection under an
//!   aggregate that reads only projected columns). [`RuleEngine::optimize`]
//!   drives them to a **fixpoint**: every rewrite strictly decreases the
//!   measure `(node count, Σ filter-subtree sizes)` in lexicographic order
//!   — merging filters and pruning projections shrink the node count,
//!   pushdown keeps it constant while strictly shrinking the subtree under
//!   some filter — so the loop terminates without relying on the iteration
//!   budget, which is only a backstop against a future non-monotone rule.
//!
//! Plan rules are **opt-in** via
//! [`UnnestOptions::logical_rules`](crate::UnnestOptions): the default
//! pipeline keeps the paper's literal temp shapes (several demonstrations
//! — Section 5.2's late restriction among them — deliberately preserve a
//! shape a pushdown would "fix", and the I/O-shape tests pin the default
//! plans page for page).

use crate::logical::{LogicalJoinKind, LogicalPlan};
use crate::TransformError;
use nsql_analyzer::resolve::predicate_column_refs;
use nsql_sql::{ColumnRef, Predicate, QueryBlock, ScalarExpr};

// ------------------------------------------------------------- block rules

/// Classification of one nested predicate: the (correlated, aggregate)
/// pair of Section 2's four nesting types, after children were flattened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedShape {
    /// The inner block references an enclosing scope.
    pub correlated: bool,
    /// The inner block's SELECT is an aggregate.
    pub aggregate: bool,
}

/// What a selected block rule rewrites the nested predicate with; the
/// NEST-G driver owns the actual AST surgery (it holds the temp namer and
/// scope chain), keyed by this action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAction {
    /// NEST-N-J: merge the inner block into the outer (types N and J).
    MergeNJ,
    /// Type-A: materialize the constant inner block as a one-row temp.
    TypeAConstant,
    /// NEST-JA2 (or one of its demonstration variants, per
    /// [`crate::JaVariant`]): reduce type-JA to type-J.
    NestJa2,
    /// Kim's original NEST-JA (buggy baseline), on request.
    NestJaKim,
}

/// One block-level rewrite rule: a match on the nesting shape, a
/// precondition over the inner block, and the rewrite action the driver
/// executes when both pass.
pub struct BlockRule {
    /// Rule name (obs events, DESIGN.md rule catalog).
    pub name: &'static str,
    /// Section-7 formula that prices this rule's output plan — evaluated
    /// with catalog statistics by the strategy comparison in `nsql-db`.
    pub priced_by: &'static str,
    matches: fn(NestedShape, bool) -> bool,
    precondition: fn(&QueryBlock) -> crate::Result<()>,
    /// The rewrite the driver performs.
    pub action: BlockAction,
}

impl BlockRule {
    /// Does this rule's pattern match the shape? `kim` selects the buggy
    /// baseline for type-JA (a rule-catalog alternative, not a shape).
    pub fn matches(&self, shape: NestedShape, kim: bool) -> bool {
        (self.matches)(shape, kim)
    }

    /// Check the rule's precondition on the (flattened) inner block.
    pub fn precondition(&self, inner: &QueryBlock) -> crate::Result<()> {
        (self.precondition)(inner)
    }
}

/// The block-rule catalog, in match order.
pub const BLOCK_RULES: &[BlockRule] = &[
    BlockRule {
        name: "type-a-constant",
        priced_by: "one inner scan + one-page temp (constant fold)",
        matches: |s, _| !s.correlated && s.aggregate,
        precondition: crate::nest_g::check_type_a,
        action: BlockAction::TypeAConstant,
    },
    BlockRule {
        name: "nest-ja2",
        priced_by: "ja2_cost (Section 7.1–7.3)",
        matches: |s, kim| s.correlated && s.aggregate && !kim,
        precondition: |inner| crate::nest_ja2::analyze_ja(inner).map(|_| ()),
        action: BlockAction::NestJa2,
    },
    BlockRule {
        name: "nest-ja-kim",
        priced_by: "ja2_cost without the outer projection (Kim baseline)",
        matches: |s, kim| s.correlated && s.aggregate && kim,
        precondition: |inner| crate::nest_ja2::analyze_ja(inner).map(|_| ()),
        action: BlockAction::NestJaKim,
    },
    BlockRule {
        name: "nest-n-j",
        priced_by: "transformed_merge_join_cost / nested_iteration_cost_n",
        matches: |s, _| !s.aggregate,
        precondition: crate::nest_n_j::merge_precondition,
        action: BlockAction::MergeNJ,
    },
];

/// Select the block rule for a nesting shape. Exactly one rule matches
/// every shape (the catalog partitions the classification square), so this
/// cannot fail; the *rule's* precondition still can.
pub fn select_block_rule(shape: NestedShape, kim: bool) -> &'static BlockRule {
    BLOCK_RULES
        .iter()
        .find(|r| r.matches(shape, kim))
        .expect("the block-rule catalog covers all four nesting shapes")
}

// -------------------------------------------------------------- plan rules

/// One plan-rule firing, for the transformation trace and obs events.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleFiring {
    /// Rule name.
    pub rule: &'static str,
    /// What the firing did, human-readable.
    pub detail: String,
}

/// A rewrite rule over [`LogicalPlan`]s. `apply_once` attempts a single
/// rewrite anywhere in the plan (topmost match first) and returns the
/// rewritten plan plus a firing record, or `None` when no redex exists —
/// the precondition check lives inside the match (a pushdown that cannot
/// prove column containment, or would cross an outer join, is a non-match).
pub trait PlanRule {
    /// Rule name (trace lines, obs events).
    fn name(&self) -> &'static str;
    /// Attempt one rewrite.
    fn apply_once(&self, plan: &LogicalPlan) -> Option<(LogicalPlan, String)>;
}

/// Qualifiers (effective table names) produced by a plan subtree. Renames
/// are globally unique by construction (the temp namer reserves every
/// visible name), so qualifier containment decides column provenance.
fn qualifiers(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::Scan { table, alias } => {
            out.push(alias.clone().unwrap_or_else(|| table.clone()));
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. } => qualifiers(input, out),
        LogicalPlan::Join { left, right, .. } => {
            qualifiers(left, out);
            qualifiers(right, out);
        }
    }
}

fn refs_within(pred: &Predicate, quals: &[String]) -> bool {
    let refs = predicate_column_refs(pred);
    !refs.is_empty()
        && refs.iter().all(|r| {
            r.table
                .as_deref()
                .is_some_and(|t| quals.iter().any(|q| q.eq_ignore_ascii_case(t)))
        })
}

/// Predicate pushdown: move filters toward the scans they restrict.
///
/// Cases (each strictly decreases the fixpoint measure):
/// * `Filter(Filter(x))` → one filter with the conjunction (node count −1);
/// * `Filter(Project(x))` → `Project(Filter(x))` when the projection is
///   plain columns (no aliasing that could capture the filter's names);
/// * `Filter(Join_inner(l, r))` → push into the side whose qualifiers
///   cover every column the predicate reads.
///
/// **Never across a left outer join**: the filter sees NULL-extended rows
/// the join manufactures; below the join those rows do not exist yet, so
/// pushing changes results (the COUNT-bug construction is exactly such a
/// plan).
pub struct PredicatePushdown;

impl PlanRule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate-pushdown"
    }

    fn apply_once(&self, plan: &LogicalPlan) -> Option<(LogicalPlan, String)> {
        match plan {
            LogicalPlan::Filter { input, pred } => match &**input {
                LogicalPlan::Filter { input: inner, pred: inner_pred } => {
                    let merged = Predicate::and(vec![pred.clone(), inner_pred.clone()]);
                    Some((
                        LogicalPlan::Filter { input: inner.clone(), pred: merged },
                        "merged adjacent filters".to_string(),
                    ))
                }
                LogicalPlan::Project { input: inner, items, distinct } => {
                    // Precondition: plain unaliased column projection, so
                    // every name the filter reads means the same thing
                    // below the projection.
                    let plain = items.iter().all(|i| {
                        i.alias.is_none() && matches!(i.expr, ScalarExpr::Column(_))
                    });
                    if !plain {
                        return None;
                    }
                    Some((
                        LogicalPlan::Project {
                            input: Box::new(LogicalPlan::Filter {
                                input: inner.clone(),
                                pred: pred.clone(),
                            }),
                            items: items.clone(),
                            distinct: *distinct,
                        },
                        "pushed filter below projection".to_string(),
                    ))
                }
                LogicalPlan::Join { left, right, kind, on } => {
                    // Precondition: inner join only — a left outer join is
                    // a barrier (NULL-extended rows).
                    if *kind != LogicalJoinKind::Inner {
                        return None;
                    }
                    let mut lq = Vec::new();
                    let mut rq = Vec::new();
                    qualifiers(left, &mut lq);
                    qualifiers(right, &mut rq);
                    let (side, into_left) = if refs_within(pred, &lq) {
                        ("left", true)
                    } else if refs_within(pred, &rq) {
                        ("right", false)
                    } else {
                        return None;
                    };
                    let wrap = |p: &LogicalPlan| {
                        Box::new(LogicalPlan::Filter {
                            input: Box::new(p.clone()),
                            pred: pred.clone(),
                        })
                    };
                    let (l, r) = if into_left {
                        (wrap(left), right.clone())
                    } else {
                        (left.clone(), wrap(right))
                    };
                    Some((
                        LogicalPlan::Join { left: l, right: r, kind: *kind, on: on.clone() },
                        format!("pushed filter into the {side} join input"),
                    ))
                }
                _ => None,
            },
            LogicalPlan::Project { input, items, distinct } => self
                .apply_once(input)
                .map(|(p, d)| {
                    (
                        LogicalPlan::Project {
                            input: Box::new(p),
                            items: items.clone(),
                            distinct: *distinct,
                        },
                        d,
                    )
                }),
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                self.apply_once(input).map(|(p, d)| {
                    (
                        LogicalPlan::Aggregate {
                            input: Box::new(p),
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                        },
                        d,
                    )
                })
            }
            LogicalPlan::Join { left, right, kind, on } => {
                if let Some((l, d)) = self.apply_once(left) {
                    return Some((
                        LogicalPlan::Join {
                            left: Box::new(l),
                            right: right.clone(),
                            kind: *kind,
                            on: on.clone(),
                        },
                        d,
                    ));
                }
                self.apply_once(right).map(|(r, d)| {
                    (
                        LogicalPlan::Join {
                            left: left.clone(),
                            right: Box::new(r),
                            kind: *kind,
                            on: on.clone(),
                        },
                        d,
                    )
                })
            }
            LogicalPlan::Scan { .. } => None,
        }
    }
}

/// Projection pruning: drop a plain, non-distinct, unaliased column
/// projection directly under an aggregate that reads only projected
/// columns. Such a projection changes neither row multiplicity nor any
/// column the aggregate touches, so removing it is semantics-preserving
/// and saves one pipeline stage.
pub struct ProjectionPruning;

impl PlanRule for ProjectionPruning {
    fn name(&self) -> &'static str {
        "projection-pruning"
    }

    fn apply_once(&self, plan: &LogicalPlan) -> Option<(LogicalPlan, String)> {
        match plan {
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                if let LogicalPlan::Project { input: below, items, distinct: false } = &**input {
                    let projected: Vec<&ColumnRef> = items
                        .iter()
                        .filter_map(|i| match (&i.expr, &i.alias) {
                            (ScalarExpr::Column(c), None) => Some(c),
                            _ => None,
                        })
                        .collect();
                    let plain = projected.len() == items.len();
                    let covered = |c: &ColumnRef| projected.iter().any(|p| *p == c);
                    let reads_ok = group_by.iter().all(&covered)
                        && aggs.iter().all(|a| match &a.arg {
                            nsql_sql::AggArg::Star => true,
                            nsql_sql::AggArg::Column(c) => covered(c),
                        });
                    if plain && reads_ok {
                        return Some((
                            LogicalPlan::Aggregate {
                                input: below.clone(),
                                group_by: group_by.clone(),
                                aggs: aggs.clone(),
                            },
                            "pruned redundant projection under aggregate".to_string(),
                        ));
                    }
                }
                self.apply_once(input).map(|(p, d)| {
                    (
                        LogicalPlan::Aggregate {
                            input: Box::new(p),
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                        },
                        d,
                    )
                })
            }
            LogicalPlan::Filter { input, pred } => self.apply_once(input).map(|(p, d)| {
                (LogicalPlan::Filter { input: Box::new(p), pred: pred.clone() }, d)
            }),
            LogicalPlan::Project { input, items, distinct } => {
                self.apply_once(input).map(|(p, d)| {
                    (
                        LogicalPlan::Project {
                            input: Box::new(p),
                            items: items.clone(),
                            distinct: *distinct,
                        },
                        d,
                    )
                })
            }
            LogicalPlan::Join { left, right, kind, on } => {
                if let Some((l, d)) = self.apply_once(left) {
                    return Some((
                        LogicalPlan::Join {
                            left: Box::new(l),
                            right: right.clone(),
                            kind: *kind,
                            on: on.clone(),
                        },
                        d,
                    ));
                }
                self.apply_once(right).map(|(r, d)| {
                    (
                        LogicalPlan::Join {
                            left: left.clone(),
                            right: Box::new(r),
                            kind: *kind,
                            on: on.clone(),
                        },
                        d,
                    )
                })
            }
            LogicalPlan::Scan { .. } => None,
        }
    }
}

/// The fixpoint driver over a fixed rule list.
pub struct RuleEngine {
    rules: Vec<Box<dyn PlanRule>>,
    /// Iteration backstop; the measure argument (module docs) means a
    /// standard-catalog run never reaches it.
    pub budget: usize,
}

impl RuleEngine {
    /// The standard catalog: predicate pushdown, then projection pruning.
    pub fn standard() -> RuleEngine {
        RuleEngine {
            rules: vec![Box::new(PredicatePushdown), Box::new(ProjectionPruning)],
            budget: 128,
        }
    }

    /// Drive the rules to a fixpoint. Returns the optimized plan and the
    /// ordered firing log (one entry per rewrite, for trace lines and obs
    /// events).
    pub fn optimize(&self, mut plan: LogicalPlan) -> (LogicalPlan, Vec<RuleFiring>) {
        let mut firings = Vec::new();
        'outer: for _ in 0..self.budget {
            for rule in &self.rules {
                if let Some((next, detail)) = rule.apply_once(&plan) {
                    plan = next;
                    firings.push(RuleFiring { rule: rule.name(), detail });
                    continue 'outer;
                }
            }
            break;
        }
        (plan, firings)
    }
}

/// Check a [`TransformError`] precondition result (convenience for tests).
pub fn precondition_err(e: crate::Result<()>) -> Option<TransformError> {
    e.err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::JoinPred;
    use nsql_sql::{parse_query, CompareOp, SelectItem};

    fn pred(src: &str) -> Predicate {
        parse_query(&format!("SELECT K FROM T WHERE {src}"))
            .unwrap()
            .where_clause
            .unwrap()
    }

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::scan(name)
    }

    fn filter(input: LogicalPlan, p: &str) -> LogicalPlan {
        LogicalPlan::Filter { input: Box::new(input), pred: pred(p) }
    }

    fn join(l: LogicalPlan, r: LogicalPlan, kind: LogicalJoinKind) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            kind,
            on: vec![JoinPred {
                left: ColumnRef::qualified("A", "K"),
                op: CompareOp::Eq,
                right: ColumnRef::qualified("B", "K"),
            }],
        }
    }

    #[test]
    fn block_rule_catalog_partitions_the_classification_square() {
        for correlated in [false, true] {
            for aggregate in [false, true] {
                for kim in [false, true] {
                    let shape = NestedShape { correlated, aggregate };
                    let matching: Vec<&str> = BLOCK_RULES
                        .iter()
                        .filter(|r| r.matches(shape, kim))
                        .map(|r| r.name)
                        .collect();
                    assert_eq!(matching.len(), 1, "{shape:?} kim={kim}: {matching:?}");
                }
            }
        }
        let ja = select_block_rule(NestedShape { correlated: true, aggregate: true }, false);
        assert_eq!(ja.action, BlockAction::NestJa2);
        let kim = select_block_rule(NestedShape { correlated: true, aggregate: true }, true);
        assert_eq!(kim.action, BlockAction::NestJaKim);
        let nj = select_block_rule(NestedShape { correlated: true, aggregate: false }, false);
        assert_eq!(nj.action, BlockAction::MergeNJ);
        let a = select_block_rule(NestedShape { correlated: false, aggregate: true }, true);
        assert_eq!(a.action, BlockAction::TypeAConstant);
    }

    #[test]
    fn block_rule_preconditions_reject_bad_inner_blocks() {
        let nj = select_block_rule(NestedShape { correlated: false, aggregate: false }, false);
        let two_cols = parse_query("SELECT K, V FROM T").unwrap();
        assert!(nj.precondition(&two_cols).is_err(), "multi-column select must be vetoed");
        let one_col = parse_query("SELECT K FROM T").unwrap();
        assert!(nj.precondition(&one_col).is_ok());
    }

    #[test]
    fn pushdown_merges_adjacent_filters() {
        let plan = filter(filter(scan("A"), "A.K = 1"), "A.V = 2");
        let (out, firings) = RuleEngine::standard().optimize(plan);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].rule, "predicate-pushdown");
        let LogicalPlan::Filter { input, .. } = &out else { panic!("{}", out.explain()) };
        assert!(matches!(**input, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn pushdown_moves_filter_below_plain_projection() {
        let project = LogicalPlan::Project {
            input: Box::new(scan("A")),
            items: vec![SelectItem::column(ColumnRef::qualified("A", "K"))],
            distinct: true,
        };
        let plan = filter(project, "A.K = 1");
        let (out, firings) = RuleEngine::standard().optimize(plan);
        assert_eq!(firings.len(), 1, "{}", out.explain());
        assert!(
            matches!(out, LogicalPlan::Project { .. }),
            "projection should now be on top:\n{}",
            out.explain()
        );
    }

    #[test]
    fn pushdown_respects_aliased_projection() {
        let project = LogicalPlan::Project {
            input: Box::new(scan("A")),
            items: vec![SelectItem {
                expr: ScalarExpr::Column(ColumnRef::qualified("A", "K")),
                alias: Some("K2".into()),
            }],
            distinct: false,
        };
        let plan = filter(project, "A.K = 1");
        let (_, firings) = RuleEngine::standard().optimize(plan);
        assert!(firings.is_empty(), "aliased projection must block pushdown: {firings:?}");
    }

    #[test]
    fn pushdown_routes_filter_to_owning_join_side() {
        let plan = filter(join(scan("A"), scan("B"), LogicalJoinKind::Inner), "B.V = 3");
        let (out, firings) = RuleEngine::standard().optimize(plan);
        assert_eq!(firings.len(), 1);
        assert!(firings[0].detail.contains("right"), "{:?}", firings);
        let LogicalPlan::Join { right, .. } = &out else { panic!("{}", out.explain()) };
        assert!(matches!(**right, LogicalPlan::Filter { .. }), "{}", out.explain());
    }

    #[test]
    fn pushdown_never_crosses_left_outer_join() {
        // The COUNT-bug shape: a filter above a left outer join must stay
        // put, even when its columns all come from one side.
        let plan = filter(join(scan("A"), scan("B"), LogicalJoinKind::LeftOuter), "B.V = 3");
        let (out, firings) = RuleEngine::standard().optimize(plan.clone());
        assert!(firings.is_empty(), "outer join must be a barrier: {firings:?}");
        assert_eq!(out, plan);
    }

    #[test]
    fn pruning_drops_redundant_projection_under_aggregate() {
        let project = LogicalPlan::Project {
            input: Box::new(scan("A")),
            items: vec![
                SelectItem::column(ColumnRef::qualified("A", "K")),
                SelectItem::column(ColumnRef::qualified("A", "V")),
            ],
            distinct: false,
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(project),
            group_by: vec![ColumnRef::qualified("A", "K")],
            aggs: vec![crate::AggItem {
                func: nsql_sql::AggFunc::Sum,
                arg: nsql_sql::AggArg::Column(ColumnRef::qualified("A", "V")),
                alias: "S".into(),
            }],
        };
        let (out, firings) = RuleEngine::standard().optimize(plan);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].rule, "projection-pruning");
        let LogicalPlan::Aggregate { input, .. } = &out else { panic!() };
        assert!(matches!(**input, LogicalPlan::Scan { .. }), "{}", out.explain());
    }

    #[test]
    fn pruning_keeps_distinct_projections() {
        // DISTINCT changes multiplicity: the projection is load-bearing.
        let project = LogicalPlan::Project {
            input: Box::new(scan("A")),
            items: vec![SelectItem::column(ColumnRef::qualified("A", "K"))],
            distinct: true,
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(project),
            group_by: vec![ColumnRef::qualified("A", "K")],
            aggs: vec![crate::AggItem {
                func: nsql_sql::AggFunc::Count,
                arg: nsql_sql::AggArg::Star,
                alias: "C".into(),
            }],
        };
        let (_, firings) = RuleEngine::standard().optimize(plan);
        assert!(firings.is_empty(), "{firings:?}");
    }

    #[test]
    fn fixpoint_terminates_and_composes_rules() {
        // Filter over filter over projection over inner join: the engine
        // merges, pushes through the projection, then into the join side —
        // and stops (no infinite ping-pong).
        let project = LogicalPlan::Project {
            input: Box::new(join(scan("A"), scan("B"), LogicalJoinKind::Inner)),
            items: vec![
                SelectItem::column(ColumnRef::qualified("A", "K")),
                SelectItem::column(ColumnRef::qualified("A", "V")),
            ],
            distinct: false,
        };
        let plan = filter(filter(project, "A.K = 1"), "A.V = 2");
        let engine = RuleEngine::standard();
        let (out, firings) = engine.optimize(plan);
        assert!(
            firings.len() >= 3 && firings.len() < engine.budget,
            "expected a short composed chain, got {firings:?}"
        );
        // The merged filter ends up on the join's left (A) input.
        let LogicalPlan::Project { input, .. } = &out else { panic!("{}", out.explain()) };
        let LogicalPlan::Join { left, .. } = &**input else { panic!("{}", out.explain()) };
        assert!(matches!(**left, LogicalPlan::Filter { .. }), "{}", out.explain());
    }
}
