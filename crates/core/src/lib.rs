#![warn(missing_docs)]

//! The paper's contribution: nested-query transformation algorithms and the
//! Section-7 cost model.
//!
//! # Algorithms
//!
//! * [`nest_n_j`] — Kim's **NEST-N-J** (Section 3.1): merge FROM clauses,
//!   AND the WHERE clauses, replace `IS IN` by `=`. Correct for type-N and
//!   type-J nesting; retained verbatim.
//! * [`nest_ja_kim`] — Kim's original **NEST-JA** (Section 3.2), kept as a
//!   faithful *buggy baseline*: it exhibits the COUNT bug (Section 5.1), the
//!   non-equality-operator bug (Section 5.3), and the duplicates problem
//!   (Section 5.4) exactly as the paper demonstrates.
//! * [`nest_ja2`] — the paper's corrected **NEST-JA2** (Section 6): project
//!   and restrict the outer join column first; build the aggregate temporary
//!   with a join — an *outer* join when the aggregate is COUNT, rewriting
//!   `COUNT(*)` over the join column; change the original join predicate to
//!   equality.
//! * [`rewrites`] — the Section-8 extensions turning `EXISTS`, `NOT
//!   EXISTS`, `ANY`, and `ALL` predicates into COUNT / MIN / MAX forms the
//!   other algorithms handle.
//! * [`nest_g`] — the Section-9 recursive postorder driver that transforms
//!   a nested query of arbitrary depth and shape.
//!
//! # Outputs
//!
//! A transformation produces a [`pipeline::TransformPlan`]: an ordered list
//! of temporary-table definitions (as [`logical::LogicalPlan`]s, since
//! NEST-JA2's temporaries need outer joins and GROUP BYs that plain query
//! blocks cannot express) plus a *canonical* flat `QueryBlock`
//! (from `nsql_sql`) that a conventional single-level optimizer — ours
//! lives in `nsql-db` — can execute with its choice of join methods.
//!
//! # Cost model
//!
//! [`cost`] implements the paper's page-I/O formulas (Section 7 plus the
//! Kim-style baselines), using the continuous `log_{B-1}` the paper's
//! arithmetic implies; the Section-7.4 worked example reproduces to ≈475
//! page I/Os against 3050 for nested iteration.

pub mod cost;
pub mod error;
pub mod logical;
pub mod nest_g;
pub mod nest_ja2;
pub mod nest_ja_kim;
pub mod nest_n_j;
pub mod pipeline;
pub mod qualify;
pub mod rewrites;
pub mod rules;

pub use error::TransformError;
pub use logical::{AggItem, JoinPred, LogicalJoinKind, LogicalPlan};
pub use nest_g::{transform_query, transform_query_traced, JaVariant, UnnestOptions};
pub use nest_ja2::Ja2Config;
pub use pipeline::{TempTable, TransformPlan};
pub use rules::{BlockRule, NestedShape, PlanRule, RuleEngine, RuleFiring};

/// Result alias for transformation.
pub type Result<T> = std::result::Result<T, TransformError>;
