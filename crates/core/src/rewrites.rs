//! Section-8 predicate extensions: EXISTS, NOT EXISTS, ANY, ALL.
//!
//! Each rewrite turns an extended predicate into a scalar or set-containment
//! form the main transformation algorithms handle:
//!
//! * `EXISTS (SELECT …)`      → `0 < (SELECT COUNT(…) …)`
//! * `NOT EXISTS (SELECT …)`  → `0 = (SELECT COUNT(…) …)`
//! * `x < ANY (SELECT c …)`   → `x < (SELECT MAX(c) …)` (also `<=`)
//! * `x < ALL (SELECT c …)`   → `x < (SELECT MIN(c) …)` (also `<=`)
//! * `x > ANY (SELECT c …)`   → `x > (SELECT MIN(c) …)` (also `>=`)
//! * `x > ALL (SELECT c …)`   → `x > (SELECT MAX(c) …)` (also `>=`)
//! * `x = ANY (SELECT …)`     → `x IN (SELECT …)`
//! * `x != ALL (SELECT …)`    → `x NOT IN (SELECT …)`
//!
//! Two fidelity notes, both recorded in DESIGN.md:
//!
//! * The paper writes `COUNT(selitems)` in the EXISTS rewrite; we emit
//!   `COUNT(*)` so that NULL-valued select items cannot under-count rows —
//!   NEST-JA2's own Section-5.2.1 rule then converts `COUNT(*)` to a count
//!   over the join column.
//! * The paper says "`!=ANY` is transformed to `NOT IN`"; the semantically
//!   matching pair is `!=ALL` ⇔ `NOT IN` (`!=ANY` means *some* element
//!   differs). We implement the correct pairing; `=ALL` and `!=ANY` have no
//!   scalar rewrite and are left for the nested-iteration evaluator.
//!
//! As the paper itself notes, the ANY/ALL rewrites are "logically (but not
//! necessarily semantically) equivalent": over an empty inner result,
//! `x < ALL (∅)` is TRUE while `x < MIN(∅) = NULL` is UNKNOWN. The rewrites
//! are faithful; `tests/any_all_divergence.rs` demonstrates the divergence.

use nsql_sql::{
    AggArg, AggFunc, CompareOp, InRhs, Operand, Predicate, Quantifier, QueryBlock, ScalarExpr,
    SelectItem,
};

/// Rewrite all extended predicates in a predicate tree (this level only —
/// the recursive driver handles nested blocks when it descends into them).
/// Returns the rewritten predicate and appends a line per rewrite to
/// `trace`. Unrewritable predicates (`=ALL`, `!=ANY`) are left unchanged.
pub fn rewrite_extended(p: Predicate, trace: &mut Vec<String>) -> Predicate {
    match p {
        Predicate::And(ps) => {
            Predicate::And(ps.into_iter().map(|q| rewrite_extended(q, trace)).collect())
        }
        Predicate::Or(ps) => {
            Predicate::Or(ps.into_iter().map(|q| rewrite_extended(q, trace)).collect())
        }
        Predicate::Not(q) => Predicate::Not(Box::new(rewrite_extended(*q, trace))),
        Predicate::Exists { negated, query } => {
            let (op, name) = if negated {
                (CompareOp::Eq, "NOT EXISTS")
            } else {
                (CompareOp::Lt, "EXISTS")
            };
            trace.push(format!(
                "Section 8.1: {name} rewritten to 0 {} (SELECT COUNT(*) …)",
                op.symbol()
            ));
            let mut counting = *query;
            counting.select =
                vec![SelectItem::new(ScalarExpr::Aggregate(AggFunc::Count, AggArg::Star))];
            counting.distinct = false;
            Predicate::Compare {
                left: Operand::Literal(nsql_types::Value::Int(0)),
                op,
                right: Operand::Subquery(Box::new(counting)),
            }
        }
        Predicate::Quantified { left, op, quantifier, query } => {
            rewrite_quantified(left, op, quantifier, *query, trace)
        }
        other => other,
    }
}

fn rewrite_quantified(
    left: Operand,
    op: CompareOp,
    quantifier: Quantifier,
    query: QueryBlock,
    trace: &mut Vec<String>,
) -> Predicate {
    use CompareOp::*;
    use Quantifier::*;
    // If the inner SELECT is already an aggregate the subquery is scalar and
    // the quantifier is vacuous (at most one row): compare directly.
    if query.has_aggregate_select() {
        trace.push("Section 8.2: quantifier over a scalar (aggregate) subquery dropped".into());
        return Predicate::Compare { left, op, right: Operand::Subquery(Box::new(query)) };
    }
    let agg = match (op, quantifier) {
        (Eq, Any) => {
            trace.push("Section 8.2: =ANY rewritten to IN".into());
            return Predicate::In {
                operand: left,
                negated: false,
                rhs: InRhs::Subquery(Box::new(query)),
            };
        }
        (Ne, All) => {
            // The paper (with a typo — it writes "!=ANY") means this pair.
            trace.push("Section 8.2: !=ALL rewritten to NOT IN".into());
            return Predicate::In {
                operand: left,
                negated: true,
                rhs: InRhs::Subquery(Box::new(query)),
            };
        }
        (Lt | Le, Any) => AggFunc::Max,
        (Lt | Le, All) => AggFunc::Min,
        (Gt | Ge, Any) => AggFunc::Min,
        (Gt | Ge, All) => AggFunc::Max,
        (Eq, All) | (Ne, Any) => {
            trace.push(format!(
                "Section 8.2: {}{} has no scalar rewrite; left for nested iteration",
                op.symbol(),
                if quantifier == Any { "ANY" } else { "ALL" }
            ));
            return Predicate::Quantified { left, op, quantifier, query: Box::new(query) };
        }
    };
    let mut inner = query;
    let item = inner.select.first().cloned();
    let Some(SelectItem { expr: ScalarExpr::Column(col), .. }) = item else {
        trace.push("Section 8.2: quantified subquery does not select a plain column; left as is".into());
        return Predicate::Quantified { left, op, quantifier, query: Box::new(inner) };
    };
    trace.push(format!(
        "Section 8.2: {} {} rewritten to {} (SELECT {}({col}) …)",
        op.symbol(),
        if quantifier == Any { "ANY" } else { "ALL" },
        op.symbol(),
        agg.name(),
    ));
    inner.select = vec![SelectItem::new(ScalarExpr::Aggregate(agg, AggArg::Column(col)))];
    inner.distinct = false;
    Predicate::Compare { left, op, right: Operand::Subquery(Box::new(inner)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::{parse_query, print_predicate};

    fn rewrite_where(src: &str) -> String {
        let q = parse_query(src).unwrap();
        let mut trace = Vec::new();
        print_predicate(&rewrite_extended(q.where_clause.unwrap(), &mut trace))
    }

    #[test]
    fn exists_becomes_count() {
        assert_eq!(
            rewrite_where("SELECT A FROM T WHERE EXISTS (SELECT B FROM U WHERE U.B = T.A)"),
            "0 < (SELECT COUNT(*) FROM U WHERE U.B = T.A)"
        );
    }

    #[test]
    fn not_exists_becomes_zero_count() {
        assert_eq!(
            rewrite_where("SELECT A FROM T WHERE NOT EXISTS (SELECT B FROM U WHERE U.B = T.A)"),
            "0 = (SELECT COUNT(*) FROM U WHERE U.B = T.A)"
        );
    }

    #[test]
    fn any_all_table_of_rewrites() {
        for (src, expect) in [
            ("A < ANY (SELECT B FROM U)", "A < (SELECT MAX(B) FROM U)"),
            ("A <= ANY (SELECT B FROM U)", "A <= (SELECT MAX(B) FROM U)"),
            ("A < ALL (SELECT B FROM U)", "A < (SELECT MIN(B) FROM U)"),
            ("A <= ALL (SELECT B FROM U)", "A <= (SELECT MIN(B) FROM U)"),
            ("A > ANY (SELECT B FROM U)", "A > (SELECT MIN(B) FROM U)"),
            ("A >= ANY (SELECT B FROM U)", "A >= (SELECT MIN(B) FROM U)"),
            ("A > ALL (SELECT B FROM U)", "A > (SELECT MAX(B) FROM U)"),
            ("A >= ALL (SELECT B FROM U)", "A >= (SELECT MAX(B) FROM U)"),
            ("A = ANY (SELECT B FROM U)", "A IN (SELECT B FROM U)"),
            ("A != ALL (SELECT B FROM U)", "A NOT IN (SELECT B FROM U)"),
        ] {
            assert_eq!(
                rewrite_where(&format!("SELECT A FROM T WHERE {src}")),
                expect,
                "for {src}"
            );
        }
    }

    #[test]
    fn unrewritable_quantifiers_left_alone() {
        assert_eq!(
            rewrite_where("SELECT A FROM T WHERE A = ALL (SELECT B FROM U)"),
            "A = ALL (SELECT B FROM U)"
        );
        assert_eq!(
            rewrite_where("SELECT A FROM T WHERE A != ANY (SELECT B FROM U)"),
            "A != ANY (SELECT B FROM U)"
        );
    }

    #[test]
    fn quantifier_over_aggregate_subquery_drops_quantifier() {
        assert_eq!(
            rewrite_where("SELECT A FROM T WHERE A < ANY (SELECT MAX(B) FROM U)"),
            "A < (SELECT MAX(B) FROM U)"
        );
    }

    #[test]
    fn rewrites_inside_and_or_not() {
        assert_eq!(
            rewrite_where(
                "SELECT A FROM T WHERE A = 1 AND (EXISTS (SELECT B FROM U) OR A = 2)"
            ),
            "A = 1 AND (0 < (SELECT COUNT(*) FROM U) OR A = 2)"
        );
    }

    #[test]
    fn exists_with_double_negation() {
        assert_eq!(
            rewrite_where("SELECT A FROM T WHERE NOT (EXISTS (SELECT B FROM U))"),
            "NOT (0 < (SELECT COUNT(*) FROM U))"
        );
    }
}
