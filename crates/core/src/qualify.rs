//! Full qualification of column references.
//!
//! Before transformation, every column reference is rewritten to carry the
//! effective name of the FROM entry it binds to (nearest enclosing scope
//! wins, per SQL). After this pass the transformation algorithms can detect
//! correlation, move predicates between blocks, and rename tables purely
//! syntactically — no further schema lookups needed.

use crate::error::TransformError;
use crate::Result;
use nsql_analyzer::resolve::{block_schema, SchemaSource};
use nsql_analyzer::AnalyzeError;
use nsql_sql::{AggArg, ColumnRef, InRhs, Operand, Predicate, QueryBlock, ScalarExpr};
use nsql_types::Schema;

/// Qualify every column reference in `q` (including nested blocks) with the
/// effective name of its binding FROM entry.
pub fn qualify_query<S: SchemaSource>(catalog: &S, q: &mut QueryBlock) -> Result<()> {
    qualify_block(catalog, q, &[])
}

fn qualify_block<S: SchemaSource>(
    catalog: &S,
    q: &mut QueryBlock,
    outer_scopes: &[Schema],
) -> Result<()> {
    let local = block_schema(catalog, q)?;
    let mut scopes: Vec<Schema> = Vec::with_capacity(outer_scopes.len() + 1);
    scopes.push(local);
    scopes.extend_from_slice(outer_scopes);

    // Qualify level refs.
    for item in &mut q.select {
        match &mut item.expr {
            ScalarExpr::Column(c) => qualify_ref(&scopes, c)?,
            ScalarExpr::Aggregate(_, AggArg::Column(c)) => qualify_ref(&scopes, c)?,
            _ => {}
        }
    }
    for c in &mut q.group_by {
        qualify_ref(&scopes, c)?;
    }
    for k in &mut q.order_by {
        // ORDER BY may reference select aliases; only qualify when it
        // resolves as a scope column.
        let _ = qualify_ref(&scopes, &mut k.column);
    }
    if let Some(p) = &mut q.where_clause {
        qualify_pred(catalog, p, &scopes)?;
    }
    Ok(())
}

fn qualify_pred<S: SchemaSource>(
    catalog: &S,
    p: &mut Predicate,
    scopes: &[Schema],
) -> Result<()> {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                qualify_pred(catalog, q, scopes)?;
            }
        }
        Predicate::Not(q) => qualify_pred(catalog, q, scopes)?,
        Predicate::Compare { left, op: _, right } => {
            qualify_operand(catalog, left, scopes)?;
            qualify_operand(catalog, right, scopes)?;
        }
        Predicate::In { operand, rhs, .. } => {
            qualify_operand(catalog, operand, scopes)?;
            if let InRhs::Subquery(q) = rhs {
                qualify_block(catalog, q, scopes)?;
            }
        }
        Predicate::Exists { query, .. } => qualify_block(catalog, query, scopes)?,
        Predicate::Quantified { left, query, .. } => {
            qualify_operand(catalog, left, scopes)?;
            qualify_block(catalog, query, scopes)?;
        }
        Predicate::IsNull { operand, .. } => qualify_operand(catalog, operand, scopes)?,
    }
    Ok(())
}

fn qualify_operand<S: SchemaSource>(
    catalog: &S,
    o: &mut Operand,
    scopes: &[Schema],
) -> Result<()> {
    match o {
        Operand::Column(c) => qualify_ref(scopes, c),
        Operand::Literal(_) => Ok(()),
        Operand::Subquery(q) => qualify_block(catalog, q, scopes),
    }
}

fn qualify_ref(scopes: &[Schema], c: &mut ColumnRef) -> Result<()> {
    for scope in scopes {
        match scope.resolve(c.table.as_deref(), &c.column) {
            Ok(idx) => {
                let col = &scope.columns()[idx];
                c.table = col.table.clone();
                return Ok(());
            }
            Err(nsql_types::TypeError::AmbiguousColumn(n)) => {
                return Err(TransformError::Analyze(AnalyzeError::AmbiguousColumn(n)))
            }
            Err(_) => continue,
        }
    }
    Err(TransformError::Analyze(AnalyzeError::UnresolvedColumn(c.to_string())))
}

/// Rename every reference to table `old` into `new` within `q`'s level and
/// descend into subqueries, stopping at any block whose FROM re-introduces
/// the name `old` (that block's references bind to its own table).
pub fn rename_table_refs(q: &mut QueryBlock, old: &str, new: &str) {
    for t in &mut q.from {
        if t.effective_name() == old {
            // The caller renames the FROM entry itself; references here
            // would bind to the local entry, so do not descend.
            return;
        }
    }
    for item in &mut q.select {
        match &mut item.expr {
            ScalarExpr::Column(c) => rename_ref(c, old, new),
            ScalarExpr::Aggregate(_, AggArg::Column(c)) => rename_ref(c, old, new),
            _ => {}
        }
    }
    for c in &mut q.group_by {
        rename_ref(c, old, new);
    }
    for k in &mut q.order_by {
        rename_ref(&mut k.column, old, new);
    }
    if let Some(p) = &mut q.where_clause {
        rename_pred(p, old, new);
    }
}

fn rename_pred(p: &mut Predicate, old: &str, new: &str) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                rename_pred(q, old, new);
            }
        }
        Predicate::Not(q) => rename_pred(q, old, new),
        Predicate::Compare { left, right, .. } => {
            rename_operand(left, old, new);
            rename_operand(right, old, new);
        }
        Predicate::In { operand, rhs, .. } => {
            rename_operand(operand, old, new);
            if let InRhs::Subquery(q) = rhs {
                rename_table_refs(q, old, new);
            }
        }
        Predicate::Exists { query, .. } => rename_table_refs(query, old, new),
        Predicate::Quantified { left, query, .. } => {
            rename_operand(left, old, new);
            rename_table_refs(query, old, new);
        }
        Predicate::IsNull { operand, .. } => rename_operand(operand, old, new),
    }
}

fn rename_operand(o: &mut Operand, old: &str, new: &str) {
    match o {
        Operand::Column(c) => rename_ref(c, old, new),
        Operand::Literal(_) => {}
        Operand::Subquery(q) => rename_table_refs(q, old, new),
    }
}

fn rename_ref(c: &mut ColumnRef, old: &str, new: &str) {
    if c.table.as_deref() == Some(old) {
        c.table = Some(new.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::{parse_query, print_query};
    use nsql_types::ColumnType;
    use std::collections::HashMap;

    struct Cat(HashMap<String, Schema>);

    impl SchemaSource for Cat {
        fn table_schema(&self, t: &str) -> Option<Schema> {
            self.0.get(&t.to_ascii_uppercase()).cloned()
        }
    }

    fn catalog() -> Cat {
        use ColumnType::*;
        let mut m = HashMap::new();
        m.insert(
            "PARTS".into(),
            Schema::of_table("PARTS", &[("PNUM", Int), ("QOH", Int)]),
        );
        m.insert(
            "SUPPLY".into(),
            Schema::of_table(
                "SUPPLY",
                &[("PNUM", Int), ("QUAN", Int), ("SHIPDATE", ColumnType::Date)],
            ),
        );
        Cat(m)
    }

    #[test]
    fn qualifies_bare_refs_to_binding_table() {
        let cat = catalog();
        let mut q = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH = \
             (SELECT COUNT(SHIPDATE) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        )
        .unwrap();
        qualify_query(&cat, &mut q).unwrap();
        let printed = print_query(&q);
        assert!(printed.starts_with("SELECT PARTS.PNUM FROM PARTS WHERE PARTS.QOH ="), "{printed}");
        assert!(printed.contains("COUNT(SUPPLY.SHIPDATE)"), "{printed}");
        assert!(printed.contains("SUPPLY.SHIPDATE < DATE '1980-01-01'"), "{printed}");
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let cat = catalog();
        // Bare PNUM in the inner block binds to SUPPLY (local), not PARTS.
        let mut q = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE PNUM = 3)",
        )
        .unwrap();
        qualify_query(&cat, &mut q).unwrap();
        let printed = print_query(&q);
        assert!(printed.contains("SUPPLY.PNUM = 3"), "{printed}");
    }

    #[test]
    fn alias_becomes_qualifier() {
        let cat = catalog();
        let mut q = parse_query("SELECT X.PNUM FROM PARTS X WHERE QOH > 1").unwrap();
        qualify_query(&cat, &mut q).unwrap();
        assert_eq!(print_query(&q), "SELECT X.PNUM FROM PARTS X WHERE X.QOH > 1");
    }

    #[test]
    fn unresolved_ref_errors() {
        let cat = catalog();
        let mut q = parse_query("SELECT NOPE FROM PARTS").unwrap();
        assert!(qualify_query(&cat, &mut q).is_err());
    }

    #[test]
    fn rename_stops_at_shadowing_block() {
        let cat = catalog();
        let mut q = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH IN \
             (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN IN \
                (SELECT QUAN FROM SUPPLY X WHERE X.PNUM = SUPPLY.PNUM))",
        )
        .unwrap();
        qualify_query(&cat, &mut q).unwrap();
        // Rename SUPPLY→SUPPLY_1 from the *outer* level: the middle block
        // owns SUPPLY, so nothing below it may change.
        rename_table_refs(&mut q, "SUPPLY", "S_1");
        let printed = print_query(&q);
        assert!(printed.contains("SUPPLY.PNUM = PARTS.PNUM"), "{printed}");
    }
}
