//! Transformation errors.

use nsql_analyzer::AnalyzeError;
use std::fmt;

/// Failures while transforming a nested query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// Semantic analysis failed (unknown table/column, ambiguity, …).
    Analyze(AnalyzeError),
    /// The query is outside the class the algorithms handle (with a reason).
    Unsupported(String),
    /// Internal invariant violation — always a transformation bug.
    Internal(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Analyze(e) => write!(f, "{e}"),
            TransformError::Unsupported(m) => write!(f, "unsupported for transformation: {m}"),
            TransformError::Internal(m) => write!(f, "internal transform error: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<AnalyzeError> for TransformError {
    fn from(e: AnalyzeError) -> Self {
        TransformError::Analyze(e)
    }
}
