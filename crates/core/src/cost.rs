//! The paper's analytical page-I/O cost model (Section 7), plus the
//! Kim-style baselines it compares against.
//!
//! Notation follows [KIM 82:462] as the paper restates it: `Ri` is the
//! outer relation, `Rj` the inner, `Rt` the aggregate temporary; `Pk` is
//! the page count of `Rk`, `Nk` its tuple count; `f(i)` the fraction of
//! `Ri` tuples satisfying the simple predicates on `Ri`; `B` the buffer
//! size in pages. Sorting a `P`-page relation with a (B−1)-way merge sort
//! costs `2·P·log_{B-1}(P)` page I/Os.
//!
//! The logarithm is **continuous** (not ceiled): the Section-7.4 worked
//! example (Pi=50, Pj=30, Pt2=7, Pt3=10, Pt4=8, Pt=5, B=6) only reproduces
//! the paper's "about 475" figure with real-valued logs — with ceiling the
//! total is 558. See `EXPERIMENTS.md` (E2).

/// Sort cost: `2·P·log_{B-1}(P)`, 0 for relations of at most one page.
///
/// The `pages <= 1` guard is written as `!(pages > 1.0)` so a NaN page
/// estimate (degenerate statistics) also short-circuits to 0 instead of
/// propagating NaN into a strategy comparison.
pub fn sort_cost(pages: f64, buffer: f64) -> f64 {
    if !(pages > 1.0) {
        return 0.0;
    }
    let base = (buffer - 1.0).max(2.0);
    2.0 * pages * pages.log(base)
}

/// `a / b` with degenerate denominators guarded: a zero-row or zero-page
/// statistic yields 0 instead of `inf`/NaN, so downstream comparisons stay
/// well-ordered.
pub fn safe_div(a: f64, b: f64) -> f64 {
    if b > 0.0 && a.is_finite() {
        a / b
    } else {
        0.0
    }
}

/// Clamp a predicted cost into the comparable range: NaN and negative
/// estimates (both only reachable from degenerate statistics) become
/// `+inf`, so they can never *win* a `<` comparison by accident — NaN
/// compares false against everything, which would otherwise silently keep
/// whichever plan happened to be the running minimum.
pub fn sanitize_cost(c: f64) -> f64 {
    if c.is_nan() || c < 0.0 {
        f64::INFINITY
    } else {
        c
    }
}

/// Join method at one of the two NEST-JA2 joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    /// Nested loops (cheap iff the inner fits in `B−1` buffer pages).
    NestedLoop,
    /// Sort-merge.
    MergeJoin,
}

impl JoinMethod {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            JoinMethod::NestedLoop => "nested-loop",
            JoinMethod::MergeJoin => "merge-join",
        }
    }
}

/// Parameters of a single-level type-JA query, Section 7.4.
#[derive(Debug, Clone, Copy)]
pub struct Ja2Params {
    /// Pages of the outer relation `Ri`.
    pub pi: f64,
    /// Pages of the inner relation `Rj`.
    pub pj: f64,
    /// Pages of `Rt2` (projected/restricted outer join column).
    pub pt2: f64,
    /// Tuples in `Rt2`.
    pub nt2: f64,
    /// Pages of `Rt3` (projected/restricted inner relation).
    pub pt3: f64,
    /// Pages of `Rt4` (join result before GROUP BY).
    pub pt4: f64,
    /// Pages of `Rt` (the aggregate temporary).
    pub pt: f64,
    /// Buffer pages `B`.
    pub b: f64,
    /// `f(i)·Ni`: outer tuples satisfying the simple predicates.
    pub fi_ni: f64,
    /// Whether `Ri` arrives sorted on the join column (the final merge
    /// join then skips its sort).
    pub ri_sorted: bool,
}

impl Ja2Params {
    /// The Section-7.4 worked example.
    pub fn paper_example() -> Ja2Params {
        Ja2Params {
            pi: 50.0,
            pj: 30.0,
            pt2: 7.0,
            nt2: 100.0,
            pt3: 10.0,
            pt4: 8.0,
            pt: 5.0,
            b: 6.0,
            fi_ni: 100.0,
            ri_sorted: false,
        }
    }
}

/// Cost breakdown of NEST-JA2 (Section 7.4).
#[derive(Debug, Clone, Copy)]
pub struct Ja2Cost {
    /// Step 1: project + restrict `Ri` → `Rt2` (sorted, duplicates gone).
    pub outer_projection: f64,
    /// Step 2: build `Rt3`, join with `Rt2`, GROUP BY → `Rt`.
    pub temp_creation: f64,
    /// Step 3: join `Rt` with `Ri`.
    pub final_join: f64,
}

impl Ja2Cost {
    /// Total page I/Os.
    pub fn total(&self) -> f64 {
        self.outer_projection + self.temp_creation + self.final_join
    }
}

/// Cost of NEST-JA2 with the given join methods at the temporary-creation
/// join (`m_temp`) and the final join (`m_final`) — the "four possible
/// total costs" of Section 7.4.
pub fn ja2_cost(p: &Ja2Params, m_temp: JoinMethod, m_final: JoinMethod) -> Ja2Cost {
    // Step 1 (§7.1): read Ri, write Rt2, sort it removing duplicates.
    let outer_projection = p.pi + p.pt2 + sort_cost(p.pt2, p.b);

    // Step 2 (§7.2): create Rt3 (read Rj, write Rt3), join with Rt2, GROUP
    // BY into Rt.
    let temp_creation = match m_temp {
        JoinMethod::NestedLoop => {
            let join = if p.pt3 <= p.b - 1.0 {
                // Rt3 cached: read Rt2 once, write Rt4.
                p.pj + p.pt3 + p.pt2 + p.pt3 + p.pt4
            } else {
                // Rt3 re-read once per Rt2 tuple.
                p.pj + p.pt3 + p.pt2 + p.nt2 * p.pt3 + p.pt4
            };
            // Rt4 from nested loops is unsorted: sort it for GROUP BY,
            // then read it and write Rt.
            join + sort_cost(p.pt4, p.b) + p.pt4 + p.pt
        }
        JoinMethod::MergeJoin => {
            // Build Rt3 and sort it (Rt2 is already in join-column order);
            // merge join writes Rt4 in GROUP BY order, so the GROUP BY is a
            // single pass: read Rt4, write Rt.
            p.pj + p.pt3 + sort_cost(p.pt3, p.b) + p.pt2 + p.pt3 + 2.0 * p.pt4 + p.pt
        }
    };

    // Step 3 (§7.3): join Rt with Ri. Rt is already in join-column order.
    let final_join = match m_final {
        JoinMethod::MergeJoin => {
            let sort_ri = if p.ri_sorted { 0.0 } else { sort_cost(p.pi, p.b) };
            sort_ri + p.pi + p.pt
        }
        JoinMethod::NestedLoop => {
            if p.pt <= p.b - 1.0 {
                p.pi + p.pt
            } else {
                p.pi + p.fi_ni * p.pt
            }
        }
    };
    Ja2Cost { outer_projection, temp_creation, final_join }
}

/// Worst-case nested-iteration cost of a type-J / type-JA query
/// (Section 7.4 / [KIM 82]): read `Ri` once and `Rj` once per qualifying
/// outer tuple. When `Rj` fits in the buffer the rescans are free.
pub fn nested_iteration_cost_j(pi: f64, pj: f64, b: f64, fi_ni: f64) -> f64 {
    if pj <= b - 1.0 {
        pi + pj
    } else {
        pi + fi_ni * pj
    }
}

/// System R cost of a type-N query: evaluate the inner block once into a
/// stored list `X` (read `Rj`, write `Px`), then scan `Ri` testing
/// membership against `X` — rescanning `X` per outer tuple when it exceeds
/// the buffer.
pub fn nested_iteration_cost_n(pi: f64, pj: f64, px: f64, b: f64, ni: f64) -> f64 {
    let membership = if px <= b - 1.0 { px } else { ni * px };
    pj + px + pi + membership
}

/// Cost of the canonical (transformed) two-relation query evaluated with a
/// merge join: sort both sides, scan both.
pub fn transformed_merge_join_cost(pi: f64, pj: f64, b: f64) -> f64 {
    sort_cost(pi, b) + sort_cost(pj, b) + pi + pj
}

// --------------------------------------------- batched correlated evaluation

/// Parameters for the batched-evaluation cost formula
/// ([`batched_cost`]) — the Guravannavar-style third strategy.
#[derive(Debug, Clone, Copy)]
pub struct BatchedParams {
    /// Pages of the outer relation `Ri`.
    pub pi: f64,
    /// Pages of the materialized binding temporary (the correlation
    /// columns of the qualifying outer tuples, before dedup).
    pub p_bind: f64,
    /// Distinct correlation bindings `d` (≤ `fi·Ni`).
    pub d: f64,
    /// Pages of the inner relation `Rj`.
    pub pj: f64,
    /// Buffer pages `B`.
    pub b: f64,
}

/// Page-I/O cost of batched correlated evaluation: scan `Ri` once, write
/// the binding temporary, sort/dedup it with the (B−1)-way external sort,
/// read the sorted bindings back, then evaluate the inner block once per
/// *distinct* binding — `Rj` is rescanned per binding unless it fits in
/// the buffer, exactly the cliff [`nested_iteration_cost_j`] models, but
/// with `d` in place of `fi·Ni`. On duplicate-heavy outers `d ≪ fi·Ni`
/// and the sort pays for itself.
pub fn batched_cost(p: &BatchedParams) -> f64 {
    let inner = if p.pj <= p.b - 1.0 { p.pj } else { p.d * p.pj };
    sanitize_cost(p.pi + 2.0 * p.p_bind + sort_cost(p.p_bind, p.b) + inner)
}

/// The three executable strategies the planner compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// System R nested iteration.
    NestedIteration,
    /// Full decorrelation (NEST-G transformation, then the flat plan).
    Transform,
    /// Batched correlated evaluation over sorted/deduped bindings.
    Batched,
}

impl StrategyKind {
    /// Display name used in EXPLAIN output.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NestedIteration => "nested-iteration",
            StrategyKind::Transform => "transform",
            StrategyKind::Batched => "batched",
        }
    }
}

/// Predicted page-I/O cost of each executable strategy on one correlated
/// query, all three [`sanitize_cost`]-guarded so NaN can never mis-rank.
#[derive(Debug, Clone, Copy)]
pub struct StrategyCosts {
    /// Worst-case nested iteration ([`nested_iteration_cost_j`]).
    pub nested_iteration: f64,
    /// Cheapest NEST-JA2 method combination ([`ja2_cost`]), or the
    /// merge-join canonical cost for non-JA shapes.
    pub transform: f64,
    /// Batched correlated evaluation ([`batched_cost`]).
    pub batched: f64,
}

impl StrategyCosts {
    /// The planner's pick: strict argmin over the sanitized costs. Ties
    /// break in a pinned order — **transform ≺ batched ≺ nested
    /// iteration** — so equal predictions keep the paper's headline
    /// strategy and plans stay deterministic across platforms.
    pub fn pick(&self) -> StrategyKind {
        let ranked = [
            (StrategyKind::Transform, sanitize_cost(self.transform)),
            (StrategyKind::Batched, sanitize_cost(self.batched)),
            (StrategyKind::NestedIteration, sanitize_cost(self.nested_iteration)),
        ];
        let mut best = ranked[0];
        for cand in &ranked[1..] {
            if cand.1 < best.1 {
                best = *cand;
            }
        }
        best.0
    }

    /// Cost of one strategy, sanitized.
    pub fn of(&self, kind: StrategyKind) -> f64 {
        sanitize_cost(match kind {
            StrategyKind::NestedIteration => self.nested_iteration,
            StrategyKind::Transform => self.transform,
            StrategyKind::Batched => self.batched,
        })
    }
}

// ------------------------------------------------------- index access paths
//
// The 1987 model prices only scans and sorts because its System R substrate
// exposed no secondary index to the transformed plans. With a B+tree on a
// column, two of NEST-JA2's steps gain a third method:
//
// * the **outer-column restriction** (§7.1's read of `Ri` under the simple
//   predicates) can probe the index instead of scanning all `Pi` pages;
// * the **back-join** of `Rt` with `Ri` (§7.3) can, instead of sorting
//   `Ri`, probe `Ri`'s index once per `Rt` tuple.
//
// Both formulas follow the same shape as the paper's: counts of page
// fetches from relation statistics, no constant factors.

/// Page fetches for one index range restriction: descend `height` internal
/// pages, then read the `selectivity` fraction of the `leaf_pages` leaves
/// (at least one when anything matches).
pub fn index_restrict_cost(height: f64, leaf_pages: f64, selectivity: f64) -> f64 {
    let leaves = (leaf_pages * selectivity.clamp(0.0, 1.0)).ceil().max(1.0);
    height + leaves.min(leaf_pages.max(1.0))
}

/// Page fetches for an index nested-loop join: read the `p_outer` pages of
/// the outer relation, and for each of its `n_outer` tuples descend the
/// inner index (`height` internal pages) and fetch the leaves holding the
/// matches (`leaves_per_probe`, ≥ 1). Repeated probes of a hot root are
/// still charged — the model, like the paper's, assumes the worst-case
/// cold buffer for each probe.
pub fn index_nested_join_cost(
    p_outer: f64,
    n_outer: f64,
    height: f64,
    leaves_per_probe: f64,
) -> f64 {
    p_outer + n_outer * (height + leaves_per_probe.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_cost_matches_formula() {
        // 2·P·log_{B-1}(P) with B=6 → base 5.
        let c = sort_cost(50.0, 6.0);
        assert!((c - 2.0 * 50.0 * 50.0_f64.log(5.0)).abs() < 1e-9);
        assert_eq!(sort_cost(1.0, 6.0), 0.0);
        assert_eq!(sort_cost(0.0, 6.0), 0.0);
    }

    #[test]
    fn paper_example_nested_iteration_is_3050() {
        // §7.4: "The nested iteration method of processing Q3 costs 3050
        // page fetches in the worst case."
        let p = Ja2Params::paper_example();
        assert_eq!(nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni), 3050.0);
    }

    #[test]
    fn paper_example_two_merge_joins_is_about_475() {
        // §7.4: "The transformation approach, using the modified algorithm
        // and two merge joins, costs about 475 page fetches."
        let p = Ja2Params::paper_example();
        let c = ja2_cost(&p, JoinMethod::MergeJoin, JoinMethod::MergeJoin);
        let total = c.total();
        assert!(
            (445.0..=510.0).contains(&total),
            "expected ≈475 page I/Os, got {total:.1} \
             (breakdown: {:.1} + {:.1} + {:.1})",
            c.outer_projection,
            c.temp_creation,
            c.final_join
        );
    }

    #[test]
    fn four_variants_are_all_below_nested_iteration() {
        let p = Ja2Params::paper_example();
        let ni = nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni);
        for m1 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
            for m2 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
                let c = ja2_cost(&p, m1, m2).total();
                assert!(
                    c < ni,
                    "{}/{} cost {c:.0} should beat nested iteration {ni:.0}",
                    m1.name(),
                    m2.name()
                );
            }
        }
    }

    #[test]
    fn nl_final_join_cliff_at_buffer_size() {
        let mut p = Ja2Params::paper_example();
        p.pt = 5.0; // fits in B-1 = 5
        let cheap = ja2_cost(&p, JoinMethod::MergeJoin, JoinMethod::NestedLoop).final_join;
        assert_eq!(cheap, p.pi + p.pt);
        p.pt = 6.0; // no longer fits
        let dear = ja2_cost(&p, JoinMethod::MergeJoin, JoinMethod::NestedLoop).final_join;
        assert_eq!(dear, p.pi + p.fi_ni * p.pt);
    }

    #[test]
    fn type_n_cost_cliff_at_buffer() {
        // Small X: cheap. Large X: per-tuple rescans dominate.
        let cheap = nested_iteration_cost_n(100.0, 100.0, 4.0, 6.0, 1000.0);
        assert_eq!(cheap, 100.0 + 100.0 + 4.0 + 4.0);
        let dear = nested_iteration_cost_n(100.0, 100.0, 10.0, 6.0, 1000.0);
        assert_eq!(dear, 100.0 + 10.0 + 100.0 + 10_000.0);
    }

    #[test]
    fn index_backjoin_beats_merge_when_rt_is_tiny() {
        // §7.3 with an index on Ri's join column: a 5-tuple Rt probing a
        // height-2 index costs 5·3+Pt fetches, far below sorting a 50-page
        // Ri for the merge join.
        let p = Ja2Params::paper_example();
        let merge_final = ja2_cost(&p, JoinMethod::MergeJoin, JoinMethod::MergeJoin).final_join;
        let ix_final = index_nested_join_cost(p.pt, 5.0, 2.0, 1.0);
        assert!(
            ix_final < merge_final,
            "index back-join {ix_final:.0} should beat merge {merge_final:.0}"
        );
        // ...but not when Rt carries thousands of probes.
        let ix_many = index_nested_join_cost(p.pt, 5000.0, 2.0, 1.0);
        assert!(ix_many > merge_final);
    }

    #[test]
    fn index_restrict_is_bounded_by_full_scan_shape() {
        // A selective predicate touches few leaves; selectivity 1 touches
        // them all (plus the descent).
        assert_eq!(index_restrict_cost(2.0, 100.0, 0.01), 3.0);
        assert_eq!(index_restrict_cost(2.0, 100.0, 1.0), 102.0);
        // Never less than one leaf even for vanishing selectivity.
        assert_eq!(index_restrict_cost(3.0, 50.0, 0.0), 4.0);
    }

    #[test]
    fn degenerate_statistics_never_produce_nan_or_inf() {
        // Zero-row / zero-page statistics (empty tables, empty temps) and
        // NaN estimates must stay finite through every formula a strategy
        // comparison consumes.
        assert_eq!(sort_cost(0.0, 6.0), 0.0);
        assert_eq!(sort_cost(f64::NAN, 6.0), 0.0);
        assert_eq!(sort_cost(5.0, f64::NAN), 2.0 * 5.0 * 5.0_f64.log(2.0));
        assert_eq!(safe_div(10.0, 0.0), 0.0);
        assert_eq!(safe_div(f64::NAN, 5.0), 0.0);
        assert_eq!(safe_div(10.0, f64::NAN), 0.0);
        let p = Ja2Params {
            pi: 0.0,
            pj: 0.0,
            pt2: 0.0,
            nt2: 0.0,
            pt3: 0.0,
            pt4: 0.0,
            pt: 0.0,
            b: 6.0,
            fi_ni: 0.0,
            ri_sorted: false,
        };
        for m1 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
            for m2 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
                assert!(ja2_cost(&p, m1, m2).total().is_finite());
            }
        }
        assert!(nested_iteration_cost_j(0.0, 0.0, 6.0, 0.0).is_finite());
        let empty = BatchedParams { pi: 0.0, p_bind: 0.0, d: 0.0, pj: 0.0, b: 6.0 };
        assert_eq!(batched_cost(&empty), 0.0);
    }

    #[test]
    fn nan_costs_are_sanitized_and_never_picked() {
        assert_eq!(sanitize_cost(f64::NAN), f64::INFINITY);
        assert_eq!(sanitize_cost(-3.0), f64::INFINITY);
        assert_eq!(sanitize_cost(7.5), 7.5);
        // A NaN entry must lose to any finite cost, whatever its position.
        let c = StrategyCosts { nested_iteration: f64::NAN, transform: f64::NAN, batched: 9.0 };
        assert_eq!(c.pick(), StrategyKind::Batched);
        let c = StrategyCosts { nested_iteration: 4.0, transform: f64::NAN, batched: f64::NAN };
        assert_eq!(c.pick(), StrategyKind::NestedIteration);
        // All-NaN degenerates to the tie-break head, not to an arbitrary
        // NaN-comparison artifact.
        let c = StrategyCosts {
            nested_iteration: f64::NAN,
            transform: f64::NAN,
            batched: f64::NAN,
        };
        assert_eq!(c.pick(), StrategyKind::Transform);
    }

    #[test]
    fn equal_costs_tie_break_in_pinned_order() {
        // transform ≺ batched ≺ nested iteration, pairwise and three-way.
        let c = StrategyCosts { nested_iteration: 10.0, transform: 10.0, batched: 10.0 };
        assert_eq!(c.pick(), StrategyKind::Transform);
        let c = StrategyCosts { nested_iteration: 10.0, transform: 20.0, batched: 10.0 };
        assert_eq!(c.pick(), StrategyKind::Batched);
        let c = StrategyCosts { nested_iteration: 10.0, transform: 10.0, batched: 20.0 };
        assert_eq!(c.pick(), StrategyKind::Transform);
        // Strict improvement still wins over the tie-break order.
        let c = StrategyCosts { nested_iteration: 5.0, transform: 10.0, batched: 7.0 };
        assert_eq!(c.pick(), StrategyKind::NestedIteration);
    }

    #[test]
    fn batched_wins_on_duplicate_heavy_outers() {
        // Paper-example scale, but the outer's correlation column has only
        // 4 distinct values among 100 qualifying tuples: batched pays one
        // small sort and 4 inner scans where nested iteration pays 100 and
        // NEST-JA2 pays its temp-building joins.
        let p = Ja2Params::paper_example();
        let ni = nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni);
        let tr = ja2_cost(&p, JoinMethod::MergeJoin, JoinMethod::MergeJoin).total();
        let bp = BatchedParams { pi: p.pi, p_bind: 2.0, d: 4.0, pj: p.pj, b: p.b };
        let batched = batched_cost(&bp);
        let costs =
            StrategyCosts { nested_iteration: ni, transform: tr, batched };
        assert!(batched < tr && batched < ni, "batched {batched:.0} vs tr {tr:.0} / ni {ni:.0}");
        assert_eq!(costs.pick(), StrategyKind::Batched);
    }

    #[test]
    fn transformed_cost_is_orders_cheaper_on_kim_scale() {
        // Kim's 80–95% savings claim, on a Kim-scale configuration.
        let ni = nested_iteration_cost_n(100.0, 100.0, 10.0, 6.0, 1000.0);
        let tr = transformed_merge_join_cost(100.0, 100.0, 6.0);
        let savings = 1.0 - tr / ni;
        assert!(savings > 0.80, "savings {savings:.2} below the paper's 80% band");
    }
}
