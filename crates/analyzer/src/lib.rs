#![warn(missing_docs)]

//! Semantic analysis: name resolution, correlation discovery, and Kim's
//! nesting-type classification.
//!
//! Section 2 of the paper defines four kinds of nested predicate, all
//! distinguished by two properties of the *inner* query block:
//!
//! | | no correlated join predicate | correlated join predicate |
//! |---|---|---|
//! | **SELECT has no aggregate** | type-N | type-J |
//! | **SELECT is an aggregate** | type-A | type-JA |
//!
//! where a *correlated join predicate* is a predicate in the inner WHERE
//! clause referencing a relation that is not in the inner FROM clause
//! (necessarily a relation of some outer block). The recursive `nest_g`
//! driver in `nsql-core` re-classifies blocks after each child is merged, so
//! classification looks only at one block at a time — exactly the property
//! Section 9 highlights ("the information needed … is confined to two levels
//! of the query").

pub mod classify;
pub mod error;
pub mod normalize;
pub mod resolve;
pub mod tree;

pub use classify::{classify_inner, NestingType};
pub use error::AnalyzeError;
pub use normalize::{normalized_block_signature, query_fingerprint};
pub use resolve::{block_schema, outer_column_refs, validate_query, Resolver, SchemaSource};
pub use tree::{query_tree, QueryTree};

/// Result alias for analysis.
pub type Result<T> = std::result::Result<T, AnalyzeError>;
