//! Name resolution and correlation discovery.

use crate::error::AnalyzeError;
use crate::Result;
use nsql_sql::{ColumnRef, InRhs, Operand, Predicate, QueryBlock, ScalarExpr};
use nsql_types::Schema;

/// Source of table schemas (implemented by the catalog in `nsql-db`).
pub trait SchemaSource {
    /// Schema of `table`, if it exists. Column qualifiers in the returned
    /// schema are expected to equal `table`.
    fn table_schema(&self, table: &str) -> Option<Schema>;
}

impl<S: SchemaSource + ?Sized> SchemaSource for &S {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        (**self).table_schema(table)
    }
}

/// Build the combined scope schema of a block's FROM clause: each table's
/// schema re-qualified by its effective name (alias if present), then
/// concatenated left to right.
pub fn block_schema<S: SchemaSource>(catalog: &S, block: &QueryBlock) -> Result<Schema> {
    let mut names = std::collections::HashSet::new();
    let mut schema = Schema::default();
    for tref in &block.from {
        let name = tref.effective_name();
        if !names.insert(name.to_string()) {
            return Err(AnalyzeError::DuplicateTableName(name.to_string()));
        }
        let table = catalog
            .table_schema(&tref.table)
            .ok_or_else(|| AnalyzeError::UnknownTable(tref.table.clone()))?;
        schema = schema.join(&table.requalify(name));
    }
    Ok(schema)
}

/// A resolver for one query block given its enclosing scopes.
///
/// `scopes[0]` is the block's own scope; later entries are enclosing blocks
/// from innermost to outermost. SQL scoping rule: a reference binds to the
/// nearest scope that can resolve it.
pub struct Resolver {
    scopes: Vec<Schema>,
}

impl Resolver {
    /// Resolver over the given scope chain (innermost first).
    pub fn new(scopes: Vec<Schema>) -> Resolver {
        Resolver { scopes }
    }

    /// Resolver for a single block with no enclosing scopes.
    pub fn for_block<S: SchemaSource>(catalog: &S, block: &QueryBlock) -> Result<Resolver> {
        Ok(Resolver::new(vec![block_schema(catalog, block)?]))
    }

    /// Push an inner scope (returns a new resolver for a child block).
    pub fn child(&self, inner: Schema) -> Resolver {
        let mut scopes = Vec::with_capacity(self.scopes.len() + 1);
        scopes.push(inner);
        scopes.extend(self.scopes.iter().cloned());
        Resolver { scopes }
    }

    /// The scope depth at which `col` resolves: 0 = local, 1 = immediate
    /// outer, etc. Errors if it resolves nowhere or is ambiguous at the
    /// binding scope.
    pub fn binding_depth(&self, col: &ColumnRef) -> Result<usize> {
        for (depth, scope) in self.scopes.iter().enumerate() {
            match scope.resolve(col.table.as_deref(), &col.column) {
                Ok(_) => return Ok(depth),
                Err(nsql_types::TypeError::AmbiguousColumn(c)) => {
                    return Err(AnalyzeError::AmbiguousColumn(c))
                }
                Err(_) => continue,
            }
        }
        Err(AnalyzeError::UnresolvedColumn(col.to_string()))
    }

    /// Whether `col` resolves in the local (depth-0) scope.
    pub fn is_local(&self, col: &ColumnRef) -> Result<bool> {
        Ok(self.binding_depth(col)? == 0)
    }
}

/// Collect the column references appearing at *this block's level*: SELECT
/// items, GROUP BY / ORDER BY keys, and WHERE operands — but not inside
/// nested subquery blocks, which form their own scopes.
pub fn level_column_refs(block: &QueryBlock) -> Vec<&ColumnRef> {
    let mut out = Vec::new();
    for item in &block.select {
        match &item.expr {
            ScalarExpr::Column(c) => out.push(c),
            ScalarExpr::Aggregate(_, nsql_sql::AggArg::Column(c)) => out.push(c),
            _ => {}
        }
    }
    if let Some(p) = &block.where_clause {
        collect_pred_refs(p, &mut out);
    }
    out.extend(block.group_by.iter());
    out.extend(block.order_by.iter().map(|k| &k.column));
    out
}

/// Column references appearing in one predicate (this level only; nested
/// subquery blocks are *not* entered).
pub fn predicate_column_refs(p: &Predicate) -> Vec<&ColumnRef> {
    let mut out = Vec::new();
    collect_pred_refs(p, &mut out);
    out
}

fn collect_pred_refs<'a>(p: &'a Predicate, out: &mut Vec<&'a ColumnRef>) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                collect_pred_refs(q, out);
            }
        }
        Predicate::Not(q) => collect_pred_refs(q, out),
        Predicate::Compare { left, right, .. } => {
            collect_operand_refs(left, out);
            collect_operand_refs(right, out);
        }
        Predicate::In { operand, .. } => collect_operand_refs(operand, out),
        Predicate::Quantified { left, .. } => collect_operand_refs(left, out),
        Predicate::IsNull { operand, .. } => collect_operand_refs(operand, out),
        Predicate::Exists { .. } => {}
    }
}

fn collect_operand_refs<'a>(o: &'a Operand, out: &mut Vec<&'a ColumnRef>) {
    if let Operand::Column(c) = o {
        out.push(c);
    }
}

/// The column references at `block`'s level that do **not** resolve in the
/// block's own FROM scope — i.e. the correlated (outer) references. These
/// are what make a nested predicate type-J/JA rather than type-N/A.
pub fn outer_column_refs<S: SchemaSource>(
    catalog: &S,
    block: &QueryBlock,
) -> Result<Vec<ColumnRef>> {
    let local = block_schema(catalog, block)?;
    let mut out = Vec::new();
    for c in level_column_refs(block) {
        match local.resolve(c.table.as_deref(), &c.column) {
            Ok(_) => {}
            Err(nsql_types::TypeError::AmbiguousColumn(name)) => {
                return Err(AnalyzeError::AmbiguousColumn(name))
            }
            Err(_) => out.push(c.clone()),
        }
    }
    Ok(out)
}

/// Fully validate a query: every table exists, every column reference binds
/// in some scope, and aggregate arguments are local. Returns the block's
/// scope schema on success.
pub fn validate_query<S: SchemaSource>(catalog: &S, block: &QueryBlock) -> Result<Schema> {
    validate_block(catalog, block, &Resolver::new(Vec::new()))
}

fn validate_block<S: SchemaSource>(
    catalog: &S,
    block: &QueryBlock,
    outer: &Resolver,
) -> Result<Schema> {
    let local = block_schema(catalog, block)?;
    let resolver = outer.child(local.clone());
    for c in level_column_refs(block) {
        resolver.binding_depth(c)?;
    }
    if let Some(p) = &block.where_clause {
        validate_subqueries(catalog, p, &resolver)?;
    }
    Ok(local)
}

fn validate_subqueries<S: SchemaSource>(
    catalog: &S,
    p: &Predicate,
    resolver: &Resolver,
) -> Result<()> {
    let validate_inner = |q: &QueryBlock| -> Result<()> {
        let inner_schema = block_schema(catalog, q)?;
        let inner_resolver = resolver.child(inner_schema);
        for c in level_column_refs(q) {
            inner_resolver.binding_depth(c)?;
        }
        if let Some(wp) = &q.where_clause {
            validate_subqueries(catalog, wp, &inner_resolver)?;
        }
        Ok(())
    };
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                validate_subqueries(catalog, q, resolver)?;
            }
        }
        Predicate::Not(q) => validate_subqueries(catalog, q, resolver)?,
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    validate_inner(q)?;
                }
            }
        }
        Predicate::In { rhs: InRhs::Subquery(q), .. } => validate_inner(q)?,
        Predicate::In { .. } => {}
        Predicate::Exists { query, .. } => validate_inner(query)?,
        Predicate::Quantified { query, .. } => validate_inner(query)?,
        Predicate::IsNull { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_catalog {
    use super::SchemaSource;
    use nsql_types::{ColumnType, Schema};
    use std::collections::HashMap;

    /// The paper's two example databases as a schema-only catalog.
    pub struct PaperCatalog {
        tables: HashMap<String, Schema>,
    }

    impl PaperCatalog {
        pub fn new() -> PaperCatalog {
            use ColumnType::*;
            let mut tables = HashMap::new();
            tables.insert(
                "S".into(),
                Schema::of_table(
                    "S",
                    &[("SNO", Str), ("SNAME", Str), ("STATUS", Int), ("CITY", Str)],
                ),
            );
            tables.insert(
                "P".into(),
                Schema::of_table(
                    "P",
                    &[("PNO", Str), ("PNAME", Str), ("COLOR", Str), ("WEIGHT", Int), ("CITY", Str)],
                ),
            );
            tables.insert(
                "SP".into(),
                Schema::of_table(
                    "SP",
                    &[("SNO", Str), ("PNO", Str), ("QTY", Int), ("ORIGIN", Str)],
                ),
            );
            tables.insert(
                "PARTS".into(),
                Schema::of_table("PARTS", &[("PNUM", Int), ("QOH", Int)]),
            );
            tables.insert(
                "SUPPLY".into(),
                Schema::of_table(
                    "SUPPLY",
                    &[("PNUM", Int), ("QUAN", Int), ("SHIPDATE", ColumnType::Date)],
                ),
            );
            PaperCatalog { tables }
        }
    }

    impl SchemaSource for PaperCatalog {
        fn table_schema(&self, table: &str) -> Option<Schema> {
            self.tables.get(&table.to_ascii_uppercase()).cloned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_catalog::PaperCatalog;
    use super::*;
    use nsql_sql::parse_query;

    #[test]
    fn block_schema_concatenates_and_aliases() {
        let cat = PaperCatalog::new();
        let q = parse_query("SELECT X.SNO FROM SP X, P").unwrap();
        let s = block_schema(&cat, &q).unwrap();
        assert_eq!(s.arity(), 4 + 5);
        assert!(s.resolve(Some("X"), "QTY").is_ok());
        assert!(s.resolve(Some("SP"), "QTY").is_err(), "alias replaces table name");
    }

    #[test]
    fn duplicate_from_names_rejected() {
        let cat = PaperCatalog::new();
        let q = parse_query("SELECT SNO FROM SP, SP").unwrap();
        assert!(matches!(
            block_schema(&cat, &q),
            Err(AnalyzeError::DuplicateTableName(_))
        ));
        let ok = parse_query("SELECT A.SNO FROM SP A, SP B").unwrap();
        assert!(block_schema(&cat, &ok).is_ok());
    }

    #[test]
    fn correlated_refs_found_in_type_j_query() {
        // Query (4): inner references S.CITY, S not in inner FROM.
        let cat = PaperCatalog::new();
        let q = parse_query(
            "SELECT SNAME FROM S WHERE SNO IS IN \
             (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
        )
        .unwrap();
        let Some(nsql_sql::Predicate::In {
            rhs: nsql_sql::InRhs::Subquery(inner), ..
        }) = &q.where_clause
        else {
            panic!()
        };
        let outer = outer_column_refs(&cat, inner).unwrap();
        assert_eq!(outer, vec![ColumnRef::qualified("S", "CITY")]);
    }

    #[test]
    fn uncorrelated_inner_has_no_outer_refs() {
        let cat = PaperCatalog::new();
        let q = parse_query("SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE WEIGHT > 50)")
            .unwrap();
        let Some(nsql_sql::Predicate::In {
            rhs: nsql_sql::InRhs::Subquery(inner), ..
        }) = &q.where_clause
        else {
            panic!()
        };
        assert!(outer_column_refs(&cat, inner).unwrap().is_empty());
    }

    #[test]
    fn validate_accepts_paper_queries() {
        let cat = PaperCatalog::new();
        for src in [
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')",
            "SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
            "SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        ] {
            validate_query(&cat, &parse_query(src).unwrap())
                .unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_unknown_names() {
        let cat = PaperCatalog::new();
        let q = parse_query("SELECT SNO FROM NOPE").unwrap();
        assert!(matches!(validate_query(&cat, &q), Err(AnalyzeError::UnknownTable(_))));
        let q = parse_query("SELECT WAT FROM SP").unwrap();
        assert!(matches!(validate_query(&cat, &q), Err(AnalyzeError::UnresolvedColumn(_))));
        let q = parse_query("SELECT SP.SNO FROM SP WHERE X.Y = 1").unwrap();
        assert!(matches!(validate_query(&cat, &q), Err(AnalyzeError::UnresolvedColumn(_))));
    }

    #[test]
    fn validate_rejects_ambiguity() {
        let cat = PaperCatalog::new();
        // SNO is in both S and SP.
        let q = parse_query("SELECT SNO FROM S, SP").unwrap();
        assert!(matches!(validate_query(&cat, &q), Err(AnalyzeError::AmbiguousColumn(_))));
    }

    #[test]
    fn validate_handles_deep_nesting() {
        let cat = PaperCatalog::new();
        let q = parse_query(
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
             (SELECT PNO FROM P WHERE P.CITY = S.CITY))",
        )
        .unwrap();
        validate_query(&cat, &q).unwrap();
    }

    #[test]
    fn binding_depth_prefers_nearest_scope() {
        let cat = PaperCatalog::new();
        let outer_q = parse_query("SELECT SNO FROM SP").unwrap();
        let inner_q = parse_query("SELECT PNO FROM P").unwrap();
        let outer_scope = block_schema(&cat, &outer_q).unwrap();
        let inner_scope = block_schema(&cat, &inner_q).unwrap();
        let r = Resolver::new(vec![outer_scope]).child(inner_scope);
        // PNO exists in both P (local) and SP (outer): binds locally.
        assert_eq!(r.binding_depth(&ColumnRef::bare("PNO")).unwrap(), 0);
        assert_eq!(r.binding_depth(&ColumnRef::bare("QTY")).unwrap(), 1);
        assert_eq!(r.binding_depth(&ColumnRef::qualified("SP", "PNO")).unwrap(), 1);
    }
}
