//! Kim's nesting-type classification (Section 2 of the paper).

use crate::resolve::{outer_column_refs, SchemaSource};
use crate::Result;
use nsql_sql::QueryBlock;
use std::fmt;

/// The four nesting types relevant to the paper (Kim's fifth, type-D —
/// division — is out of scope for both papers' algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NestingType {
    /// Inner block is uncorrelated and its SELECT is an aggregate: the
    /// inner block evaluates to one constant, independent of the outer
    /// block (Section 2.1).
    TypeA,
    /// Inner block is uncorrelated and its SELECT has no aggregate: the
    /// inner block evaluates to a list of values (Section 2.2).
    TypeN,
    /// Inner block has a correlated join predicate and no aggregate in its
    /// SELECT (Section 2.3).
    TypeJ,
    /// Inner block has a correlated join predicate and its SELECT is an
    /// aggregate (Section 2.4) — the case Kim's NEST-JA mishandles and
    /// NEST-JA2 fixes.
    TypeJA,
}

impl fmt::Display for NestingType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NestingType::TypeA => "type-A",
            NestingType::TypeN => "type-N",
            NestingType::TypeJ => "type-J",
            NestingType::TypeJA => "type-JA",
        };
        f.write_str(s)
    }
}

/// Classify an inner query block.
///
/// The classification needs only the inner block itself: correlation is "a
/// join predicate which references a relation … not mentioned in the inner
/// FROM clause", and aggregation is a property of the inner SELECT clause.
pub fn classify_inner<S: SchemaSource>(catalog: &S, inner: &QueryBlock) -> Result<NestingType> {
    let correlated = !outer_column_refs(catalog, inner)?.is_empty();
    let aggregate = inner.has_aggregate_select();
    Ok(match (correlated, aggregate) {
        (false, false) => NestingType::TypeN,
        (false, true) => NestingType::TypeA,
        (true, false) => NestingType::TypeJ,
        (true, true) => NestingType::TypeJA,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::test_catalog::PaperCatalog;
    use nsql_sql::{parse_query, InRhs, Operand, Predicate};

    fn inner_of(src: &str) -> QueryBlock {
        let q = parse_query(src).unwrap();
        match q.where_clause.unwrap() {
            Predicate::In { rhs: InRhs::Subquery(b), .. } => *b,
            Predicate::Compare { right: Operand::Subquery(b), .. } => *b,
            other => panic!("no subquery in {other:?}"),
        }
    }

    #[test]
    fn classifies_paper_examples() {
        let cat = PaperCatalog::new();
        // Query (2): type-A.
        let a = inner_of("SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)");
        assert_eq!(classify_inner(&cat, &a).unwrap(), NestingType::TypeA);
        // Query (3): type-N.
        let n = inner_of(
            "SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)",
        );
        assert_eq!(classify_inner(&cat, &n).unwrap(), NestingType::TypeN);
        // Query (4): type-J.
        let j = inner_of(
            "SELECT SNAME FROM S WHERE SNO IS IN \
             (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
        );
        assert_eq!(classify_inner(&cat, &j).unwrap(), NestingType::TypeJ);
        // Query (5): type-JA.
        let ja = inner_of(
            "SELECT PNAME FROM P WHERE PNO = \
             (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
        );
        assert_eq!(classify_inner(&cat, &ja).unwrap(), NestingType::TypeJA);
    }

    #[test]
    fn kiessling_q2_is_type_ja() {
        let cat = PaperCatalog::new();
        let inner = inner_of(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        );
        assert_eq!(classify_inner(&cat, &inner).unwrap(), NestingType::TypeJA);
    }

    #[test]
    fn unqualified_correlation_detected() {
        // ORIGIN belongs to SP; inner FROM has only P, so the bare ORIGIN
        // must be recognised as an outer reference.
        let cat = PaperCatalog::new();
        let inner = inner_of(
            "SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE CITY = ORIGIN)",
        );
        assert_eq!(classify_inner(&cat, &inner).unwrap(), NestingType::TypeJ);
    }
}
