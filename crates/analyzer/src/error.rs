//! Analysis errors.

use std::fmt;

/// Semantic analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// FROM references a table the catalog does not know.
    UnknownTable(String),
    /// A column reference resolved nowhere (neither locally nor in any
    /// enclosing scope).
    UnresolvedColumn(String),
    /// A column reference is ambiguous within its scope.
    AmbiguousColumn(String),
    /// Two tables in one FROM clause share an effective name.
    DuplicateTableName(String),
    /// A query shape the dialect/algorithms do not support.
    Unsupported(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            AnalyzeError::UnresolvedColumn(c) => write!(f, "unresolved column: {c}"),
            AnalyzeError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            AnalyzeError::DuplicateTableName(t) => {
                write!(f, "duplicate table name/alias in FROM: {t}")
            }
            AnalyzeError::Unsupported(m) => write!(f, "unsupported query shape: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}
