//! The query-block tree of Figure 2.
//!
//! A nested query is "a multi-way tree whose nodes are query blocks, where
//! the outermost query block … is the root" (Section 9.1). This module
//! builds that tree with each edge labelled by the nesting type of the child
//! block, and renders it in the style of the paper's figure.

use crate::classify::{classify_inner, NestingType};
use crate::resolve::SchemaSource;
use crate::Result;
use nsql_sql::{InRhs, Operand, Predicate, QueryBlock};

/// A node of the query tree: a block, a label (`A`, `B`, … in preorder like
/// the figure), and its nested children with edge labels.
#[derive(Debug, Clone)]
pub struct QueryTree {
    /// Preorder label, `A` for the root.
    pub label: String,
    /// The query block at this node (subqueries still embedded).
    pub block: QueryBlock,
    /// Children: (nesting type of the edge, subtree).
    pub children: Vec<(NestingType, QueryTree)>,
}

impl QueryTree {
    /// Total number of query blocks in the tree.
    pub fn block_count(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.block_count()).sum::<usize>()
    }

    /// Maximum nesting depth (a flat query has depth 0).
    pub fn depth(&self) -> usize {
        self.children.iter().map(|(_, c)| c.depth() + 1).max().unwrap_or(0)
    }

    /// Whether any edge in the tree is of the given type.
    pub fn contains(&self, ty: NestingType) -> bool {
        self.children.iter().any(|(t, c)| *t == ty || c.contains(ty))
    }

    /// Render as an ASCII tree, one node per line, edges labelled like
    /// Figure 2.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", None);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, edge: Option<NestingType>) {
        match edge {
            None => out.push_str(&format!("{}{}\n", prefix, self.label)),
            Some(t) => out.push_str(&format!("{}{} [{}]\n", prefix, self.label, t)),
        }
        for (i, (t, child)) in self.children.iter().enumerate() {
            let last = i + 1 == self.children.len();
            let connector = if last { "└── " } else { "├── " };
            let child_prefix = format!("{}{}", prefix, connector);
            let cont_prefix = format!("{}{}", prefix, if last { "    " } else { "│   " });
            child.render_into_with(out, &child_prefix, &cont_prefix, Some(*t));
        }
    }

    fn render_into_with(
        &self,
        out: &mut String,
        head_prefix: &str,
        cont_prefix: &str,
        edge: Option<NestingType>,
    ) {
        match edge {
            None => out.push_str(&format!("{}{}\n", head_prefix, self.label)),
            Some(t) => out.push_str(&format!("{}{} [{}]\n", head_prefix, self.label, t)),
        }
        for (i, (t, child)) in self.children.iter().enumerate() {
            let last = i + 1 == self.children.len();
            let connector = if last { "└── " } else { "├── " };
            let child_head = format!("{}{}", cont_prefix, connector);
            let child_cont = format!("{}{}", cont_prefix, if last { "    " } else { "│   " });
            child.render_into_with(out, &child_head, &child_cont, Some(*t));
        }
    }
}

/// Build the query tree for `root`, labelling blocks `A`, `B`, … in
/// preorder and classifying every edge.
pub fn query_tree<S: SchemaSource>(catalog: &S, root: &QueryBlock) -> Result<QueryTree> {
    let mut counter = 0usize;
    build(catalog, root, &mut counter)
}

fn label_for(i: usize) -> String {
    // A, B, …, Z, AA, AB, … — enough for any sane query.
    let mut s = String::new();
    let mut n = i;
    loop {
        s.insert(0, (b'A' + (n % 26) as u8) as char);
        if n < 26 {
            break;
        }
        n = n / 26 - 1;
    }
    s
}

fn build<S: SchemaSource>(
    catalog: &S,
    block: &QueryBlock,
    counter: &mut usize,
) -> Result<QueryTree> {
    let label = label_for(*counter);
    *counter += 1;
    let mut children = Vec::new();
    if let Some(p) = &block.where_clause {
        collect_children(catalog, p, counter, &mut children)?;
    }
    Ok(QueryTree { label, block: block.clone(), children })
}

fn collect_children<S: SchemaSource>(
    catalog: &S,
    p: &Predicate,
    counter: &mut usize,
    out: &mut Vec<(NestingType, QueryTree)>,
) -> Result<()> {
    let push = |q: &QueryBlock,
                    counter: &mut usize,
                    out: &mut Vec<(NestingType, QueryTree)>|
     -> Result<()> {
        let ty = classify_inner(catalog, q)?;
        let sub = build(catalog, q, counter)?;
        out.push((ty, sub));
        Ok(())
    };
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                collect_children(catalog, q, counter, out)?;
            }
        }
        Predicate::Not(q) => collect_children(catalog, q, counter, out)?,
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    push(q, counter, out)?;
                }
            }
        }
        Predicate::In { rhs: InRhs::Subquery(q), .. } => push(q, counter, out)?,
        Predicate::In { .. } => {}
        Predicate::Exists { query, .. } => push(query, counter, out)?,
        Predicate::Quantified { query, .. } => push(query, counter, out)?,
        Predicate::IsNull { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::test_catalog::PaperCatalog;
    use nsql_sql::parse_query;

    #[test]
    fn flat_query_is_single_node() {
        let cat = PaperCatalog::new();
        let q = parse_query("SELECT SNO FROM SP").unwrap();
        let t = query_tree(&cat, &q).unwrap();
        assert_eq!(t.block_count(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.label, "A");
    }

    #[test]
    fn figure_2_shape() {
        // A with children B and D; B with children C; C with child E is the
        // figure's shape — build an analogous query: A(B(C(E)), D).
        let cat = PaperCatalog::new();
        let q = parse_query(
            "SELECT SNAME FROM S WHERE \
               SNO IN (SELECT SNO FROM SP WHERE \
                         QTY = (SELECT MAX(WEIGHT) FROM P WHERE \
                                  PNO IN (SELECT PNO FROM SP X WHERE X.ORIGIN = S.CITY))) \
               AND CITY IN (SELECT CITY FROM P)",
        )
        .unwrap();
        let t = query_tree(&cat, &q).unwrap();
        assert_eq!(t.block_count(), 5);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.children.len(), 2);
        let labels: Vec<&str> = t.children.iter().map(|(_, c)| c.label.as_str()).collect();
        assert_eq!(labels, vec!["B", "E"]);
        // B's child chain: C then D.
        let b = &t.children[0].1;
        assert_eq!(b.children[0].1.label, "C");
        assert_eq!(b.children[0].1.children[0].1.label, "D");
        let rendered = t.render();
        assert!(rendered.contains("└── E"), "{rendered}");
        assert!(rendered.contains("type-"), "{rendered}");
    }

    #[test]
    fn edge_types_match_classification() {
        let cat = PaperCatalog::new();
        let q = parse_query(
            "SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
        )
        .unwrap();
        let t = query_tree(&cat, &q).unwrap();
        assert_eq!(t.children[0].0, NestingType::TypeJA);
        assert!(t.contains(NestingType::TypeJA));
        assert!(!t.contains(NestingType::TypeN));
    }

    #[test]
    fn labels_go_past_z() {
        assert_eq!(label_for(0), "A");
        assert_eq!(label_for(25), "Z");
        assert_eq!(label_for(26), "AA");
        assert_eq!(label_for(27), "AB");
    }
}
