//! Canonical block signatures for cross-query result caching.
//!
//! Two textually different inner blocks can denote the same parametrized
//! computation: aliases differ, local columns are written qualified in one
//! and bare in the other, and the outer (correlated) references are just
//! parameters whose *values* arrive from the binding. The cache therefore
//! keys entries on a normalized rendering where
//!
//! * the single FROM table keeps its name but loses its alias,
//! * every locally-resolved column is rewritten to `@.COL`, and
//! * every free (outer) reference is replaced by an ordinal placeholder
//!   `?k`, numbered in first-occurrence order — the same order the binding
//!   tuple's values are collected in.
//!
//! Only *fully simple* blocks are normalized: a single FROM table and a
//! subquery-free WHERE clause. For that class, evaluation reads exactly one
//! full scan of the FROM file regardless of predicate outcomes, which is
//! what makes a cache hit's recharged read sequence sound (see
//! DESIGN.md "Result caching").

use nsql_sql::{
    print_query, print_query_masked, AggArg, ColumnRef, InRhs, Operand, Predicate, QueryBlock,
    ScalarExpr,
};

/// The statement *fingerprint* used by cumulative statistics
/// (`nsql_stat_statements`): the whole query — nested blocks included —
/// rendered with every literal masked to `?`.
///
/// This is the whole-statement counterpart of
/// [`normalized_block_signature`]: the block signature parametrizes one
/// fully simple inner block for cache keying (aliases canonicalized, free
/// refs ordinalized), while the fingerprint keeps structure, names, and
/// aliases but forgets constants, so repeated executions of the same
/// query shape aggregate under one key no matter which values they probe.
/// Structurally different statements never collide: everything except
/// literal values survives into the rendering.
pub fn query_fingerprint(q: &QueryBlock) -> String {
    print_query_masked(q)
}

/// How the caller resolves one column reference against the block's local
/// scope: `Some(true)` = local, `Some(false)` = free (outer), `None` =
/// unresolvable or ambiguous (normalization bails out).
pub type RefClassifier<'a> = dyn Fn(&ColumnRef) -> Option<bool> + 'a;

/// Normalize a fully simple block into a canonical signature.
///
/// Returns the canonical text plus the free references in placeholder
/// order (deduplicated; the binding tuple is built by looking these up in
/// the outer environment). Returns `None` when the block is not fully
/// simple (multiple FROM tables, any subquery in WHERE) or when `classify`
/// cannot resolve a reference.
pub fn normalized_block_signature(
    q: &QueryBlock,
    classify: &RefClassifier<'_>,
) -> Option<(String, Vec<ColumnRef>)> {
    if q.from.len() != 1 {
        return None;
    }
    if q.where_clause.as_ref().is_some_and(Predicate::contains_subquery) {
        return None;
    }
    let mut norm = q.clone();
    norm.from[0].alias = None;
    let mut free: Vec<ColumnRef> = Vec::new();
    let mut rewrite = |c: &mut ColumnRef| -> Option<()> {
        if classify(c)? {
            c.table = Some("@".to_string());
        } else {
            let k = match free.iter().position(|f| f == c) {
                Some(k) => k,
                None => {
                    free.push(c.clone());
                    free.len() - 1
                }
            };
            *c = ColumnRef { table: None, column: format!("?{k}") };
        }
        Some(())
    };
    for item in &mut norm.select {
        match &mut item.expr {
            ScalarExpr::Column(c) => rewrite(c)?,
            ScalarExpr::Aggregate(_, AggArg::Column(c)) => rewrite(c)?,
            ScalarExpr::Aggregate(_, AggArg::Star) | ScalarExpr::Literal(_) => {}
        }
    }
    if let Some(w) = &mut norm.where_clause {
        rewrite_pred(w, &mut rewrite)?;
    }
    for c in &mut norm.group_by {
        rewrite(c)?;
    }
    for k in &mut norm.order_by {
        rewrite(&mut k.column)?;
    }
    Some((print_query(&norm), free))
}

fn rewrite_pred(
    p: &mut Predicate,
    rewrite: &mut impl FnMut(&mut ColumnRef) -> Option<()>,
) -> Option<()> {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for sub in ps {
                rewrite_pred(sub, rewrite)?;
            }
        }
        Predicate::Not(inner) => rewrite_pred(inner, rewrite)?,
        Predicate::Compare { left, op: _, right } => {
            rewrite_operand(left, rewrite)?;
            rewrite_operand(right, rewrite)?;
        }
        Predicate::In { operand, rhs, .. } => {
            rewrite_operand(operand, rewrite)?;
            match rhs {
                InRhs::List(_) => {}
                // Guarded by the contains_subquery check above.
                InRhs::Subquery(_) => return None,
            }
        }
        Predicate::IsNull { operand, .. } => rewrite_operand(operand, rewrite)?,
        // Guarded by the contains_subquery check above.
        Predicate::Exists { .. } | Predicate::Quantified { .. } => return None,
    }
    Some(())
}

fn rewrite_operand(
    o: &mut Operand,
    rewrite: &mut impl FnMut(&mut ColumnRef) -> Option<()>,
) -> Option<()> {
    match o {
        Operand::Column(c) => rewrite(c),
        Operand::Literal(_) => Some(()),
        Operand::Subquery(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::parse_query;

    /// Treat refs qualified by the FROM table's effective name (or bare
    /// refs) as local, everything else as free.
    fn classifier(q: &QueryBlock) -> impl Fn(&ColumnRef) -> Option<bool> + '_ {
        let local = q.from[0].effective_name().to_string();
        move |c: &ColumnRef| match &c.table {
            None => Some(true),
            Some(t) => Some(*t == local),
        }
    }

    #[test]
    fn alias_and_qualification_are_canonicalized() {
        let a = parse_query(
            "SELECT PNUM FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80",
        )
        .unwrap();
        let b = parse_query(
            "SELECT S.PNUM FROM SUPPLY S WHERE PNUM = PARTS.PNUM AND S.SHIPDATE < 1-1-80",
        )
        .unwrap();
        let (ta, fa) = normalized_block_signature(&a, &classifier(&a)).unwrap();
        let (tb, fb) = normalized_block_signature(&b, &classifier(&b)).unwrap();
        assert_eq!(ta, tb, "alias/qualification noise must normalize away");
        assert_eq!(fa, fb);
        assert_eq!(fa.len(), 1, "one free (outer) reference: {fa:?}");
        assert!(ta.contains("?0"), "{ta}");
        assert!(ta.contains("@.PNUM"), "{ta}");
    }

    #[test]
    fn distinct_free_refs_get_distinct_placeholders() {
        let q = parse_query(
            "SELECT QTY FROM SP WHERE SP.PNO = P.PNO AND QTY > S.THRESHOLD AND SNO = P.PNO",
        )
        .unwrap();
        let (text, free) = normalized_block_signature(&q, &classifier(&q)).unwrap();
        assert_eq!(free.len(), 2, "P.PNO deduplicates: {free:?}");
        assert!(text.contains("?0") && text.contains("?1"), "{text}");
    }

    #[test]
    fn fingerprint_collides_on_literals_only() {
        // Same shape, different constants → one fingerprint.
        let a = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        )
        .unwrap();
        let b = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 6-8-83)",
        )
        .unwrap();
        let fa = query_fingerprint(&a);
        assert_eq!(fa, query_fingerprint(&b), "constants must mask away");
        assert!(fa.contains('?'), "{fa}");
        assert!(!fa.contains("1980") && !fa.contains("1-1-80"), "{fa}");

        // IN-list literals mask element-wise (list arity is structure).
        let c = parse_query("SELECT SNO FROM SP WHERE PNO IN ('P1', 'P2')").unwrap();
        let d = parse_query("SELECT SNO FROM SP WHERE PNO IN ('P3', 'P4')").unwrap();
        let e = parse_query("SELECT SNO FROM SP WHERE PNO IN ('P1')").unwrap();
        assert_eq!(query_fingerprint(&c), query_fingerprint(&d));
        assert_ne!(query_fingerprint(&c), query_fingerprint(&e));

        // Structure must NOT collide: different table, column, operator,
        // nesting, or quantifier all produce distinct fingerprints.
        let base = parse_query("SELECT A FROM T WHERE B = 1").unwrap();
        for other in [
            "SELECT A FROM U WHERE B = 1",
            "SELECT A FROM T WHERE C = 1",
            "SELECT A FROM T WHERE B < 1",
            "SELECT A FROM T WHERE B = (SELECT MAX(B) FROM T)",
            "SELECT DISTINCT A FROM T WHERE B = 1",
        ] {
            let o = parse_query(other).unwrap();
            assert_ne!(
                query_fingerprint(&base),
                query_fingerprint(&o),
                "{other} must not collide"
            );
        }
    }

    #[test]
    fn referenced_tables_descend_into_subqueries() {
        let q = parse_query(
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE QTY > \
             (SELECT MAX(QTY) FROM OLDSP)) AND NOT EXISTS (SELECT PNO FROM P X)",
        )
        .unwrap();
        // Base names, not aliases; dedup in first-occurrence order.
        assert_eq!(q.referenced_tables(), vec!["S", "SP", "OLDSP", "P"]);
        let dup = parse_query("SELECT A FROM T WHERE B IN (SELECT B FROM T)").unwrap();
        assert_eq!(dup.referenced_tables(), vec!["T"]);
    }

    #[test]
    fn non_simple_blocks_are_refused() {
        let two_tables = parse_query("SELECT A FROM T, U WHERE T.K = U.K").unwrap();
        assert!(normalized_block_signature(&two_tables, &classifier(&two_tables)).is_none());
        let nested =
            parse_query("SELECT A FROM T WHERE B IN (SELECT C FROM U)").unwrap();
        assert!(normalized_block_signature(&nested, &classifier(&nested)).is_none());
        let q = parse_query("SELECT A FROM T WHERE B = 1").unwrap();
        assert!(normalized_block_signature(&q, &|_| None).is_none(), "ambiguity bails");
    }
}
