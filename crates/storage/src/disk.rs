//! The simulated disk: a page store that counts every read and write.
//!
//! [`Disk`] owns the page-id allocator and the I/O counter; the pages
//! themselves live behind the [`DiskManager`] seam, which has two
//! implementations: the default in-memory [`MemBackend`] (a sharded map)
//! and the durable [`crate::durable::FileStore`]. Counting happens *here*,
//! above the seam, so the charged I/O is byte-identical across backends by
//! construction — swapping the backing store can change where bytes live,
//! never what the paper's cost model observes.

use crate::stats::{IoCounter, IoStats};
use nsql_types::hash::FxHashMap;
use nsql_types::Tuple;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// First page id of the reserved *system* range. Pages at or above this id
/// hold engine-internal state (materialized `nsql_stat_*` views); they live
/// in a memory-only side store, are never counted, never buffered, never
/// traced or recorded, and never reach the durable backend — so turning
/// statistics on cannot move a published I/O counter or grow the WAL.
/// Ordinary allocation counts up from 0 and can never collide with the
/// range (2^62 pages is far beyond any run).
pub const SYSTEM_PAGE_BASE: u64 = 1 << 62;

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Whether this id lies in the reserved system range (uncounted,
    /// memory-only side store).
    #[inline]
    pub fn is_system(self) -> bool {
        self.0 >= SYSTEM_PAGE_BASE
    }
}

/// A disk page: an ordered run of tuples.
///
/// Pages are immutable once written (heap files are append-built), which lets
/// the buffer pool hand out cheap `Arc<Page>` references.
#[derive(Debug, Default, PartialEq)]
pub struct Page {
    tuples: Vec<Tuple>,
}

impl Page {
    /// Page from tuples.
    pub fn new(tuples: Vec<Tuple>) -> Page {
        Page { tuples }
    }

    /// The tuples on this page.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples on the page.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the page holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The physical page store behind [`Disk`]. Implementations hold pages;
/// they do **not** count I/O or allocate ids — both stay in `Disk` so
/// accounting is backend-independent.
pub trait DiskManager: Send + Sync {
    /// Fetch a page. Panics on an unallocated id — that is always an
    /// engine bug, not a data-dependent condition (durable-store
    /// corruption is detected eagerly at open, never here).
    fn read(&self, id: PageId) -> Arc<Page>;

    /// Store a page under `id`.
    fn write(&self, id: PageId, page: Page);

    /// Drop a page.
    fn free(&self, id: PageId);

    /// Number of live pages (for leak checks in tests).
    fn live_pages(&self) -> usize;
}

/// Number of page-map shards. Page ids are sequential, so `id % SHARDS`
/// spreads neighbouring pages across distinct latches and concurrent
/// scans rarely contend.
const SHARDS: usize = 16;

/// The default in-memory backend: a sharded page map.
pub struct MemBackend {
    shards: [Mutex<FxHashMap<PageId, Arc<Page>>>; SHARDS],
}

impl MemBackend {
    /// Fresh empty backend.
    pub fn new() -> MemBackend {
        MemBackend { shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())) }
    }

    fn shard(&self, id: PageId) -> std::sync::MutexGuard<'_, FxHashMap<PageId, Arc<Page>>> {
        self.shards[(id.0 as usize) % SHARDS]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for MemBackend {
    fn default() -> Self {
        MemBackend::new()
    }
}

impl DiskManager for MemBackend {
    fn read(&self, id: PageId) -> Arc<Page> {
        Arc::clone(
            self.shard(id)
                .get(&id)
                .unwrap_or_else(|| panic!("read of unallocated page {id:?}")),
        )
    }

    fn write(&self, id: PageId, page: Page) {
        self.shard(id).insert(id, Arc::new(page));
    }

    fn free(&self, id: PageId) {
        self.shard(id).remove(&id);
    }

    fn live_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }
}

/// The simulated disk. All counted access is through [`Disk::read`] /
/// [`Disk::write`], each of which counts one page I/O against the shared
/// counter before delegating to the backend.
pub struct Disk {
    backend: Arc<dyn DiskManager>,
    next_id: AtomicU64,
    counter: Arc<IoCounter>,
    /// Memory-only side store for the reserved system page range (ids ≥
    /// [`SYSTEM_PAGE_BASE`]). Never counted, never part of the durable
    /// backend, excluded from [`Disk::live_pages`] leak checks.
    system: MemBackend,
    next_system_id: AtomicU64,
}

impl Disk {
    /// Fresh empty in-memory disk.
    pub fn new() -> Disk {
        Disk::with_backend(Arc::new(MemBackend::new()), 0)
    }

    /// Disk over an explicit backend, allocating ids from `first_id`
    /// upward (a recovered durable store resumes past its persisted
    /// high-water mark).
    pub fn with_backend(backend: Arc<dyn DiskManager>, first_id: u64) -> Disk {
        assert!(first_id < SYSTEM_PAGE_BASE, "ordinary ids below the system range");
        Disk {
            backend,
            next_id: AtomicU64::new(first_id),
            counter: IoCounter::shared(),
            system: MemBackend::new(),
            next_system_id: AtomicU64::new(SYSTEM_PAGE_BASE),
        }
    }

    /// Allocate a page id (no I/O).
    pub fn alloc(&self) -> PageId {
        PageId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Read a page. Counts one page read. Panics on an unallocated id —
    /// that is always an engine bug, not a data-dependent condition.
    pub fn read(&self, id: PageId) -> Arc<Page> {
        self.counter.count_read();
        self.read_uncounted(id)
    }

    /// Read a page without counting (trace-mode evaluation; replay charges
    /// the read later at its serial position).
    pub fn read_uncounted(&self, id: PageId) -> Arc<Page> {
        self.backend.read(id)
    }

    /// Write a page. Counts one page write.
    pub fn write(&self, id: PageId, page: Page) {
        self.counter.count_write();
        self.write_uncounted(id, page);
    }

    /// Write a page without counting (trace-mode evaluation).
    pub fn write_uncounted(&self, id: PageId, page: Page) {
        self.backend.write(id, page);
    }

    /// Drop a page (no I/O; deallocation is a catalog operation).
    pub fn free(&self, id: PageId) {
        self.backend.free(id);
    }

    /// Number of live pages (for leak checks in tests).
    pub fn live_pages(&self) -> usize {
        self.backend.live_pages()
    }

    /// Charge one page write to the counter without touching any page
    /// (trace replay: the physical write already happened uncounted).
    pub fn charge_write(&self) {
        self.counter.count_write();
    }

    /// Allocate a system page id (no I/O; ids count up from
    /// [`SYSTEM_PAGE_BASE`]).
    pub fn alloc_system(&self) -> PageId {
        PageId(self.next_system_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Read a system page. Uncounted by contract: system pages hold the
    /// statistics views, and observing statistics must not move the
    /// counters being observed.
    pub fn read_system(&self, id: PageId) -> Arc<Page> {
        debug_assert!(id.is_system());
        self.system.read(id)
    }

    /// Write a system page. Uncounted; never reaches the durable backend.
    pub fn write_system(&self, id: PageId, page: Page) {
        debug_assert!(id.is_system());
        self.system.write(id, page);
    }

    /// Drop a system page.
    pub fn free_system(&self, id: PageId) {
        debug_assert!(id.is_system());
        self.system.free(id);
    }

    /// Number of live system pages (side-store leak checks; these are
    /// deliberately *excluded* from [`Disk::live_pages`]).
    pub fn system_pages(&self) -> usize {
        self.system.live_pages()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.counter.snapshot()
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.counter.reset();
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::Value;

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn read_write_counted() {
        let d = Disk::new();
        let id = d.alloc();
        d.write(id, Page::new(vec![tup(1), tup(2)]));
        let p = d.read(id);
        assert_eq!(p.len(), 2);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    fn alloc_ids_are_distinct() {
        let d = Disk::new();
        let a = d.alloc();
        let b = d.alloc();
        assert_ne!(a, b);
    }

    #[test]
    fn alloc_resumes_from_first_id() {
        let d = Disk::with_backend(Arc::new(MemBackend::new()), 41);
        assert_eq!(d.alloc(), PageId(41));
        assert_eq!(d.alloc(), PageId(42));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let d = Disk::new();
        let _ = d.read(PageId(99));
    }

    #[test]
    fn free_removes_page() {
        let d = Disk::new();
        let id = d.alloc();
        d.write(id, Page::default());
        assert_eq!(d.live_pages(), 1);
        d.free(id);
        assert_eq!(d.live_pages(), 0);
    }

    #[test]
    fn uncounted_access_leaves_stats_alone() {
        let d = Disk::new();
        let id = d.alloc();
        d.write_uncounted(id, Page::new(vec![tup(7)]));
        assert_eq!(d.read_uncounted(id).len(), 1);
        assert_eq!(d.stats().total(), 0);
    }

    #[test]
    fn concurrent_allocs_are_distinct() {
        let d = Disk::new();
        let ids = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let local: Vec<PageId> = (0..100).map(|_| d.alloc()).collect();
                    ids.lock().unwrap().extend(local);
                });
            }
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
