//! The simulated disk: a page store that counts every read and write.

use crate::stats::{IoCounter, IoStats};
use nsql_types::Tuple;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A disk page: an ordered run of tuples.
///
/// Pages are immutable once written (heap files are append-built), which lets
/// the buffer pool hand out cheap `Rc<Page>` references.
#[derive(Debug, Default, PartialEq)]
pub struct Page {
    tuples: Vec<Tuple>,
}

impl Page {
    /// Page from tuples.
    pub fn new(tuples: Vec<Tuple>) -> Page {
        Page { tuples }
    }

    /// The tuples on this page.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples on the page.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the page holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The simulated disk. All access is through [`Disk::read`] / [`Disk::write`],
/// each of which counts one page I/O against the shared counter.
pub struct Disk {
    pages: RefCell<HashMap<PageId, Rc<Page>>>,
    next_id: Cell<u64>,
    counter: Rc<IoCounter>,
}

impl Disk {
    /// Fresh empty disk.
    pub fn new() -> Disk {
        Disk {
            pages: RefCell::new(HashMap::new()),
            next_id: Cell::new(0),
            counter: IoCounter::shared(),
        }
    }

    /// Allocate a page id (no I/O).
    pub fn alloc(&self) -> PageId {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        PageId(id)
    }

    /// Read a page. Counts one page read. Panics on an unallocated id —
    /// that is always an engine bug, not a data-dependent condition.
    pub fn read(&self, id: PageId) -> Rc<Page> {
        self.counter.count_read();
        Rc::clone(
            self.pages
                .borrow()
                .get(&id)
                .unwrap_or_else(|| panic!("read of unallocated page {id:?}")),
        )
    }

    /// Write a page. Counts one page write.
    pub fn write(&self, id: PageId, page: Page) {
        self.counter.count_write();
        self.pages.borrow_mut().insert(id, Rc::new(page));
    }

    /// Drop a page (no I/O; deallocation is a catalog operation).
    pub fn free(&self, id: PageId) {
        self.pages.borrow_mut().remove(&id);
    }

    /// Number of live pages (for leak checks in tests).
    pub fn live_pages(&self) -> usize {
        self.pages.borrow().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.counter.snapshot()
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.counter.reset();
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::Value;

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn read_write_counted() {
        let d = Disk::new();
        let id = d.alloc();
        d.write(id, Page::new(vec![tup(1), tup(2)]));
        let p = d.read(id);
        assert_eq!(p.len(), 2);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    fn alloc_ids_are_distinct() {
        let d = Disk::new();
        let a = d.alloc();
        let b = d.alloc();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let d = Disk::new();
        let _ = d.read(PageId(99));
    }

    #[test]
    fn free_removes_page() {
        let d = Disk::new();
        let id = d.alloc();
        d.write(id, Page::default());
        assert_eq!(d.live_pages(), 1);
        d.free(id);
        assert_eq!(d.live_pages(), 0);
    }
}
