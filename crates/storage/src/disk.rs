//! The simulated disk: a page store that counts every read and write.

use crate::stats::{IoCounter, IoStats};
use nsql_types::hash::FxHashMap;
use nsql_types::Tuple;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identifier of a disk page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A disk page: an ordered run of tuples.
///
/// Pages are immutable once written (heap files are append-built), which lets
/// the buffer pool hand out cheap `Arc<Page>` references.
#[derive(Debug, Default, PartialEq)]
pub struct Page {
    tuples: Vec<Tuple>,
}

impl Page {
    /// Page from tuples.
    pub fn new(tuples: Vec<Tuple>) -> Page {
        Page { tuples }
    }

    /// The tuples on this page.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples on the page.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the page holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Number of page-map shards. Page ids are sequential, so `id % SHARDS`
/// spreads neighbouring pages across distinct latches and concurrent
/// scans rarely contend.
const SHARDS: usize = 16;

/// The simulated disk. All counted access is through [`Disk::read`] /
/// [`Disk::write`], each of which counts one page I/O against the shared
/// counter. The page map is sharded under `Mutex` latches so concurrent
/// workers can read and write disjoint pages without serializing.
pub struct Disk {
    shards: [Mutex<FxHashMap<PageId, Arc<Page>>>; SHARDS],
    next_id: AtomicU64,
    counter: Arc<IoCounter>,
}

impl Disk {
    /// Fresh empty disk.
    pub fn new() -> Disk {
        Disk {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            next_id: AtomicU64::new(0),
            counter: IoCounter::shared(),
        }
    }

    fn shard(&self, id: PageId) -> std::sync::MutexGuard<'_, FxHashMap<PageId, Arc<Page>>> {
        self.shards[(id.0 as usize) % SHARDS]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Allocate a page id (no I/O).
    pub fn alloc(&self) -> PageId {
        PageId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Read a page. Counts one page read. Panics on an unallocated id —
    /// that is always an engine bug, not a data-dependent condition.
    pub fn read(&self, id: PageId) -> Arc<Page> {
        self.counter.count_read();
        self.read_uncounted(id)
    }

    /// Read a page without counting (trace-mode evaluation; replay charges
    /// the read later at its serial position).
    pub fn read_uncounted(&self, id: PageId) -> Arc<Page> {
        Arc::clone(
            self.shard(id)
                .get(&id)
                .unwrap_or_else(|| panic!("read of unallocated page {id:?}")),
        )
    }

    /// Write a page. Counts one page write.
    pub fn write(&self, id: PageId, page: Page) {
        self.counter.count_write();
        self.write_uncounted(id, page);
    }

    /// Write a page without counting (trace-mode evaluation).
    pub fn write_uncounted(&self, id: PageId, page: Page) {
        self.shard(id).insert(id, Arc::new(page));
    }

    /// Drop a page (no I/O; deallocation is a catalog operation).
    pub fn free(&self, id: PageId) {
        self.shard(id).remove(&id);
    }

    /// Number of live pages (for leak checks in tests).
    pub fn live_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Charge one page write to the counter without touching any page
    /// (trace replay: the physical write already happened uncounted).
    pub fn charge_write(&self) {
        self.counter.count_write();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.counter.snapshot()
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.counter.reset();
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::Value;

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn read_write_counted() {
        let d = Disk::new();
        let id = d.alloc();
        d.write(id, Page::new(vec![tup(1), tup(2)]));
        let p = d.read(id);
        assert_eq!(p.len(), 2);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    fn alloc_ids_are_distinct() {
        let d = Disk::new();
        let a = d.alloc();
        let b = d.alloc();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let d = Disk::new();
        let _ = d.read(PageId(99));
    }

    #[test]
    fn free_removes_page() {
        let d = Disk::new();
        let id = d.alloc();
        d.write(id, Page::default());
        assert_eq!(d.live_pages(), 1);
        d.free(id);
        assert_eq!(d.live_pages(), 0);
    }

    #[test]
    fn uncounted_access_leaves_stats_alone() {
        let d = Disk::new();
        let id = d.alloc();
        d.write_uncounted(id, Page::new(vec![tup(7)]));
        assert_eq!(d.read_uncounted(id).len(), 1);
        assert_eq!(d.stats().total(), 0);
    }

    #[test]
    fn concurrent_allocs_are_distinct() {
        let d = Disk::new();
        let ids = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let local: Vec<PageId> = (0..100).map(|_| d.alloc()).collect();
                    ids.lock().unwrap().extend(local);
                });
            }
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
