//! The file-backed page store: checksummed slotted page file + redo WAL.
//!
//! # Architecture
//!
//! The in-memory page map remains the live truth (reads never touch the
//! file system after open — the I/O *count* charged by [`crate::Disk`]
//! stays byte-identical to the memory backend by construction). The files
//! are a durable mirror maintained at two sites:
//!
//! * **Commit** — [`FileStore::commit`] appends one checksummed redo
//!   record per page written (full post-image; pages are immutable once
//!   written, so redo logging needs no undo), one per page freed, then a
//!   `Commit` record carrying an opaque catalog snapshot. The batch since
//!   the previous commit becomes durable atomically: recovery replays the
//!   log only through the **last valid commit record**, so a batch whose
//!   commit never landed rolls back wholesale.
//! * **Checkpoint** — [`FileStore::checkpoint`] folds committed images
//!   into the slotted page file, writes a fresh directory, publishes it by
//!   writing the alternate header (A/B double-buffering with sequence
//!   numbers — the header landing is the atomic switch), then truncates
//!   the WAL. The generation stamp in every WAL record ties the log to the
//!   checkpoint epoch: a crash between the header write and the truncate
//!   leaves stale-generation records behind, which recovery recognizes and
//!   ignores instead of replaying twice.
//!
//! # File layout (`pages.nsql`)
//!
//! ```text
//! [header A: 256 B] [header B: 256 B] [slot 0] [slot 1] ...
//! header  := [len u32][crc u32][payload]   (crc over payload)
//! payload := magic u64, version u32, seq u64, gen u32, page_size u32,
//!            slot_size u32, slot_count u64, next_page_id u64, dir_slot i64
//! slot    := [next_slot i64][chunk_len u32][chunk_crc u32][chunk bytes]
//! ```
//!
//! Blobs (page images, the directory) larger than one slot chain through
//! `next_slot`. Every chunk is CRC-guarded; a flipped bit anywhere in a
//! live chunk surfaces as a typed [`StorageError::Checksum`] at open, not
//! a panic or a wrong answer. The free list is derived at open as the
//! complement of the slots reachable from the directory.
//!
//! # Crash model and fault injection
//!
//! Crashes are simulated at *write-op* granularity: every physical file
//! mutation (WAL record append, slot chunk write, header write, WAL
//! truncate) is one op. A [`FaultPlan`] kills the store at a chosen op,
//! optionally leaving a torn prefix of that op's bytes; every later op is
//! a silent no-op, freezing the files exactly as a power cut would while
//! the in-memory session continues undisturbed. Reopening the directory
//! runs real recovery. There is no `fsync` modeling: the simulated crash
//! is a process kill with completed writes considered durable, which is
//! the strongest model expressible without controlling the page cache.

use super::codec::{self, ByteReader, ByteWriter};
use super::wal::{self, WalRecord};
use crate::disk::{DiskManager, Page, PageId};
use crate::error::StorageError;
use nsql_types::hash::{FxHashMap, FxHashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

const MAGIC: u64 = 0x4e53_514c_5041_4745; // "NSQLPAGE"
const VERSION: u32 = 1;
const HDR_SIZE: u64 = 256;
const CHUNK_HEADER: u64 = 16; // next_slot i64 + chunk_len u32 + chunk_crc u32
const NO_SLOT: i64 = -1;

/// WAL length (bytes) above which a commit triggers an automatic
/// checkpoint. Deterministic: depends only on the byte stream of records.
const AUTO_CHECKPOINT_WAL_BYTES: u64 = 256 * 1024;

/// Name of the slotted page file inside the store directory.
pub const PAGE_FILE: &str = "pages.nsql";
/// Name of the write-ahead log inside the store directory.
pub const WAL_FILE: &str = "wal.nsql";

/// A simulated crash point: kill the store at physical write op
/// `crash_at_op` (0-based, counted from fault installation), optionally
/// persisting the first `torn_bytes` bytes of that op first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the physical write op at which the crash fires.
    pub crash_at_op: u64,
    /// Bytes of the fatal op that still reach the file (`None` = zero:
    /// the op is lost entirely). Capped at one less than the op's length:
    /// the fatal op never *completes* — a crash after a fully persisted
    /// op is the same crash at the next site with nothing torn.
    pub torn_bytes: Option<usize>,
}

/// What recovery found when opening a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid checkpoint header was found.
    pub had_checkpoint: bool,
    /// Pages loaded from the checkpointed page file.
    pub pages_from_checkpoint: usize,
    /// Valid records found in the WAL (any generation).
    pub wal_records_scanned: usize,
    /// Records replayed (current generation, up to the last commit).
    pub wal_records_applied: usize,
    /// Valid records discarded: stale generation, or after the last commit
    /// (an uncommitted batch rolled back).
    pub wal_records_discarded: usize,
    /// Whether the WAL ended in a torn or corrupt tail.
    pub torn_tail: bool,
    /// Number of commit records replayed.
    pub commits_applied: usize,
}

struct Files {
    page: File,
    wal: File,
}

#[derive(Default)]
struct StoreState {
    /// Live truth: every allocated page, committed or not.
    mem: FxHashMap<PageId, Arc<Page>>,
    /// Pages written since the last commit, in write order.
    batch_writes: Vec<PageId>,
    /// Durable pages freed since the last commit.
    batch_frees: Vec<PageId>,
    /// Committed pages not yet folded into the page file.
    ckpt_dirty: FxHashSet<PageId>,
    /// Committed frees not yet folded into the page file.
    ckpt_freed: FxHashSet<PageId>,
    /// Slot chain per page currently stored in the page file.
    page_slots: FxHashMap<PageId, Vec<u64>>,
    /// Slots of the directory blob of the current checkpoint.
    dir_slots: Vec<u64>,
    free_slots: Vec<u64>,
    slot_count: u64,
    slot_size: u64,
    page_size: u32,
    gen: u32,
    seq: u64,
    max_written_id: u64,
    next_page_id: u64,
    committed_meta: Option<Vec<u8>>,
    wal_len: u64,
    fault: Option<FaultPlan>,
    write_ops: u64,
    crashed: bool,
    /// Durable commits completed since open (statistics only).
    commits: u64,
    /// Checkpoints folded since open, explicit or automatic (statistics
    /// only).
    checkpoints: u64,
}

/// The durable, file-backed [`DiskManager`] backend. See the module docs
/// for the architecture.
pub struct FileStore {
    dir: PathBuf,
    files: Mutex<Files>,
    state: Mutex<StoreState>,
}

impl FileStore {
    /// Open (or create) a store in `dir`, running crash recovery.
    ///
    /// `default_page_size` seeds a fresh store; an existing store keeps
    /// the page size recorded in its header.
    pub fn open(
        dir: &Path,
        default_page_size: usize,
    ) -> Result<(FileStore, RecoveryReport), StorageError> {
        std::fs::create_dir_all(dir)?;
        let page_path = dir.join(PAGE_FILE);
        let wal_path = dir.join(WAL_FILE);
        let mut page_file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&page_path)?;
        let mut wal_file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&wal_path)?;

        let mut page_bytes = Vec::new();
        page_file.read_to_end(&mut page_bytes)?;
        let mut wal_bytes = Vec::new();
        wal_file.read_to_end(&mut wal_bytes)?;

        let mut report = RecoveryReport::default();
        let mut st = StoreState {
            page_size: default_page_size as u32,
            slot_size: slot_size_for(default_page_size),
            ..StoreState::default()
        };

        // 1. Checkpoint image: pick the newest valid header, load the
        //    directory and every page chain, verifying all checksums
        //    eagerly so corruption surfaces now, as a typed error.
        if let Some(hdr) = read_headers(&page_bytes, wal_bytes.is_empty())? {
            report.had_checkpoint = true;
            st.page_size = hdr.page_size;
            st.slot_size = u64::from(hdr.slot_size);
            st.slot_count = hdr.slot_count;
            st.gen = hdr.gen;
            st.seq = hdr.seq;
            st.next_page_id = hdr.next_page_id;
            st.max_written_id = hdr.next_page_id.saturating_sub(1);
            if hdr.dir_slot != NO_SLOT {
                let (dir_blob, dir_chain) =
                    read_chain(&page_bytes, &st, hdr.dir_slot as u64, "directory")?;
                st.dir_slots = dir_chain;
                let mut r = ByteReader::new(&dir_blob);
                let meta = r.get_blob()?.to_vec();
                st.committed_meta = Some(meta);
                let n_pages = r.get_u64()? as usize;
                for _ in 0..n_pages {
                    let id = PageId(r.get_u64()?);
                    let first = r.get_u64()?;
                    let image_crc = r.get_u32()?;
                    let (img, chain) =
                        read_chain(&page_bytes, &st, first, "page image")?;
                    if codec::crc32(&img) != image_crc {
                        return Err(StorageError::Checksum {
                            context: "page image",
                            detail: format!("page {}, first slot {first}", id.0),
                        });
                    }
                    let tuples = codec::decode_page(&img).map_err(|e| match e {
                        StorageError::Corrupt(m) => {
                            StorageError::Corrupt(format!("page {}: {m}", id.0))
                        }
                        other => other,
                    })?;
                    st.mem.insert(id, Arc::new(Page::new(tuples)));
                    st.page_slots.insert(id, chain);
                }
                if !r.is_empty() {
                    return Err(StorageError::Corrupt("trailing bytes in directory".into()));
                }
            }
            report.pages_from_checkpoint = st.mem.len();
            // Free list = complement of the reachable slots.
            let mut used = FxHashSet::default();
            used.extend(st.dir_slots.iter().copied());
            for chain in st.page_slots.values() {
                used.extend(chain.iter().copied());
            }
            st.free_slots =
                (0..st.slot_count).filter(|s| !used.contains(s)).rev().collect();
        }

        // 2. WAL replay: current-generation records through the last
        //    commit. Stale generations (crash between header write and
        //    WAL truncate) and the uncommitted tail are discarded.
        let scan = wal::scan(&wal_bytes);
        report.torn_tail = scan.torn_tail;
        report.wal_records_scanned = scan.records.len();
        // Locate the last current-generation commit and its end offset.
        let mut keep_bytes = 0u64;
        let mut last_commit = None;
        for (i, (gen, rec)) in scan.records.iter().enumerate() {
            if *gen == st.gen {
                if let WalRecord::Commit { .. } = rec {
                    last_commit = Some(i);
                    keep_bytes = scan.end_offsets[i];
                }
            }
        }
        if let Some(last) = last_commit {
            for (gen, rec) in &scan.records[..=last] {
                if *gen != st.gen {
                    report.wal_records_discarded += 1;
                    continue;
                }
                report.wal_records_applied += 1;
                match rec {
                    WalRecord::PageWrite { page_id, image } => {
                        let tuples = codec::decode_page(image).map_err(|e| match e {
                            StorageError::Corrupt(m) => StorageError::Corrupt(format!(
                                "WAL image for page {}: {m}",
                                page_id.0
                            )),
                            other => other,
                        })?;
                        st.mem.insert(*page_id, Arc::new(Page::new(tuples)));
                        st.ckpt_dirty.insert(*page_id);
                        st.max_written_id = st.max_written_id.max(page_id.0);
                    }
                    WalRecord::PageFree { page_id } => {
                        st.mem.remove(page_id);
                        st.ckpt_dirty.remove(page_id);
                        if st.page_slots.contains_key(page_id) {
                            st.ckpt_freed.insert(*page_id);
                        }
                    }
                    WalRecord::Commit { meta } => {
                        st.committed_meta = Some(meta.clone());
                        report.commits_applied += 1;
                    }
                }
            }
        }
        report.wal_records_discarded +=
            scan.records.len() - last_commit.map_or(0, |l| l + 1);

        // 3. Truncate the discarded tail so future appends extend a valid
        //    log (replaying a rolled-back batch later would be wrong).
        if keep_bytes < wal_bytes.len() as u64 {
            wal_file.set_len(keep_bytes)?;
        }
        wal_file.seek(SeekFrom::Start(keep_bytes))?;
        st.wal_len = keep_bytes;
        st.next_page_id = st.next_page_id.max(st.max_written_id.saturating_add(1));
        page_file.seek(SeekFrom::Start(0))?;

        let store = FileStore {
            dir: dir.to_path_buf(),
            files: Mutex::new(Files { page: page_file, wal: wal_file }),
            state: Mutex::new(st),
        };
        Ok((store, report))
    }

    fn state(&self) -> MutexGuard<'_, StoreState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The page byte budget recorded in (or seeded into) the store.
    pub fn page_size(&self) -> usize {
        self.state().page_size as usize
    }

    /// First page id not yet in use; [`crate::Disk`] seeds its allocator
    /// from this at open.
    pub fn next_page_id(&self) -> u64 {
        self.state().next_page_id
    }

    /// The catalog snapshot carried by the last durable commit, if any.
    pub fn committed_meta(&self) -> Option<Vec<u8>> {
        self.state().committed_meta.clone()
    }

    /// Install a fault plan. Op counting starts from this call.
    pub fn inject_fault(&self, plan: FaultPlan) {
        let mut st = self.state();
        st.fault = Some(plan);
        st.write_ops = 0;
        st.crashed = false;
    }

    /// Physical write ops performed since open (or since the last
    /// [`FileStore::inject_fault`]). Enumerating `0..write_ops()` of a
    /// clean run is exactly the crash-site space of the sweep.
    pub fn write_ops(&self) -> u64 {
        self.state().write_ops
    }

    /// Whether a fault plan has fired. Once crashed, every durable
    /// operation is a silent no-op until the directory is reopened.
    pub fn crashed(&self) -> bool {
        self.state().crashed
    }

    /// Records appended since the last commit (page writes + frees of the
    /// open batch).
    pub fn batch_len(&self) -> usize {
        let st = self.state();
        st.batch_writes.len() + st.batch_frees.len()
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.state().wal_len
    }

    /// Commit the open batch: append redo records for every page written
    /// and freed since the last commit, then a `Commit` record carrying
    /// `meta` (an opaque catalog snapshot returned by recovery). Runs an
    /// automatic checkpoint when the WAL has grown past its threshold.
    pub fn commit(&self, meta: &[u8]) -> Result<(), StorageError> {
        let mut files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        let mut st = self.state();
        let st = &mut *st;

        let mut records = Vec::new();
        let mut seen = FxHashSet::default();
        for id in std::mem::take(&mut st.batch_writes) {
            // A page freed later in the same batch never becomes durable.
            if !seen.insert(id) || !st.mem.contains_key(&id) {
                continue;
            }
            let image = codec::encode_page(st.mem[&id].tuples());
            records.push(WalRecord::PageWrite { page_id: id, image });
            st.ckpt_dirty.insert(id);
        }
        for id in std::mem::take(&mut st.batch_frees) {
            records.push(WalRecord::PageFree { page_id: id });
            st.ckpt_dirty.remove(&id);
            if st.page_slots.contains_key(&id) {
                st.ckpt_freed.insert(id);
            }
        }
        records.push(WalRecord::Commit { meta: meta.to_vec() });

        for rec in &records {
            let bytes = wal::encode_record(st.gen, rec);
            let at = st.wal_len;
            let wrote = physical_write(st, &mut files.wal, at, &bytes)?;
            st.wal_len += wrote;
        }
        st.committed_meta = Some(meta.to_vec());
        st.commits += 1;

        if st.wal_len > AUTO_CHECKPOINT_WAL_BYTES {
            checkpoint_locked(st, &mut files)?;
        }
        Ok(())
    }

    /// Durable commits completed since open.
    pub fn commits(&self) -> u64 {
        self.state().commits
    }

    /// Checkpoints folded since open (explicit plus automatic).
    pub fn checkpoints(&self) -> u64 {
        self.state().checkpoints
    }

    /// Fold committed state into the page file and truncate the WAL. Must
    /// be called at a commit boundary (no open batch), because the page
    /// file image it publishes is the current in-memory state.
    pub fn checkpoint(&self) -> Result<(), StorageError> {
        let mut files = self.files.lock().unwrap_or_else(PoisonError::into_inner);
        let mut st = self.state();
        if !st.batch_writes.is_empty() || !st.batch_frees.is_empty() {
            return Err(StorageError::Invalid(
                "checkpoint requested mid-batch; commit first".into(),
            ));
        }
        checkpoint_locked(&mut st, &mut files)
    }

    /// Every live page, sorted by id, with its tuples — the store's full
    /// logical state, used by recovery tests to diff against a shadow
    /// oracle.
    pub fn snapshot_pages(&self) -> Vec<(PageId, Vec<nsql_types::Tuple>)> {
        let st = self.state();
        let mut out: Vec<(PageId, Vec<nsql_types::Tuple>)> =
            st.mem.iter().map(|(id, p)| (*id, p.tuples().to_vec())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Byte extents `(offset, len)` of every live chunk (header +
    /// payload, excluding slack) in the page file — the regions where a
    /// flipped bit must be *detected* at the next open. Test
    /// instrumentation for the corruption suite. Reads the file to get the
    /// exact on-disk chunk lengths.
    pub fn live_extents(&self) -> Result<Vec<(u64, u64)>, StorageError> {
        let bytes = std::fs::read(self.dir.join(PAGE_FILE))?;
        let st = self.state();
        let mut out = Vec::new();
        let mut chains: Vec<&[u64]> = vec![&st.dir_slots];
        chains.extend(st.page_slots.values().map(Vec::as_slice));
        for chain in chains {
            for &slot in chain {
                let off = slot_offset(&st, slot) as usize;
                if off + CHUNK_HEADER as usize > bytes.len() {
                    continue;
                }
                let mut r = ByteReader::new(&bytes[off + 8..]);
                let len = u64::from(r.get_u32()?);
                out.push((off as u64, CHUNK_HEADER + len));
            }
        }
        Ok(out)
    }
}

impl DiskManager for FileStore {
    fn read(&self, id: PageId) -> Arc<Page> {
        Arc::clone(
            self.state()
                .mem
                .get(&id)
                .unwrap_or_else(|| panic!("read of unallocated page {id:?}")),
        )
    }

    fn write(&self, id: PageId, page: Page) {
        let mut st = self.state();
        st.mem.insert(id, Arc::new(page));
        st.batch_writes.push(id);
        st.max_written_id = st.max_written_id.max(id.0);
        st.next_page_id = st.next_page_id.max(id.0 + 1);
    }

    fn free(&self, id: PageId) {
        let mut st = self.state();
        if st.mem.remove(&id).is_none() {
            return;
        }
        // A page born in the open batch dies with it: it was never
        // durable, so nothing needs logging (commit skips it).
        let durable = st.ckpt_dirty.contains(&id) || st.page_slots.contains_key(&id);
        if durable {
            st.batch_frees.push(id);
        }
    }

    fn live_pages(&self) -> usize {
        self.state().mem.len()
    }
}

fn slot_size_for(page_size: usize) -> u64 {
    (page_size as u64).max(128) + CHUNK_HEADER
}

fn slot_offset(st: &StoreState, slot: u64) -> u64 {
    2 * HDR_SIZE + slot * st.slot_size
}

/// One physical file write. This is *the* fault-injection site: each call
/// is one enumerable crash point. Returns the bytes logically written
/// (always `bytes.len()`; a torn write still advances the logical position
/// because the caller's state is in-memory bookkeeping, not the file).
fn physical_write(
    st: &mut StoreState,
    file: &mut File,
    offset: u64,
    bytes: &[u8],
) -> Result<u64, StorageError> {
    if st.crashed {
        return Ok(bytes.len() as u64);
    }
    let op = st.write_ops;
    st.write_ops += 1;
    if let Some(plan) = st.fault {
        if op == plan.crash_at_op {
            let torn = plan.torn_bytes.unwrap_or(0).min(bytes.len().saturating_sub(1));
            if torn > 0 {
                file.seek(SeekFrom::Start(offset))?;
                file.write_all(&bytes[..torn])?;
            }
            st.crashed = true;
            return Ok(bytes.len() as u64);
        }
    }
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(bytes)?;
    Ok(bytes.len() as u64)
}

/// One physical truncate (same op accounting as a write).
fn physical_truncate(st: &mut StoreState, file: &mut File, len: u64) -> Result<(), StorageError> {
    if st.crashed {
        return Ok(());
    }
    let op = st.write_ops;
    st.write_ops += 1;
    if let Some(plan) = st.fault {
        if op == plan.crash_at_op {
            st.crashed = true;
            return Ok(());
        }
    }
    file.set_len(len)?;
    Ok(())
}

fn alloc_slot(st: &mut StoreState) -> u64 {
    if let Some(s) = st.free_slots.pop() {
        s
    } else {
        let s = st.slot_count;
        st.slot_count += 1;
        s
    }
}

/// Write a blob as a chain of chunk slots, allocating from the free list
/// (which, during a checkpoint, excludes slots reachable from the *old*
/// header — copy-on-write, so a crash mid-checkpoint leaves the previous
/// checkpoint fully intact). Returns the chain.
fn write_chain(
    st: &mut StoreState,
    file: &mut File,
    blob: &[u8],
) -> Result<Vec<u64>, StorageError> {
    let cap = (st.slot_size - CHUNK_HEADER) as usize;
    let mut chunks: Vec<&[u8]> = blob.chunks(cap).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let slots: Vec<u64> = chunks.iter().map(|_| alloc_slot(st)).collect();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let next = slots.get(i + 1).map_or(NO_SLOT, |&s| s as i64);
        // The CRC covers the header fields too: a flipped bit in the
        // `next` pointer must not be able to splice two individually
        // valid chunks into a plausible wrong blob.
        let mut guarded = ByteWriter::new();
        guarded.put_i64(next);
        guarded.put_u32(chunk.len() as u32);
        guarded.put_bytes(chunk);
        let guarded = guarded.into_bytes();
        let crc = codec::crc32(&guarded);
        let mut w = ByteWriter::new();
        w.put_i64(next);
        w.put_u32(chunk.len() as u32);
        w.put_u32(crc);
        w.put_bytes(chunk);
        let off = slot_offset(st, slots[i]);
        physical_write(st, file, off, &w.into_bytes())?;
    }
    Ok(slots)
}

/// Read a chunk chain starting at `first`, verifying every checksum.
fn read_chain(
    file_bytes: &[u8],
    st: &StoreState,
    first: u64,
    what: &'static str,
) -> Result<(Vec<u8>, Vec<u64>), StorageError> {
    let mut blob = Vec::new();
    let mut chain = Vec::new();
    let mut slot = first as i64;
    while slot != NO_SLOT {
        let s = slot as u64;
        if s >= st.slot_count || chain.len() as u64 > st.slot_count {
            return Err(StorageError::Corrupt(format!(
                "{what}: slot pointer {s} out of range (count {})",
                st.slot_count
            )));
        }
        chain.push(s);
        let off = slot_offset(st, s) as usize;
        if off + CHUNK_HEADER as usize > file_bytes.len() {
            return Err(StorageError::Corrupt(format!("{what}: slot {s} beyond file end")));
        }
        let mut r = ByteReader::new(&file_bytes[off..]);
        let next = r.get_i64()?;
        let len = r.get_u32()? as usize;
        let crc = r.get_u32()?;
        if len as u64 > st.slot_size - CHUNK_HEADER {
            return Err(StorageError::Corrupt(format!(
                "{what}: slot {s} chunk length {len} exceeds slot size"
            )));
        }
        let start = off + CHUNK_HEADER as usize;
        if start + len > file_bytes.len() {
            return Err(StorageError::Corrupt(format!("{what}: slot {s} chunk beyond file end")));
        }
        let chunk = &file_bytes[start..start + len];
        let mut guarded = ByteWriter::new();
        guarded.put_i64(next);
        guarded.put_u32(len as u32);
        guarded.put_bytes(chunk);
        if codec::crc32(&guarded.into_bytes()) != crc {
            return Err(StorageError::Checksum {
                context: "slot chunk",
                detail: format!("{what}, slot {s}, file offset {start}"),
            });
        }
        blob.extend_from_slice(chunk);
        slot = next;
    }
    Ok((blob, chain))
}

struct Header {
    seq: u64,
    gen: u32,
    page_size: u32,
    slot_size: u32,
    slot_count: u64,
    next_page_id: u64,
    dir_slot: i64,
}

fn encode_header(st: &StoreState, dir_slot: i64) -> Vec<u8> {
    let mut p = ByteWriter::new();
    p.put_u64(MAGIC);
    p.put_u32(VERSION);
    p.put_u64(st.seq);
    p.put_u32(st.gen);
    p.put_u32(st.page_size);
    p.put_u32(st.slot_size as u32);
    p.put_u64(st.slot_count);
    p.put_u64(st.next_page_id);
    p.put_i64(dir_slot);
    let payload = p.into_bytes();
    let mut w = ByteWriter::new();
    w.put_u32(payload.len() as u32);
    w.put_u32(codec::crc32(&payload));
    w.put_bytes(&payload);
    let mut bytes = w.into_bytes();
    bytes.resize(HDR_SIZE as usize, 0);
    bytes
}

fn parse_header(bytes: &[u8]) -> Option<Header> {
    if bytes.len() < 8 || bytes.iter().all(|&b| b == 0) {
        return None;
    }
    let mut r = ByteReader::new(bytes);
    let len = r.get_u32().ok()? as usize;
    let crc = r.get_u32().ok()?;
    if 8 + len > bytes.len() {
        return None;
    }
    let payload = &bytes[8..8 + len];
    if codec::crc32(payload) != crc {
        return None;
    }
    let mut r = ByteReader::new(payload);
    if r.get_u64().ok()? != MAGIC || r.get_u32().ok()? != VERSION {
        return None;
    }
    Some(Header {
        seq: r.get_u64().ok()?,
        gen: r.get_u32().ok()?,
        page_size: r.get_u32().ok()?,
        slot_size: r.get_u32().ok()?,
        slot_count: r.get_u64().ok()?,
        next_page_id: r.get_u64().ok()?,
        dir_slot: r.get_i64().ok()?,
    })
}

/// Pick the newest valid header. `None` means a fresh store (the WAL, if
/// any, is the entire history — the legitimate state after a crash during
/// the *first* checkpoint, whose header write may itself be torn; any
/// later checkpoint always leaves the previous header intact in the
/// alternate slot). An unreadable header region with an *empty* WAL has no
/// such innocent explanation and is reported as corruption.
fn read_headers(page_bytes: &[u8], wal_empty: bool) -> Result<Option<Header>, StorageError> {
    if page_bytes.is_empty() {
        return Ok(None);
    }
    let slot_a = page_bytes.get(0..HDR_SIZE as usize).unwrap_or(&[]);
    let slot_b = page_bytes.get(HDR_SIZE as usize..2 * HDR_SIZE as usize).unwrap_or(&[]);
    let best = match (parse_header(slot_a), parse_header(slot_b)) {
        (Some(a), Some(b)) => Some(if a.seq >= b.seq { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    if best.is_none() && wal_empty {
        return Err(StorageError::Checksum {
            context: "page file header",
            detail: "no valid header and no WAL to recover from".into(),
        });
    }
    Ok(best)
}

fn checkpoint_locked(st: &mut StoreState, files: &mut Files) -> Result<(), StorageError> {
    // Copy-on-write: slots released by this checkpoint stay out of the
    // allocator until the new header lands, so the old checkpoint remains
    // fully reachable if we crash before the switch.
    let mut pending_free = Vec::new();
    for id in std::mem::take(&mut st.ckpt_freed) {
        if let Some(chain) = st.page_slots.remove(&id) {
            pending_free.extend(chain);
        }
    }
    let dirty: Vec<PageId> = {
        let mut d: Vec<PageId> = std::mem::take(&mut st.ckpt_dirty).into_iter().collect();
        d.sort();
        d
    };
    let mut image_crcs = FxHashMap::default();
    for id in dirty {
        if let Some(old) = st.page_slots.remove(&id) {
            pending_free.extend(old);
        }
        let Some(page) = st.mem.get(&id).map(Arc::clone) else { continue };
        let image = codec::encode_page(page.tuples());
        image_crcs.insert(id, codec::crc32(&image));
        let chain = write_chain(st, &mut files.page, &image)?;
        st.page_slots.insert(id, chain);
    }

    // Fresh directory: committed meta + every page's first slot and
    // whole-image CRC (the chain CRCs guard each chunk and its linkage;
    // the image CRC guards the reassembled whole).
    pending_free.extend(std::mem::take(&mut st.dir_slots));
    let mut d = ByteWriter::new();
    d.put_blob(st.committed_meta.as_deref().unwrap_or(&[]));
    d.put_u64(st.page_slots.len() as u64);
    let mut entries: Vec<(PageId, u64)> =
        st.page_slots.iter().map(|(id, chain)| (*id, chain[0])).collect();
    entries.sort();
    for (id, first) in entries {
        let crc = image_crcs.get(&id).copied().unwrap_or_else(|| {
            // Page carried over unchanged from the previous checkpoint:
            // recompute from the live image.
            codec::crc32(&codec::encode_page(st.mem[&id].tuples()))
        });
        d.put_u64(id.0);
        d.put_u64(first);
        d.put_u32(crc);
    }
    let dir_blob = d.into_bytes();
    let dir_chain = write_chain(st, &mut files.page, &dir_blob)?;
    let dir_slot = dir_chain[0] as i64;
    st.dir_slots = dir_chain;

    // Publish: the alternate header slot is the atomic switch.
    st.seq += 1;
    st.gen += 1;
    let hdr = encode_header(st, dir_slot);
    let hdr_off = (st.seq % 2) * HDR_SIZE;
    physical_write(st, &mut files.page, hdr_off, &hdr)?;

    // The WAL is now history; stale-generation records are ignored even
    // if this truncate is lost to a crash.
    physical_truncate(st, &mut files.wal, 0)?;
    st.wal_len = 0;
    st.free_slots.extend(pending_free);
    st.checkpoints += 1;
    Ok(())
}
