//! Byte codec for the durable store: a little-endian writer/reader pair,
//! an in-tree CRC-32 (IEEE), and encodings for [`Value`], [`Tuple`], page
//! images, and [`Schema`].
//!
//! The in-memory engine deliberately stores decoded tuples (the unit under
//! study is the I/O *count*); the file backend is where bytes finally
//! matter. Every durable structure is length-prefixed and CRC-guarded so a
//! torn write or a flipped bit is detected, never silently decoded.

use crate::error::StorageError;
use nsql_types::{Column, ColumnType, Date, Schema, Tuple, Value};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), table-driven.
/// Implemented in-tree: the workspace has zero crates-io dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: [u32; 256] = crc_table();
    let mut crc: u32 = !0;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Little-endian byte writer over a growable buffer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consume the writer, yielding the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32` length prefix followed by the bytes.
    pub fn put_blob(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_bytes(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_blob(s.as_bytes());
    }
}

/// Little-endian byte reader with bounds-checked accessors: every decode
/// failure is a typed [`StorageError::Corrupt`], never a panic.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt(format!(
                "truncated record: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a `u32`-length-prefixed blob.
    pub fn get_blob(&mut self) -> Result<&'a [u8], StorageError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StorageError> {
        let bytes = self.get_blob()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt("non-UTF-8 string payload".into()))
    }
}

// Value tags. Stable on-disk numbers: never renumber.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;
const TAG_BOOL: u8 = 5;

/// Encode one [`Value`].
pub fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(TAG_NULL),
        Value::Int(i) => {
            w.put_u8(TAG_INT);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(TAG_FLOAT);
            w.put_u64(f.to_bits());
        }
        Value::Str(s) => {
            w.put_u8(TAG_STR);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(TAG_DATE);
            w.put_u32(d.year() as u32);
            w.put_u8(d.month());
            w.put_u8(d.day());
        }
        Value::Bool(b) => {
            w.put_u8(TAG_BOOL);
            w.put_u8(u8::from(*b));
        }
    }
}

/// Decode one [`Value`].
pub fn get_value(r: &mut ByteReader<'_>) -> Result<Value, StorageError> {
    match r.get_u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.get_i64()?)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(r.get_u64()?))),
        TAG_STR => Ok(Value::Str(r.get_str()?)),
        TAG_DATE => {
            let year = r.get_u32()? as i32;
            let month = r.get_u8()?;
            let day = r.get_u8()?;
            Date::new(year, month, day)
                .map(Value::Date)
                .map_err(|e| StorageError::Corrupt(format!("invalid stored date: {e}")))
        }
        TAG_BOOL => Ok(Value::Bool(r.get_u8()? != 0)),
        tag => Err(StorageError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Encode one [`Tuple`] (arity-prefixed run of values).
pub fn put_tuple(w: &mut ByteWriter, t: &Tuple) {
    w.put_u32(t.values().len() as u32);
    for v in t.values() {
        put_value(w, v);
    }
}

/// Decode one [`Tuple`].
pub fn get_tuple(r: &mut ByteReader<'_>) -> Result<Tuple, StorageError> {
    let arity = r.get_u32()? as usize;
    if arity > r.remaining() {
        // Each value takes at least one tag byte; reject absurd arities
        // before allocating.
        return Err(StorageError::Corrupt(format!("tuple arity {arity} exceeds payload")));
    }
    let mut vals = Vec::with_capacity(arity);
    for _ in 0..arity {
        vals.push(get_value(r)?);
    }
    Ok(Tuple::new(vals))
}

/// Encode a page image: a count-prefixed run of tuples.
pub fn encode_page(tuples: &[Tuple]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(tuples.len() as u32);
    for t in tuples {
        put_tuple(&mut w, t);
    }
    w.into_bytes()
}

/// Decode a page image produced by [`encode_page`].
pub fn decode_page(bytes: &[u8]) -> Result<Vec<Tuple>, StorageError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u32()? as usize;
    if n > r.remaining() {
        return Err(StorageError::Corrupt(format!("page tuple count {n} exceeds payload")));
    }
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        tuples.push(get_tuple(&mut r)?);
    }
    if !r.is_empty() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after page image",
            r.remaining()
        )));
    }
    Ok(tuples)
}

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const TYPE_STR: u8 = 2;
const TYPE_DATE: u8 = 3;
const TYPE_BOOL: u8 = 4;

fn put_column_type(w: &mut ByteWriter, ty: ColumnType) {
    w.put_u8(match ty {
        ColumnType::Int => TYPE_INT,
        ColumnType::Float => TYPE_FLOAT,
        ColumnType::Str => TYPE_STR,
        ColumnType::Date => TYPE_DATE,
        ColumnType::Bool => TYPE_BOOL,
    });
}

fn get_column_type(r: &mut ByteReader<'_>) -> Result<ColumnType, StorageError> {
    match r.get_u8()? {
        TYPE_INT => Ok(ColumnType::Int),
        TYPE_FLOAT => Ok(ColumnType::Float),
        TYPE_STR => Ok(ColumnType::Str),
        TYPE_DATE => Ok(ColumnType::Date),
        TYPE_BOOL => Ok(ColumnType::Bool),
        tag => Err(StorageError::Corrupt(format!("unknown column type tag {tag}"))),
    }
}

/// Encode a [`Schema`] (column qualifiers, names, types).
pub fn put_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u32(schema.arity() as u32);
    for col in schema.columns() {
        match &col.table {
            Some(t) => {
                w.put_u8(1);
                w.put_str(t);
            }
            None => w.put_u8(0),
        }
        w.put_str(&col.name);
        put_column_type(w, col.ty);
    }
}

/// Decode a [`Schema`] produced by [`put_schema`].
pub fn get_schema(r: &mut ByteReader<'_>) -> Result<Schema, StorageError> {
    let arity = r.get_u32()? as usize;
    if arity > r.remaining() {
        return Err(StorageError::Corrupt(format!("schema arity {arity} exceeds payload")));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let has_table = r.get_u8()? != 0;
        let table = if has_table { Some(r.get_str()?) } else { None };
        let name = r.get_str()?;
        let ty = get_column_type(r)?;
        cols.push(match table {
            Some(t) => Column::qualified(t, name, ty),
            None => Column::new(name, ty),
        });
    }
    Ok(Schema::new(cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::NAN),
            Value::str("héllo"),
            Value::str(""),
            Value::Date(Date::new(1980, 1, 1).unwrap()),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let mut w = ByteWriter::new();
        for v in &vals {
            put_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &vals {
            let back = get_value(&mut r).unwrap();
            // NaN != NaN under PartialEq; compare via the engine's total order.
            assert_eq!(v.total_cmp(&back), std::cmp::Ordering::Equal);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn page_roundtrip() {
        let tuples = vec![
            Tuple::new(vec![Value::Int(1), Value::str("a")]),
            Tuple::new(vec![Value::Null, Value::str("b")]),
        ];
        let bytes = encode_page(&tuples);
        let back = decode_page(&bytes).unwrap();
        assert_eq!(back, tuples);
    }

    #[test]
    fn truncated_page_is_typed_corruption() {
        let tuples = vec![Tuple::new(vec![Value::Int(1), Value::str("abcdef")])];
        let bytes = encode_page(&tuples);
        for cut in 0..bytes.len() {
            let err = decode_page(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::new(vec![
            Column::qualified("PARTS", "PNUM", ColumnType::Int),
            Column::new("QOH", ColumnType::Int),
            Column::qualified("SUPPLY", "SHIPDATE", ColumnType::Date),
        ]);
        let mut w = ByteWriter::new();
        put_schema(&mut w, &schema);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_schema(&mut r).unwrap(), schema);
        assert!(r.is_empty());
    }
}
