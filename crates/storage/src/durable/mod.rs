//! The durable (file-backed) storage backend.
//!
//! * [`codec`] — little-endian byte codec, in-tree CRC-32, value/tuple/
//!   page/schema encodings.
//! * [`wal`] — write-ahead log record framing and the replay scanner.
//! * [`file_store`] — the slotted page file, checkpointing, recovery, and
//!   deterministic fault injection.

pub mod codec;
pub mod file_store;
pub mod wal;

pub use file_store::{FaultPlan, FileStore, RecoveryReport, PAGE_FILE, WAL_FILE};
