//! Write-ahead log record format and replay scanner.
//!
//! The WAL is an append-only file of checksummed records. Each record is
//!
//! ```text
//! [len: u32] [crc: u32] [payload: len bytes]
//! payload := [gen: u32] [kind: u8] [body]
//! ```
//!
//! `crc` covers the payload, so a torn append (short write at a crash
//! point) or a flipped bit fails verification. Replay stops at the first
//! invalid record: everything before it is the durable tail, everything at
//! and after it is discarded. Records carry the store *generation*: a
//! checkpoint bumps the generation and truncates the log, so a record from
//! a stale generation (a crash landed between the header write and the
//! truncate) is recognized and ignored rather than replayed twice.
//!
//! Record kinds:
//!
//! * `PageWrite { page_id, image }` — the full post-image of a page. Pages
//!   in this engine are immutable once written, so physiological logging
//!   degenerates to whole-image redo logging; there is no undo.
//! * `PageFree { page_id }` — the page was deallocated.
//! * `Commit { meta }` — batch boundary. `meta` is an opaque catalog
//!   snapshot supplied by the layer above. Recovery replays records only
//!   up to (and including) the **last valid commit**; a batch whose commit
//!   record never landed is rolled back wholesale.

use super::codec::{crc32, ByteReader, ByteWriter};
use crate::error::StorageError;
use crate::PageId;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Full post-image of page `page_id`.
    PageWrite {
        /// The page being written.
        page_id: PageId,
        /// Encoded page image (see `codec::encode_page`).
        image: Vec<u8>,
    },
    /// Page `page_id` was freed.
    PageFree {
        /// The page being freed.
        page_id: PageId,
    },
    /// Batch boundary carrying an opaque metadata snapshot.
    Commit {
        /// Catalog snapshot bytes (opaque to the storage layer).
        meta: Vec<u8>,
    },
}

const KIND_PAGE_WRITE: u8 = 1;
const KIND_PAGE_FREE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// Serialize a record (with its generation stamp) into the on-disk framing.
pub fn encode_record(gen: u32, rec: &WalRecord) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.put_u32(gen);
    match rec {
        WalRecord::PageWrite { page_id, image } => {
            body.put_u8(KIND_PAGE_WRITE);
            body.put_u64(page_id.0);
            body.put_blob(image);
        }
        WalRecord::PageFree { page_id } => {
            body.put_u8(KIND_PAGE_FREE);
            body.put_u64(page_id.0);
        }
        WalRecord::Commit { meta } => {
            body.put_u8(KIND_COMMIT);
            body.put_blob(meta);
        }
    }
    let payload = body.into_bytes();
    let mut framed = ByteWriter::new();
    framed.put_u32(payload.len() as u32);
    framed.put_u32(crc32(&payload));
    framed.put_bytes(&payload);
    framed.into_bytes()
}

/// Result of scanning a WAL file image.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Valid records in append order, each with its generation stamp.
    pub records: Vec<(u32, WalRecord)>,
    /// Byte offset just past each record, parallel to `records` (used by
    /// recovery to truncate the log after the last durable commit).
    pub end_offsets: Vec<u64>,
    /// Whether the scan stopped early on a torn or corrupt tail (the bytes
    /// from that point on are discarded).
    pub torn_tail: bool,
}

/// Scan a WAL image, stopping at the first torn or corrupt record.
///
/// A short or checksum-failing record is *expected* after a crash (the
/// append was interrupted) and is reported via [`WalScan::torn_tail`], not
/// as an error: the log's contract is exactly that its valid prefix is the
/// durable history.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut out = WalScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            out.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + 8;
        if len > bytes.len() - start {
            out.torn_tail = true;
            break;
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            out.torn_tail = true;
            break;
        }
        match decode_payload(payload) {
            Ok((gen, rec)) => {
                out.records.push((gen, rec));
                out.end_offsets.push((start + len) as u64);
            }
            Err(_) => {
                // The checksum held but the payload decoded to nonsense:
                // treat it like a torn tail — the valid prefix stands.
                out.torn_tail = true;
                break;
            }
        }
        pos = start + len;
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<(u32, WalRecord), StorageError> {
    let mut r = ByteReader::new(payload);
    let gen = r.get_u32()?;
    let rec = match r.get_u8()? {
        KIND_PAGE_WRITE => {
            let page_id = PageId(r.get_u64()?);
            let image = r.get_blob()?.to_vec();
            WalRecord::PageWrite { page_id, image }
        }
        KIND_PAGE_FREE => WalRecord::PageFree { page_id: PageId(r.get_u64()?) },
        KIND_COMMIT => WalRecord::Commit { meta: r.get_blob()?.to_vec() },
        kind => return Err(StorageError::Corrupt(format!("unknown WAL record kind {kind}"))),
    };
    if !r.is_empty() {
        return Err(StorageError::Corrupt("trailing bytes in WAL record".into()));
    }
    Ok((gen, rec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::PageWrite { page_id: PageId(3), image: vec![1, 2, 3, 4] },
            WalRecord::PageFree { page_id: PageId(1) },
            WalRecord::Commit { meta: b"snapshot".to_vec() },
        ]
    }

    #[test]
    fn roundtrip_scan() {
        let mut file = Vec::new();
        for rec in sample_records() {
            file.extend(encode_record(7, &rec));
        }
        let scan = scan(&file);
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 3);
        assert!(scan.records.iter().all(|(g, _)| *g == 7));
        assert_eq!(scan.records[2].1, WalRecord::Commit { meta: b"snapshot".to_vec() });
    }

    #[test]
    fn every_torn_prefix_yields_valid_records_only() {
        let mut file = Vec::new();
        let mut boundaries = vec![0usize];
        for rec in sample_records() {
            file.extend(encode_record(0, &rec));
            boundaries.push(file.len());
        }
        for cut in 0..file.len() {
            let s = scan(&file[..cut]);
            // The number of whole records before the cut.
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(s.records.len(), whole, "cut at {cut}");
            assert_eq!(s.torn_tail, !boundaries.contains(&cut), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_stops_scan() {
        let mut file = Vec::new();
        for rec in sample_records() {
            file.extend(encode_record(0, &rec));
        }
        // Flip a byte inside the first record's payload.
        let mut bad = file.clone();
        bad[10] ^= 0x40;
        let s = scan(&bad);
        assert!(s.torn_tail);
        assert!(s.records.is_empty());
    }

    #[test]
    fn oversized_len_is_torn_not_panic() {
        let mut file = encode_record(0, &WalRecord::PageFree { page_id: PageId(0) });
        // Forge a huge length in a second record header.
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&[0; 16]);
        let s = scan(&file);
        assert_eq!(s.records.len(), 1);
        assert!(s.torn_tail);
    }
}
