//! Shared I/O counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of disk activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Pages read from disk.
    pub reads: u64,
    /// Pages written to disk.
    pub writes: u64,
}

impl IoStats {
    /// Total page I/Os (the paper's metric).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} page I/Os ({} reads, {} writes)", self.total(), self.reads, self.writes)
    }
}

/// Atomic counter shared by the disk and anything observing it.
///
/// Counts use `Relaxed` ordering: each increment is an independent event
/// and queries snapshot only at quiescent points (after all workers have
/// joined), so no ordering between the two counters is required.
#[derive(Debug, Default)]
pub struct IoCounter {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoCounter {
    /// Fresh shared counter.
    pub fn shared() -> Arc<IoCounter> {
        Arc::new(IoCounter::default())
    }

    /// Record a page read.
    pub fn count_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a page write.
    pub fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_snapshots() {
        let c = IoCounter::shared();
        c.count_read();
        c.count_read();
        c.count_write();
        let s = c.snapshot();
        assert_eq!((s.reads, s.writes, s.total()), (2, 1, 3));
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn since_subtracts() {
        let a = IoStats { reads: 10, writes: 5 };
        let b = IoStats { reads: 25, writes: 9 };
        assert_eq!(b.since(&a), IoStats { reads: 15, writes: 4 });
    }
}
