//! Shared I/O counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of disk activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Pages read from disk.
    pub reads: u64,
    /// Pages written to disk.
    pub writes: u64,
}

impl IoStats {
    /// Total page I/Os (the paper's metric).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} page I/Os ({} reads, {} writes)", self.total(), self.reads, self.writes)
    }
}

/// Atomically consistent snapshot of disk *and* buffer-pool activity.
///
/// The reads/writes pair comes from a single atomic load of the packed
/// [`IoCounter`] word, so the pair can never be torn: a snapshot taken
/// while other threads count I/Os always shows a (reads, writes) state
/// the counter actually passed through. Hits/misses come from the buffer
/// pool's own mutex-guarded counters, which are consistent with each
/// other by construction.
///
/// Use a start/stop pair with [`since`](IoSnapshot::since) to attribute a
/// delta to a region of work, instead of subtracting individually loaded
/// counters (which races).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages read from disk.
    pub reads: u64,
    /// Pages written to disk.
    pub writes: u64,
    /// Buffer-pool hits.
    pub hits: u64,
    /// Buffer-pool misses.
    pub misses: u64,
}

impl IoSnapshot {
    /// Delta since an earlier snapshot (start/stop pairing). Saturating,
    /// so a counter reset between the two snapshots cannot underflow.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }

    /// Total page I/Os (the paper's metric).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Just the disk half, as the legacy [`IoStats`] type.
    pub fn io_stats(&self) -> IoStats {
        IoStats { reads: self.reads, writes: self.writes }
    }
}

/// Atomic counter shared by the disk and anything observing it.
///
/// Reads and writes are packed into ONE `AtomicU64` — reads in the low 32
/// bits, writes in the high 32 — so `snapshot()` is a single load that
/// yields an untearable (reads, writes) pair even while 8 threads count
/// concurrently. A bounded simulation stays far below the 2^32 per-field
/// capacity (the largest workload here is ~10^5 I/Os).
///
/// Counts use `Relaxed` ordering: each increment is an independent event;
/// consistency of the pair comes from the packing, not from ordering.
#[derive(Debug, Default)]
pub struct IoCounter {
    packed: AtomicU64,
}

const WRITE_UNIT: u64 = 1 << 32;
const READ_MASK: u64 = WRITE_UNIT - 1;

impl IoCounter {
    /// Fresh shared counter.
    pub fn shared() -> Arc<IoCounter> {
        Arc::new(IoCounter::default())
    }

    /// Record a page read.
    pub fn count_read(&self) {
        self.packed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a page write.
    pub fn count_write(&self) {
        self.packed.fetch_add(WRITE_UNIT, Ordering::Relaxed);
    }

    /// Snapshot: one atomic load, so the pair is never torn.
    pub fn snapshot(&self) -> IoStats {
        let packed = self.packed.load(Ordering::Relaxed);
        IoStats { reads: packed & READ_MASK, writes: packed >> 32 }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.packed.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counting_and_snapshots() {
        let c = IoCounter::shared();
        c.count_read();
        c.count_read();
        c.count_write();
        let s = c.snapshot();
        assert_eq!((s.reads, s.writes, s.total()), (2, 1, 3));
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn since_subtracts() {
        let a = IoStats { reads: 10, writes: 5 };
        let b = IoStats { reads: 25, writes: 9 };
        assert_eq!(b.since(&a), IoStats { reads: 15, writes: 4 });
    }

    #[test]
    fn snapshot_since_pairs_and_totals() {
        let a = IoSnapshot { reads: 10, writes: 4, hits: 7, misses: 3 };
        let b = IoSnapshot { reads: 15, writes: 6, hits: 9, misses: 8 };
        let d = b.since(&a);
        assert_eq!(d, IoSnapshot { reads: 5, writes: 2, hits: 2, misses: 5 });
        assert_eq!(d.total(), 7);
        assert_eq!(d.io_stats(), IoStats { reads: 5, writes: 2 });
        // Reset between snapshots saturates instead of underflowing.
        assert_eq!(a.since(&b), IoSnapshot::default());
    }

    /// 8 threads each count read-then-write in lockstep pairs while a
    /// snapshotting thread hammers `snapshot()`. With each thread's
    /// in-flight gap at most one counted read, every observed pair must
    /// satisfy `writes <= reads <= writes + nthreads`. A torn pair (e.g.
    /// reads from before a concurrent write, writes from after) would
    /// violate the bound; the single-load packing makes it impossible.
    #[test]
    fn snapshot_pairs_are_untearable_under_8_threads() {
        const THREADS: u64 = 8;
        const PAIRS: u64 = 20_000;
        let c = IoCounter::shared();
        thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PAIRS {
                        c.count_read();
                        c.count_write();
                    }
                });
            }
            let c = Arc::clone(&c);
            s.spawn(move || {
                loop {
                    let snap = c.snapshot();
                    assert!(
                        snap.writes <= snap.reads && snap.reads <= snap.writes + THREADS,
                        "torn snapshot: {snap:?}"
                    );
                    if snap.writes == THREADS * PAIRS {
                        break;
                    }
                }
            });
        });
        let done = c.snapshot();
        assert_eq!((done.reads, done.writes), (THREADS * PAIRS, THREADS * PAIRS));
    }
}
