//! Heap files: paged, unordered tuple files.

use crate::disk::PageId;
use crate::Storage;
use nsql_types::{Schema, Tuple};
use std::sync::Arc;

/// An immutable paged file of tuples with a schema.
///
/// Heap files are built once (from a tuple stream) and then scanned; the
/// engine materializes every intermediate relation — temporary tables, sort
/// runs, join results — as a heap file, so all I/O flows through the counted
/// disk.
#[derive(Clone)]
pub struct HeapFile {
    schema: Schema,
    pages: Arc<Vec<PageId>>,
    tuple_count: usize,
}

impl HeapFile {
    /// Build a heap file by packing `tuples` into pages of
    /// `storage.page_size()` bytes (at least one tuple per page). Costs one
    /// write per produced page. An empty input produces zero pages.
    pub fn from_tuples(
        storage: &Storage,
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> HeapFile {
        Self::pack(schema, tuples, storage.page_size(), |ts| storage.write_new_page(ts))
    }

    /// Build a heap file on uncounted *system* pages (see
    /// [`Storage::store_relation_system`]): identical packing to
    /// [`HeapFile::from_tuples`], zero counted I/O.
    pub fn from_tuples_system(
        storage: &Storage,
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> HeapFile {
        Self::pack(schema, tuples, storage.page_size(), |ts| storage.write_new_system_page(ts))
    }

    /// Shared byte-budget packing loop behind both constructors.
    fn pack(
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
        budget: usize,
        mut write: impl FnMut(Vec<Tuple>) -> PageId,
    ) -> HeapFile {
        let mut pages = Vec::new();
        let mut current: Vec<Tuple> = Vec::new();
        let mut used = 0usize;
        let mut tuple_count = 0usize;
        for t in tuples {
            debug_assert_eq!(t.arity(), schema.arity(), "tuple arity must match heap schema");
            let w = t.storage_width();
            if !current.is_empty() && used + w > budget {
                pages.push(write(std::mem::take(&mut current)));
                used = 0;
            }
            used += w;
            tuple_count += 1;
            current.push(t);
        }
        if !current.is_empty() {
            pages.push(write(current));
        }
        HeapFile { schema, pages: Arc::new(pages), tuple_count }
    }

    /// Reassemble a heap file from previously persisted metadata (schema,
    /// page ids in file order, tuple count). No I/O — the pages are assumed
    /// to exist in the underlying store. Used by catalog recovery when a
    /// file-backed database reopens.
    pub fn from_parts(schema: Schema, pages: Vec<PageId>, tuple_count: usize) -> HeapFile {
        HeapFile { schema, pages: Arc::new(pages), tuple_count }
    }

    /// The tuple schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A copy of this file's metadata with columns re-qualified to `name`
    /// (no I/O — the pages are shared). Used when a temporary table result
    /// is registered under a new name.
    pub fn with_schema(&self, schema: Schema) -> HeapFile {
        assert_eq!(schema.arity(), self.schema.arity());
        HeapFile { schema, pages: Arc::clone(&self.pages), tuple_count: self.tuple_count }
    }

    /// Number of pages (the paper's `P`).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of tuples (the paper's `N`).
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// The page ids, in file order.
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    /// Scan all tuples through the buffer pool.
    pub fn scan(&self, storage: &Storage) -> HeapScan {
        HeapScan {
            storage: storage.clone(),
            pages: Arc::clone(&self.pages),
            direct: false,
            page_idx: 0,
            tuple_idx: 0,
            current: None,
        }
    }

    /// Scan bypassing the buffer pool (sort passes; see
    /// [`Storage::read_page_direct`]).
    pub fn scan_direct(&self, storage: &Storage) -> HeapScan {
        HeapScan {
            storage: storage.clone(),
            pages: Arc::clone(&self.pages),
            direct: true,
            page_idx: 0,
            tuple_idx: 0,
            current: None,
        }
    }

    /// Free every page of this file (no I/O).
    pub fn drop_pages(&self, storage: &Storage) {
        for &id in self.pages.iter() {
            storage.free_page(id);
        }
    }

    /// Visit every tuple in place on its buffered page, stopping at the
    /// first error. The zero-clone counterpart of `scan` for consumers that
    /// fold rather than collect (e.g. sorted-stream aggregation).
    pub fn try_for_each<E, F>(&self, storage: &Storage, mut f: F) -> std::result::Result<(), E>
    where
        F: FnMut(&Tuple) -> std::result::Result<(), E>,
    {
        for &id in self.pages.iter() {
            let page = storage.read_page(id);
            for t in page.tuples() {
                f(t)?;
            }
        }
        Ok(())
    }

    /// Scan through the buffer pool, applying `f` to each tuple *in place*
    /// on the buffered page and yielding only what `f` keeps. Unlike
    /// [`scan`](HeapFile::scan)`.filter_map(..)`, tuples `f` rejects are
    /// never cloned off the page — this is the zero-copy path for
    /// filter/project operators, whose output iterator can stream straight
    /// into [`HeapFile::from_tuples`]. Page reads happen in the same order
    /// as a plain scan, so buffer-pool behaviour (and counted I/O) is
    /// unchanged.
    pub fn scan_with<F>(&self, storage: &Storage, f: F) -> ScanWith<F>
    where
        F: FnMut(&Tuple) -> Option<Tuple>,
    {
        ScanWith {
            storage: storage.clone(),
            pages: Arc::clone(&self.pages),
            page_idx: 0,
            tuple_idx: 0,
            current: None,
            f,
        }
    }
}

/// Streaming iterator created by [`HeapFile::scan_with`].
pub struct ScanWith<F> {
    storage: Storage,
    pages: Arc<Vec<PageId>>,
    page_idx: usize,
    tuple_idx: usize,
    current: Option<Arc<crate::disk::Page>>,
    f: F,
}

impl<F> Iterator for ScanWith<F>
where
    F: FnMut(&Tuple) -> Option<Tuple>,
{
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(page) = &self.current {
                while self.tuple_idx < page.len() {
                    let t = &page.tuples()[self.tuple_idx];
                    self.tuple_idx += 1;
                    if let Some(out) = (self.f)(t) {
                        return Some(out);
                    }
                }
                self.current = None;
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let id = self.pages[self.page_idx];
            self.page_idx += 1;
            self.tuple_idx = 0;
            self.current = Some(self.storage.read_page(id));
        }
    }
}

/// Streaming iterator over a heap file's tuples.
pub struct HeapScan {
    storage: Storage,
    pages: Arc<Vec<PageId>>,
    direct: bool,
    page_idx: usize,
    tuple_idx: usize,
    current: Option<Arc<crate::disk::Page>>,
}

impl Iterator for HeapScan {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(page) = &self.current {
                if self.tuple_idx < page.len() {
                    let t = page.tuples()[self.tuple_idx].clone();
                    self.tuple_idx += 1;
                    return Some(t);
                }
                self.current = None;
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let id = self.pages[self.page_idx];
            self.page_idx += 1;
            self.tuple_idx = 0;
            self.current = Some(if self.direct {
                self.storage.read_page_direct(id)
            } else {
                self.storage.read_page(id)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("A", ColumnType::Int)])
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn empty_file_has_no_pages() {
        let st = Storage::with_defaults();
        let f = HeapFile::from_tuples(&st, schema(), Vec::new());
        assert_eq!(f.page_count(), 0);
        assert_eq!(f.scan(&st).count(), 0);
    }

    #[test]
    fn scan_preserves_order() {
        let st = Storage::with_defaults();
        let f = HeapFile::from_tuples(&st, schema(), tuples(300));
        let vals: Vec<i64> = f
            .scan(&st)
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn pages_fill_to_budget() {
        let st = Storage::new(4, 100);
        let f = HeapFile::from_tuples(&st, schema(), tuples(100));
        // width = 2 + 8 = 10 bytes, so 10 tuples per 100-byte page.
        assert_eq!(f.page_count(), 10);
        assert_eq!(f.tuple_count(), 100);
    }

    #[test]
    fn drop_pages_frees_disk() {
        let st = Storage::with_defaults();
        let f = HeapFile::from_tuples(&st, schema(), tuples(50));
        assert!(f.page_count() > 0);
        f.drop_pages(&st);
        // A subsequent scan would panic (pages freed); just check liveness
        // via a fresh write reusing nothing.
        let g = HeapFile::from_tuples(&st, schema(), tuples(1));
        assert_eq!(g.page_count(), 1);
    }
}
