//! Typed storage-engine failures.
//!
//! Durable-store problems are *data-dependent* conditions (a torn file, a
//! flipped bit, a crashed process), never engine bugs, so they surface as
//! values rather than panics. The variants keep `Clone + PartialEq` so they
//! can ride inside `EngineError` and be asserted on in tests.

use std::fmt;

/// Failures raised by the durable (file-backed) page store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O failure (message-stringified so the error
    /// stays `Clone`/`PartialEq`).
    Io(String),
    /// A checksum did not verify. `context` names the structure (page
    /// image, WAL record, header, directory) and `detail` locates it.
    Checksum {
        /// What failed to verify (e.g. `"page image"`, `"slot chunk"`).
        context: &'static str,
        /// Where (file offset, page id, slot index — human-readable).
        detail: String,
    },
    /// A structure decoded to something impossible (bad magic, truncated
    /// payload, out-of-range slot pointer).
    Corrupt(String),
    /// An API precondition was violated (e.g. checkpoint requested in the
    /// middle of an uncommitted batch).
    Invalid(String),
    /// The store has already simulated a crash (fault injection): further
    /// durable operations are refused until the store is reopened.
    Crashed,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "storage I/O error: {m}"),
            StorageError::Checksum { context, detail } => {
                write!(f, "checksum mismatch in {context}: {detail}")
            }
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::Invalid(m) => write!(f, "invalid storage operation: {m}"),
            StorageError::Crashed => write!(f, "store crashed (fault injection); reopen to recover"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
