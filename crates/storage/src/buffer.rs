//! A `B`-frame LRU buffer pool in front of the simulated disk.
//!
//! The pool caches read pages; a hit costs no I/O, a miss costs one read and
//! may evict the least-recently-used frame. Pages are immutable after
//! creation (heap files are append-built and temporaries are written whole),
//! so eviction never writes back — all write I/O is counted at file-creation
//! time, matching how the paper's cost formulas charge `Pt` once per
//! temporary.

use crate::disk::{Disk, Page, PageId};
use std::collections::HashMap;
use std::rc::Rc;

struct Frame {
    page: Rc<Page>,
    last_used: u64,
}

/// LRU page cache with a fixed number of frames.
pub struct BufferPool {
    disk: Rc<Disk>,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Pool with `capacity` frames (minimum 1).
    pub fn new(disk: Rc<Disk>, capacity: usize) -> BufferPool {
        BufferPool {
            disk,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fetch a page, consulting the cache first.
    pub fn get(&mut self, id: PageId) -> Rc<Page> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(frame) = self.frames.get_mut(&id) {
            frame.last_used = clock;
            self.hits += 1;
            return Rc::clone(&frame.page);
        }
        self.misses += 1;
        let page = self.disk.read(id);
        if self.frames.len() >= self.capacity {
            self.evict_lru();
        }
        self.frames.insert(id, Frame { page: Rc::clone(&page), last_used: clock });
        page
    }

    fn evict_lru(&mut self) {
        if let Some((&victim, _)) = self.frames.iter().min_by_key(|(_, f)| f.last_used) {
            self.frames.remove(&victim);
        }
    }

    /// Drop a specific page from the cache (used when a page is freed).
    pub fn evict(&mut self, id: PageId) {
        self.frames.remove(&id);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Zero hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of cached pages (≤ capacity; for invariant tests).
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Tuple, Value};

    fn disk_with_pages(n: u64) -> (Rc<Disk>, Vec<PageId>) {
        let disk = Rc::new(Disk::new());
        let ids: Vec<PageId> = (0..n)
            .map(|i| {
                let id = disk.alloc();
                disk.write(id, Page::new(vec![Tuple::new(vec![Value::Int(i as i64)])]));
                id
            })
            .collect();
        disk.reset_stats();
        (disk, ids)
    }

    #[test]
    fn hit_costs_no_io() {
        let (disk, ids) = disk_with_pages(1);
        let mut pool = BufferPool::new(Rc::clone(&disk), 2);
        pool.get(ids[0]);
        pool.get(ids[0]);
        assert_eq!(disk.stats().reads, 1);
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
    }

    #[test]
    fn never_exceeds_capacity() {
        let (disk, ids) = disk_with_pages(10);
        let mut pool = BufferPool::new(disk, 3);
        for &id in &ids {
            pool.get(id);
            assert!(pool.resident() <= 3);
        }
    }

    #[test]
    fn evicts_least_recently_used() {
        let (disk, ids) = disk_with_pages(3);
        let mut pool = BufferPool::new(Rc::clone(&disk), 2);
        pool.get(ids[0]); // miss
        pool.get(ids[1]); // miss
        pool.get(ids[0]); // hit — makes ids[1] the LRU
        pool.get(ids[2]); // miss, evicts ids[1]
        pool.get(ids[0]); // hit — still resident
        pool.get(ids[1]); // miss — was evicted
        assert_eq!(disk.stats().reads, 4);
    }

    #[test]
    fn cyclic_scan_beyond_capacity_thrashes() {
        // Sequential rescan pattern with LRU: every access misses once the
        // working set exceeds the pool. This is the nested-iteration
        // worst case from the paper.
        let (disk, ids) = disk_with_pages(4);
        let mut pool = BufferPool::new(Rc::clone(&disk), 3);
        for _ in 0..3 {
            for &id in &ids {
                pool.get(id);
            }
        }
        assert_eq!(disk.stats().reads, 12, "every access must miss");
    }

    #[test]
    fn clear_empties_pool() {
        let (disk, ids) = disk_with_pages(2);
        let mut pool = BufferPool::new(disk, 2);
        pool.get(ids[0]);
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }
}
