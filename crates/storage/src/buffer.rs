//! A `B`-frame LRU buffer pool in front of the simulated disk.
//!
//! The pool caches read pages; a hit costs no I/O, a miss costs one read and
//! may evict the least-recently-used frame. Pages are immutable after
//! creation (heap files are append-built and temporaries are written whole),
//! so eviction never writes back — all write I/O is counted at file-creation
//! time, matching how the paper's cost formulas charge `Pt` once per
//! temporary.
//!
//! # Implementation
//!
//! Recency is tracked by an intrusive doubly-linked list threaded through a
//! slab of frames: `head` is the most recently used frame, `tail` the least.
//! Every operation on the hot path — hit, miss, eviction — is O(1): a hit
//! unlinks the frame and relinks it at the head; a miss evicts the tail
//! frame and links the new page at the head. The `PageId → slot` map uses
//! the deterministic [`FxHashMap`] from `nsql-types`.
//!
//! Because `get` strictly interleaves "touch" and "evict" events, this list
//! discipline selects exactly the same victim as a timestamped
//! `min_by_key(last_used)` scan would (timestamps are distinct, so the
//! minimum is unique) — the property test in `tests/buffer_prop.rs` replays
//! randomized traces against that naive model and demands identical
//! hit/miss/resident evolution.
//!
//! Frames can be [`pin`](BufferPool::pin)ned to exempt them from eviction
//! (e.g. a page an operator is mid-iteration over). Eviction walks from the
//! tail past pinned frames; with no frames pinned this is a single step.

use crate::disk::{Disk, Page, PageId};
use nsql_types::FxHashMap;
use std::sync::Arc;

/// Sentinel slot index meaning "no frame" (list terminator / free slot).
const NIL: usize = usize::MAX;

struct Frame {
    id: PageId,
    page: Arc<Page>,
    /// Slot index of the next more-recently-used frame (`NIL` at the head).
    prev: usize,
    /// Slot index of the next less-recently-used frame (`NIL` at the tail).
    next: usize,
    pins: u32,
}

/// LRU page cache with a fixed number of frames and O(1) get/evict.
pub struct BufferPool {
    disk: Arc<Disk>,
    capacity: usize,
    /// Frame slab; slots are recycled through `free`.
    slots: Vec<Frame>,
    /// Indices of unused slots in `slots`.
    free: Vec<usize>,
    /// Resident-page index into the slab.
    map: FxHashMap<PageId, usize>,
    /// Most recently used frame, or `NIL` when empty.
    head: usize,
    /// Least recently used frame, or `NIL` when empty.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Pool with `capacity` frames (minimum 1).
    pub fn new(disk: Arc<Disk>, capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            disk,
            capacity,
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            map: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fetch a page, consulting the cache first.
    pub fn get(&mut self, id: PageId) -> Arc<Page> {
        if let Some(&slot) = self.map.get(&id) {
            self.hits += 1;
            self.unlink(slot);
            self.link_front(slot);
            return Arc::clone(&self.slots[slot].page);
        }
        self.misses += 1;
        let page = self.disk.read(id);
        // Evict back below capacity. Normally one step; the loop matters
        // only after a period of heavy pinning forced the pool to grow past
        // capacity — it reclaims the excess as pins are released. If every
        // frame is pinned no progress is possible and the pool grows.
        while self.map.len() >= self.capacity {
            let before = self.map.len();
            self.evict_lru();
            if self.map.len() == before {
                break;
            }
        }
        let slot = self.alloc_slot(Frame {
            id,
            page: Arc::clone(&page),
            prev: NIL,
            next: NIL,
            pins: 0,
        });
        self.link_front(slot);
        self.map.insert(id, slot);
        page
    }

    /// Exempt a resident page from eviction. Returns `false` if the page is
    /// not resident. Pins nest; each `pin` needs a matching
    /// [`unpin`](BufferPool::unpin).
    pub fn pin(&mut self, id: PageId) -> bool {
        match self.map.get(&id) {
            Some(&slot) => {
                self.slots[slot].pins += 1;
                true
            }
            None => false,
        }
    }

    /// Release one pin on a resident page. Returns `false` if the page is
    /// not resident or not pinned.
    pub fn unpin(&mut self, id: PageId) -> bool {
        match self.map.get(&id) {
            Some(&slot) if self.slots[slot].pins > 0 => {
                self.slots[slot].pins -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether a page is currently cached (does not touch recency).
    pub fn contains(&self, id: PageId) -> bool {
        self.map.contains_key(&id)
    }

    /// Evict the least-recently-used unpinned frame. If every resident frame
    /// is pinned the pool temporarily grows past capacity rather than
    /// invalidating a pinned page.
    fn evict_lru(&mut self) {
        let mut slot = self.tail;
        while slot != NIL && self.slots[slot].pins > 0 {
            slot = self.slots[slot].prev;
        }
        if slot != NIL {
            let id = self.slots[slot].id;
            self.remove_slot(id, slot);
        }
    }

    /// Drop a specific page from the cache (used when a page is freed).
    pub fn evict(&mut self, id: PageId) {
        if let Some(&slot) = self.map.get(&id) {
            self.remove_slot(id, slot);
        }
    }

    /// Drop a specific page from the cache unless it is pinned. Returns
    /// `true` if the page is no longer resident. Unlike [`evict`](Self::evict)
    /// this respects pins, so concurrent callers can never invalidate a
    /// frame another worker is using.
    pub fn evict_if_unpinned(&mut self, id: PageId) -> bool {
        match self.map.get(&id) {
            Some(&slot) if self.slots[slot].pins > 0 => false,
            Some(&slot) => {
                self.remove_slot(id, slot);
                true
            }
            None => true,
        }
    }

    /// Drop everything, including pinned frames.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Zero hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of cached pages (≤ capacity while nothing is pinned; for
    /// invariant tests).
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// Resident pages from most to least recently used (for trace tests).
    pub fn resident_pages(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != NIL {
            out.push(self.slots[slot].id);
            slot = self.slots[slot].next;
        }
        out
    }

    fn alloc_slot(&mut self, frame: Frame) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = frame;
                slot
            }
            None => {
                self.slots.push(frame);
                self.slots.len() - 1
            }
        }
    }

    fn remove_slot(&mut self, id: PageId, slot: usize) {
        self.unlink(slot);
        self.map.remove(&id);
        self.slots[slot].page = Arc::new(Page::new(Vec::new()));
        self.free.push(slot);
    }

    /// Detach a frame from the recency list (its prev/next become dangling;
    /// callers must relink or free the slot).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Tuple, Value};

    fn disk_with_pages(n: u64) -> (Arc<Disk>, Vec<PageId>) {
        let disk = Arc::new(Disk::new());
        let ids: Vec<PageId> = (0..n)
            .map(|i| {
                let id = disk.alloc();
                disk.write(id, Page::new(vec![Tuple::new(vec![Value::Int(i as i64)])]));
                id
            })
            .collect();
        disk.reset_stats();
        (disk, ids)
    }

    #[test]
    fn hit_costs_no_io() {
        let (disk, ids) = disk_with_pages(1);
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        pool.get(ids[0]);
        pool.get(ids[0]);
        assert_eq!(disk.stats().reads, 1);
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
    }

    #[test]
    fn never_exceeds_capacity() {
        let (disk, ids) = disk_with_pages(10);
        let mut pool = BufferPool::new(disk, 3);
        for &id in &ids {
            pool.get(id);
            assert!(pool.resident() <= 3);
        }
    }

    #[test]
    fn evicts_least_recently_used() {
        let (disk, ids) = disk_with_pages(3);
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        pool.get(ids[0]); // miss
        pool.get(ids[1]); // miss
        pool.get(ids[0]); // hit — makes ids[1] the LRU
        pool.get(ids[2]); // miss, evicts ids[1]
        pool.get(ids[0]); // hit — still resident
        pool.get(ids[1]); // miss — was evicted
        assert_eq!(disk.stats().reads, 4);
    }

    #[test]
    fn cyclic_scan_beyond_capacity_thrashes() {
        // Sequential rescan pattern with LRU: every access misses once the
        // working set exceeds the pool. This is the nested-iteration
        // worst case from the paper.
        let (disk, ids) = disk_with_pages(4);
        let mut pool = BufferPool::new(Arc::clone(&disk), 3);
        for _ in 0..3 {
            for &id in &ids {
                pool.get(id);
            }
        }
        assert_eq!(disk.stats().reads, 12, "every access must miss");
    }

    #[test]
    fn clear_empties_pool() {
        let (disk, ids) = disk_with_pages(2);
        let mut pool = BufferPool::new(disk, 2);
        pool.get(ids[0]);
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn recency_order_is_mru_first() {
        let (disk, ids) = disk_with_pages(3);
        let mut pool = BufferPool::new(disk, 3);
        pool.get(ids[0]);
        pool.get(ids[1]);
        pool.get(ids[2]);
        pool.get(ids[0]); // re-touch
        assert_eq!(pool.resident_pages(), vec![ids[0], ids[2], ids[1]]);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (disk, ids) = disk_with_pages(4);
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        pool.get(ids[0]);
        assert!(pool.pin(ids[0]));
        pool.get(ids[1]);
        pool.get(ids[2]); // would evict ids[0] (LRU), but it is pinned → ids[1] goes
        assert!(pool.contains(ids[0]));
        assert!(!pool.contains(ids[1]));
        assert!(pool.unpin(ids[0]));
        pool.get(ids[3]); // now ids[0] is evictable again
        assert!(!pool.contains(ids[0]));
    }

    #[test]
    fn all_pinned_grows_past_capacity_instead_of_invalidating() {
        let (disk, ids) = disk_with_pages(3);
        let mut pool = BufferPool::new(disk, 2);
        pool.get(ids[0]);
        pool.get(ids[1]);
        assert!(pool.pin(ids[0]) && pool.pin(ids[1]));
        pool.get(ids[2]);
        assert_eq!(pool.resident(), 3, "pinned frames are never dropped");
        assert!(pool.unpin(ids[0]) && pool.unpin(ids[1]));
        assert!(!pool.unpin(ids[2]), "unpinned page reports false");
    }

    #[test]
    fn evict_reclaims_slot_for_reuse() {
        let (disk, ids) = disk_with_pages(3);
        let mut pool = BufferPool::new(Arc::clone(&disk), 2);
        pool.get(ids[0]);
        pool.get(ids[1]);
        pool.evict(ids[0]);
        assert_eq!(pool.resident(), 1);
        pool.get(ids[2]);
        pool.get(ids[0]); // evicts ids[1]
        assert_eq!(pool.resident(), 2);
        assert!(pool.contains(ids[2]) && pool.contains(ids[0]));
    }
}
