//! External (B−1)-way merge sort.
//!
//! This is the sort the paper's cost model charges `2·P·log_{B-1}(P)` page
//! I/Os for [KIM 82:462]: pass 0 reads the input in `B`-page chunks, sorts
//! each in memory, and writes initial runs; every subsequent pass merges up
//! to `B−1` runs. All reads bypass the buffer pool (the sort owns the
//! buffer while it runs, as in System R), so measured I/O matches the model.

use crate::heap::HeapFile;
use crate::Storage;
use nsql_exec_par::{run_workers, Morsels};
use nsql_types::Tuple;
use std::cmp::Ordering;
use std::sync::{Mutex, PoisonError};

/// One sort key: tuple field index plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Field index within the tuple.
    pub index: usize,
    /// Descending?
    pub desc: bool,
}

impl SortKey {
    /// Ascending key on `index`.
    pub fn asc(index: usize) -> SortKey {
        SortKey { index, desc: false }
    }

    /// Descending key on `index`.
    pub fn desc(index: usize) -> SortKey {
        SortKey { index, desc: true }
    }
}

/// Compare two tuples under a key list (total order, `NULL` first on ASC).
pub fn compare(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let o = a.get(k.index).total_cmp(b.get(k.index));
        let o = if k.desc { o.reverse() } else { o };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Compare two already-extracted key tuples, position `j` reversed when
/// `desc[j]`. The decorated counterpart of [`compare`].
fn key_cmp(a: &Tuple, b: &Tuple, desc: &[bool]) -> Ordering {
    for (j, &d) in desc.iter().enumerate() {
        let o = a.get(j).total_cmp(b.get(j));
        let o = if d { o.reverse() } else { o };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Sort `input` into a new heap file using an external (B−1)-way merge sort.
///
/// With `unique`, exact-duplicate tuples (whole-tuple comparison in the
/// total order) are eliminated during run generation and merging — this is
/// how NEST-JA2's `SELECT DISTINCT` projection of the outer join column and
/// the merge-join's duplicate removal are implemented.
///
/// The input file is left intact; callers that no longer need it should
/// [`HeapFile::drop_pages`] it.
pub fn external_sort(
    storage: &Storage,
    input: &HeapFile,
    keys: &[SortKey],
    unique: bool,
) -> HeapFile {
    external_sort_threads(storage, input, keys, unique, 1)
}

/// [`external_sort`] with parallel run generation.
///
/// With `threads > 1`, pass 0 reads and sorts its `B`-page chunks on a
/// worker pool: chunk boundaries are identical to the serial pass, chunk
/// reads go directly to disk (bypassing the buffer, so read *totals* are
/// order-insensitive), and the sorted runs are then written serially in
/// chunk order — run page ids and run order are deterministic, which
/// matters because merge tie-breaking favours the lower run index. Merge
/// passes stay serial (they are a small fraction of sort time and their
/// I/O pattern is inherently sequential). `threads <= 1` is the exact
/// serial code path.
pub fn external_sort_threads(
    storage: &Storage,
    input: &HeapFile,
    keys: &[SortKey],
    unique: bool,
    threads: usize,
) -> HeapFile {
    let b = storage.buffer_pages().max(2);
    // Decorate–sort–undecorate: each tuple's key fields are extracted into a
    // small key tuple exactly once (per pass), so comparisons — of which
    // there are Θ(N·log N) — never re-index through the `SortKey` list. In
    // `unique` mode the whole tuple is its own key (whole-tuple ordering so
    // equal rows become adjacent everywhere) and no decoration is needed at
    // all: runs compare via [`Tuple::total_cmp`], which is exactly the
    // all-fields-ascending order the old key list spelled out.
    let key_idx: Vec<usize> = keys.iter().map(|k| k.index).collect();
    let desc: Vec<bool> = keys.iter().map(|k| k.desc).collect();

    // Sort one pass-0 chunk in memory (CPU only, no I/O).
    let sort_chunk = |mut chunk: Vec<Tuple>| -> Vec<Tuple> {
        if unique {
            chunk.sort_by(Tuple::total_cmp);
            chunk.dedup();
            chunk
        } else {
            let mut dec: Vec<(Tuple, Tuple)> =
                chunk.into_iter().map(|t| (t.project(&key_idx), t)).collect();
            dec.sort_by(|x, y| key_cmp(&x.0, &y.0, &desc));
            dec.into_iter().map(|(_, t)| t).collect()
        }
    };

    // Pass 0: produce sorted runs of up to `b` pages each.
    let page_ids = input.page_ids();
    let n_chunks = page_ids.len().div_ceil(b);
    let mut runs: Vec<HeapFile> = Vec::new();
    if threads > 1 && n_chunks > 1 {
        // Read + sort chunks in parallel; chunk boundaries match serial.
        let sorted: Vec<Mutex<Option<Vec<Tuple>>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let morsels = Morsels::new(n_chunks, 1);
        run_workers(threads.min(n_chunks), |_w| {
            while let Some(range) = morsels.claim() {
                for c in range {
                    let span = &page_ids[c * b..((c + 1) * b).min(page_ids.len())];
                    let mut chunk: Vec<Tuple> = Vec::new();
                    for &pid in span {
                        chunk.extend(storage.read_page_direct(pid).tuples().iter().cloned());
                    }
                    let out = sort_chunk(chunk);
                    *sorted[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                }
            }
        });
        // Write runs serially, in chunk order: deterministic run page ids
        // and run order, identical to the serial pass.
        for slot in sorted {
            let tuples = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every chunk was claimed by a worker");
            if !tuples.is_empty() {
                runs.push(HeapFile::from_tuples(storage, input.schema().clone(), tuples));
            }
        }
    } else {
        let mut chunk: Vec<Tuple> = Vec::new();
        let mut pages_in_chunk = 0usize;
        let flush = |chunk: &mut Vec<Tuple>, runs: &mut Vec<HeapFile>| {
            if chunk.is_empty() {
                return;
            }
            runs.push(HeapFile::from_tuples(
                storage,
                input.schema().clone(),
                sort_chunk(std::mem::take(chunk)),
            ));
        };
        for &page_id in page_ids {
            let page = storage.read_page_direct(page_id);
            chunk.extend(page.tuples().iter().cloned());
            pages_in_chunk += 1;
            if pages_in_chunk == b {
                flush(&mut chunk, &mut runs);
                pages_in_chunk = 0;
            }
        }
        flush(&mut chunk, &mut runs);
    }

    if runs.is_empty() {
        return HeapFile::from_tuples(storage, input.schema().clone(), Vec::new());
    }

    // Merge passes: (B−1)-way.
    let fan_in = (b - 1).max(2);
    while runs.len() > 1 {
        let mut next: Vec<HeapFile> = Vec::new();
        for group in runs.chunks(fan_in) {
            let merged = if unique {
                merge_runs_unique(storage, group, input)
            } else {
                merge_runs(storage, group, &key_idx, &desc, input)
            };
            for r in group {
                r.drop_pages(storage);
            }
            next.push(merged);
        }
        runs = next;
    }
    runs.pop().expect("at least one run")
}

/// Merge sorted runs, heads decorated with their extracted key so the
/// per-output linear scan over candidates compares pre-built key tuples.
fn merge_runs(
    storage: &Storage,
    runs: &[HeapFile],
    key_idx: &[usize],
    desc: &[bool],
    input: &HeapFile,
) -> HeapFile {
    let mut iters: Vec<crate::heap::HeapScan> =
        runs.iter().map(|r| r.scan_direct(storage)).collect();
    let mut heads: Vec<Option<(Tuple, Tuple)>> = iters
        .iter_mut()
        .map(|it| it.next().map(|t| (t.project(key_idx), t)))
        .collect();
    let merged = std::iter::from_fn(move || {
        let mut best: Option<usize> = None;
        for i in 0..heads.len() {
            if heads[i].is_none() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(j) => {
                    let (ki, kj) = (
                        &heads[i].as_ref().expect("checked above").0,
                        &heads[j].as_ref().expect("best is non-empty").0,
                    );
                    if key_cmp(ki, kj, desc) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
            };
        }
        let i = best?;
        let (_, t) = heads[i].take().expect("best is non-empty");
        heads[i] = iters[i].next().map(|t| (t.project(key_idx), t));
        Some(t)
    });
    HeapFile::from_tuples(storage, input.schema().clone(), merged)
}

/// Merge sorted runs under whole-tuple order, dropping exact duplicates.
///
/// Dedup is a clone-free one-element delay line: the previous winner is
/// *held back* rather than copied, each new winner is compared against it,
/// and only on inequality is the held tuple released downstream.
fn merge_runs_unique(storage: &Storage, runs: &[HeapFile], input: &HeapFile) -> HeapFile {
    let mut iters: Vec<crate::heap::HeapScan> =
        runs.iter().map(|r| r.scan_direct(storage)).collect();
    let mut heads: Vec<Option<Tuple>> = iters.iter_mut().map(Iterator::next).collect();
    let mut pending: Option<Tuple> = None;
    let deduped = std::iter::from_fn(move || {
        loop {
            let mut best: Option<usize> = None;
            for i in 0..heads.len() {
                if heads[i].is_none() {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        let (ti, tj) = (
                            heads[i].as_ref().expect("checked above"),
                            heads[j].as_ref().expect("best is non-empty"),
                        );
                        if ti.total_cmp(tj) == Ordering::Less {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
            let Some(i) = best else {
                return pending.take(); // release the final held tuple
            };
            let w = heads[i].take().expect("best is non-empty");
            heads[i] = iters[i].next();
            if pending.as_ref() == Some(&w) {
                continue; // duplicate of the held tuple
            }
            let out = pending.replace(w);
            if out.is_some() {
                return out;
            }
            // First winner: hold it, keep looking for something to emit.
        }
    });
    HeapFile::from_tuples(storage, input.schema().clone(), deduped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Schema, Value};

    fn schema2() -> Schema {
        Schema::new(vec![
            Column::new("A", ColumnType::Int),
            Column::new("B", ColumnType::Int),
        ])
    }

    fn file_of(storage: &Storage, rows: &[(i64, i64)]) -> HeapFile {
        HeapFile::from_tuples(
            storage,
            schema2(),
            rows.iter().map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)])),
        )
    }

    fn col0(storage: &Storage, f: &HeapFile) -> Vec<i64> {
        f.scan(storage)
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn sorts_small_input() {
        let st = Storage::with_defaults();
        let f = file_of(&st, &[(3, 0), (1, 0), (2, 0)]);
        let s = external_sort(&st, &f, &[SortKey::asc(0)], false);
        assert_eq!(col0(&st, &s), vec![1, 2, 3]);
    }

    #[test]
    fn sorts_multi_run_input() {
        let st = Storage::new(3, 64); // tiny buffer forces many runs
        let rows: Vec<(i64, i64)> = (0..500).map(|i| ((i * 7919) % 501, i)).collect();
        let f = file_of(&st, &rows);
        let s = external_sort(&st, &f, &[SortKey::asc(0)], false);
        let got = col0(&st, &s);
        let mut want: Vec<i64> = rows.iter().map(|r| r.0).collect();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(s.tuple_count(), 500);
    }

    #[test]
    fn descending_key() {
        let st = Storage::with_defaults();
        let f = file_of(&st, &[(1, 0), (3, 0), (2, 0)]);
        let s = external_sort(&st, &f, &[SortKey::desc(0)], false);
        assert_eq!(col0(&st, &s), vec![3, 2, 1]);
    }

    #[test]
    fn secondary_key_breaks_ties() {
        let st = Storage::with_defaults();
        let f = file_of(&st, &[(1, 2), (1, 1), (0, 9)]);
        let s = external_sort(&st, &f, &[SortKey::asc(0), SortKey::desc(1)], false);
        let rows: Vec<(i64, i64)> = s
            .scan(&st)
            .map(|t| match (t.get(0), t.get(1)) {
                (Value::Int(a), Value::Int(b)) => (*a, *b),
                _ => panic!(),
            })
            .collect();
        assert_eq!(rows, vec![(0, 9), (1, 2), (1, 1)]);
    }

    #[test]
    fn unique_removes_duplicates_across_runs() {
        let st = Storage::new(3, 64);
        let rows: Vec<(i64, i64)> = (0..300).map(|i| (i % 10, i % 3)).collect();
        let f = file_of(&st, &rows);
        let s = external_sort(&st, &f, &[SortKey::asc(0)], true);
        // Distinct (a, b) pairs: 10 × 3, but only pairs consistent with
        // i mod 10 / i mod 3 co-occurrence — enumerate exactly.
        let mut want: Vec<(i64, i64)> = rows;
        want.sort();
        want.dedup();
        assert_eq!(s.tuple_count(), want.len());
    }

    #[test]
    fn nulls_sort_first() {
        let st = Storage::with_defaults();
        let f = HeapFile::from_tuples(
            &st,
            schema2(),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(0)]),
                Tuple::new(vec![Value::Null, Value::Int(0)]),
            ],
        );
        let s = external_sort(&st, &f, &[SortKey::asc(0)], false);
        let first = s.scan(&st).next().unwrap();
        assert!(first.get(0).is_null());
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let st = Storage::with_defaults();
        let f = file_of(&st, &[]);
        let s = external_sort(&st, &f, &[SortKey::asc(0)], false);
        assert_eq!(s.tuple_count(), 0);
        assert_eq!(s.page_count(), 0);
    }

    #[test]
    fn parallel_run_generation_matches_serial_exactly() {
        // Same rows sorted on two identically-shaped storages: the parallel
        // sort must produce the same output order AND the same I/O totals.
        let rows: Vec<(i64, i64)> = (0..800).map(|i| ((i * 6151) % 811, i)).collect();
        for &(unique, desc) in &[(false, false), (false, true), (true, false)] {
            let keys =
                if desc { vec![SortKey::desc(0), SortKey::asc(1)] } else { vec![SortKey::asc(0)] };

            let serial = Storage::new(4, 64);
            let fs = file_of(&serial, &rows);
            serial.reset_stats();
            let ss = external_sort_threads(&serial, &fs, &keys, unique, 1);
            let serial_io = serial.io_stats();

            let par = Storage::new(4, 64);
            let fp = file_of(&par, &rows);
            par.reset_stats();
            let sp = external_sort_threads(&par, &fp, &keys, unique, 4);
            let par_io = par.io_stats();

            let a: Vec<Tuple> = ss.scan_direct(&serial).collect();
            let b: Vec<Tuple> = sp.scan_direct(&par).collect();
            assert_eq!(a, b, "unique={unique} desc={desc}");
            assert_eq!(serial_io, par_io, "unique={unique} desc={desc}");
        }
    }

    #[test]
    fn io_cost_tracks_model() {
        // Sorting P pages with B=6 buffer: pass 0 reads P and writes ≈P;
        // each merge pass reads ≈P and writes ≈P. Total ≈ 2·P·(1+passes).
        let st = Storage::new(6, 64);
        let rows: Vec<(i64, i64)> = (0..1000).map(|i| ((i * 31) % 997, i)).collect();
        let f = file_of(&st, &rows);
        let p = f.page_count() as f64;
        st.reset_stats();
        let before = st.io_stats();
        let _ = external_sort(&st, &f, &[SortKey::asc(0)], false);
        let used = st.io_stats().since(&before).total() as f64;
        // passes = 1 (run formation) + ceil(log_{B-1}(P/B))
        let runs = (p / 6.0).ceil();
        let merge_passes = if runs <= 1.0 { 0.0 } else { runs.log(5.0).ceil() };
        let model = 2.0 * p * (1.0 + merge_passes);
        let ratio = used / model;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "measured {used} vs model {model} (P={p}, ratio {ratio:.2})"
        );
    }
}
