#![warn(missing_docs)]

//! Simulated paged storage engine with I/O accounting.
//!
//! The paper measures every strategy in **disk page I/Os** on a System-R-like
//! engine: relations live in pages, a main-memory buffer holds `B` pages, and
//! sorting a `P`-page relation with a (B−1)-way multi-way merge sort costs
//! `2·P·log_{B-1}(P)` page I/Os [KIM 82:462]. This crate provides that
//! substrate:
//!
//! * [`disk::Disk`] — the simulated disk: a page store whose every read and
//!   write increments shared [`stats::IoStats`] counters.
//! * [`buffer::BufferPool`] — a `B`-frame LRU cache in front of the disk.
//!   Re-reading a cached page is free, which is exactly why the paper's
//!   nested-loop join is cheap when the inner relation fits in `B−1` pages
//!   and catastrophic when it does not (LRU thrashes on cyclic rescans).
//! * [`heap::HeapFile`] — an unordered paged file of tuples; relations and
//!   temporary tables are heap files. Pages are packed by a byte budget so
//!   page counts scale with schema width like a real system.
//! * [`sort::external_sort`] — the (B−1)-way external merge sort used for
//!   merge joins, `GROUP BY`, and duplicate elimination.
//! * [`Storage`] — the facade tying disk + buffer together; cheaply
//!   cloneable (shared interior) so iterators can own a handle.
//!
//! Pages hold decoded [`Tuple`]s rather than serialized bytes: the unit under
//! study is the *I/O count*, not the byte encoding, and every algorithm in
//! the paper is insensitive to the on-page layout.

pub mod buffer;
pub mod disk;
pub mod durable;
pub mod error;
pub mod heap;
pub mod sort;
pub mod stats;

pub use buffer::BufferPool;
pub use disk::{Disk, DiskManager, MemBackend, Page, PageId, SYSTEM_PAGE_BASE};
pub use durable::{FaultPlan, FileStore, RecoveryReport};
pub use error::StorageError;
pub use heap::HeapFile;
pub use sort::{external_sort, external_sort_threads};
pub use stats::{IoSnapshot, IoStats};

use nsql_types::{Relation, Schema, Tuple};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default page size in bytes (a deliberately small page so that the paper's
/// example tables span realistic page counts at laptop-scale cardinalities).
pub const DEFAULT_PAGE_SIZE: usize = 512;

/// Default buffer size in pages; the Section-7.4 example uses `B = 6`.
pub const DEFAULT_BUFFER_PAGES: usize = 6;

/// One event in an uncounted trace-mode evaluation (see
/// [`Storage::trace_view`]). Replaying the events through a counted
/// `Storage` reproduces the serial buffer evolution and I/O totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A buffered page read (`read_page`).
    Read(PageId),
    /// A direct (buffer-bypassing) page read (`read_page_direct`). Counted
    /// the same as [`TraceEvent::Read`] but replay must not populate the
    /// buffer, so the two are distinguished in the event stream.
    ReadDirect(PageId),
    /// A page write (`write_new_page`) of the given fresh page. Trace-mode
    /// replay charges the counter only — the page itself was already written
    /// physically during tracing. Result-cache replay allocates a *new*
    /// page per event and maps old→new ids.
    Write(PageId),
    /// A page free (`free_page`). Freeing counts no I/O, but it evicts the
    /// page from the buffer, so a faithful replay must reproduce it.
    Free(PageId),
    /// A marker (e.g. "first use of cached subquery `key`"); replay hooks
    /// splice in a captured sub-trace at the first occurrence.
    Marker(usize),
}

/// How a `Storage` handle accounts its I/O.
enum IoMode {
    /// Normal operation: reads go through the buffer, everything counts.
    Counted,
    /// Trace mode: reads bypass the buffer, nothing counts, every access is
    /// appended to the shared sink for later replay.
    Trace(Arc<Mutex<Vec<TraceEvent>>>),
}

struct StorageInner {
    disk: Arc<Disk>,
    buffer: Mutex<BufferPool>,
    page_size: usize,
    mode: IoMode,
    /// Present when the backend is the durable file store (commit,
    /// checkpoint, and fault-injection APIs hang off it).
    durable: Option<Arc<FileStore>>,
    /// When set, every *counted* I/O on this handle (and its clones) is
    /// also appended to `record_sink`. The result cache uses this to
    /// capture the exact page-access sequence of a temp materialization;
    /// a later cache hit replays the sequence so the counted I/O and
    /// buffer evolution are identical to a re-execution. One relaxed
    /// atomic load per I/O when off.
    recording: std::sync::atomic::AtomicBool,
    record_sink: Mutex<Vec<TraceEvent>>,
}

/// Facade over the simulated disk and buffer pool.
///
/// Cloning is cheap and shares the same underlying disk, buffer, and I/O
/// counters, so scans and operators can each hold a handle. `Storage` is
/// `Send + Sync`: the buffer pool sits behind one mutex (single latch — its
/// operations are O(1) pointer splices, so the critical section is tiny)
/// and the disk page map is sharded.
#[derive(Clone)]
pub struct Storage {
    inner: Arc<StorageInner>,
}

impl Storage {
    /// New storage with `buffer_pages` frames and `page_size`-byte pages.
    pub fn new(buffer_pages: usize, page_size: usize) -> Storage {
        let disk = Arc::new(Disk::new());
        let buffer = Mutex::new(BufferPool::new(Arc::clone(&disk), buffer_pages));
        Storage {
            inner: Arc::new(StorageInner {
                disk,
                buffer,
                page_size,
                mode: IoMode::Counted,
                durable: None,
                recording: std::sync::atomic::AtomicBool::new(false),
                record_sink: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Storage with the defaults used across the experiments.
    pub fn with_defaults() -> Storage {
        Storage::new(DEFAULT_BUFFER_PAGES, DEFAULT_PAGE_SIZE)
    }

    /// File-backed storage rooted at `dir`, running crash recovery on
    /// open. `page_size` seeds a fresh store; an existing store keeps the
    /// page size recorded in its header (so reopening reproduces the
    /// original page packing regardless of the caller's default). I/O
    /// counting is identical to the memory backend by construction: the
    /// counter sits in [`Disk`], above the [`DiskManager`] seam.
    pub fn file_backed(
        buffer_pages: usize,
        page_size: usize,
        dir: &Path,
    ) -> Result<(Storage, RecoveryReport), StorageError> {
        let (store, report) = FileStore::open(dir, page_size)?;
        let store = Arc::new(store);
        let page_size = store.page_size();
        let first_id = store.next_page_id();
        let disk = Arc::new(Disk::with_backend(
            Arc::clone(&store) as Arc<dyn DiskManager>,
            first_id,
        ));
        let buffer = Mutex::new(BufferPool::new(Arc::clone(&disk), buffer_pages));
        let storage = Storage {
            inner: Arc::new(StorageInner {
                disk,
                buffer,
                page_size,
                mode: IoMode::Counted,
                durable: Some(store),
                recording: std::sync::atomic::AtomicBool::new(false),
                record_sink: Mutex::new(Vec::new()),
            }),
        };
        Ok((storage, report))
    }

    /// The durable backend, when this storage is file-backed.
    pub fn durable(&self) -> Option<&Arc<FileStore>> {
        self.inner.durable.as_ref()
    }

    /// Whether this storage is file-backed.
    pub fn is_durable(&self) -> bool {
        self.inner.durable.is_some()
    }

    /// Commit the open durable batch with an opaque metadata snapshot
    /// (the catalog image handed back by recovery). No-op on memory
    /// storage, so callers can commit unconditionally.
    pub fn commit_durable(&self, meta: &[u8]) -> Result<(), StorageError> {
        match &self.inner.durable {
            Some(store) => store.commit(meta),
            None => Ok(()),
        }
    }

    /// A trace-mode view of this storage: same disk (pages written by either
    /// view are visible to both), fresh untouched buffer, and **uncounted**
    /// I/O — every page access is appended to `sink` instead. Parallel
    /// nested iteration evaluates morsels under trace views and then replays
    /// the per-morsel traces, in serial order, through the counted parent.
    pub fn trace_view(&self, sink: Arc<Mutex<Vec<TraceEvent>>>) -> Storage {
        let disk = Arc::clone(&self.inner.disk);
        let buffer = Mutex::new(BufferPool::new(Arc::clone(&disk), self.buffer_pages()));
        Storage {
            inner: Arc::new(StorageInner {
                disk,
                buffer,
                page_size: self.inner.page_size,
                mode: IoMode::Trace(sink),
                durable: self.inner.durable.clone(),
                recording: std::sync::atomic::AtomicBool::new(false),
                record_sink: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether this handle is a trace-mode view.
    pub fn is_trace(&self) -> bool {
        matches!(self.inner.mode, IoMode::Trace(_))
    }

    fn trace(&self, ev: TraceEvent) {
        if let IoMode::Trace(sink) = &self.inner.mode {
            sink.lock().unwrap_or_else(PoisonError::into_inner).push(ev);
        }
    }

    /// Append a [`TraceEvent::Marker`] to the trace sink. No-op on a
    /// counted handle.
    pub fn trace_marker(&self, key: usize) {
        self.trace(TraceEvent::Marker(key));
    }

    /// Charge one page write to the counter without writing anything.
    /// Used when replaying a trace: the physical write already happened
    /// uncounted during tracing.
    pub fn charge_write(&self) {
        self.inner.disk.charge_write();
    }

    /// Start mirroring every counted I/O on this handle into an internal
    /// event sink (see [`Storage::take_recording`]). Recording is a pure
    /// side channel: it never touches the I/O counters or the buffer.
    pub fn start_recording(&self) {
        self.inner.record_sink.lock().unwrap_or_else(PoisonError::into_inner).clear();
        self.inner.recording.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Stop recording and return the captured counted-I/O event sequence.
    pub fn take_recording(&self) -> Vec<TraceEvent> {
        self.inner.recording.store(false, std::sync::atomic::Ordering::Release);
        std::mem::take(
            &mut *self.inner.record_sink.lock().unwrap_or_else(PoisonError::into_inner),
        )
    }

    #[inline]
    fn record(&self, ev: TraceEvent) {
        if self.inner.recording.load(std::sync::atomic::Ordering::Acquire) {
            self.inner.record_sink.lock().unwrap_or_else(PoisonError::into_inner).push(ev);
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    fn buffer(&self) -> MutexGuard<'_, BufferPool> {
        self.inner.buffer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The number of buffer frames `B`.
    pub fn buffer_pages(&self) -> usize {
        self.buffer().capacity()
    }

    /// Snapshot of the cumulative I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.inner.disk.stats()
    }

    /// Reset the I/O counters (buffer contents are kept; call
    /// [`Storage::clear_buffer`] too for a fully cold measurement).
    pub fn reset_stats(&self) {
        self.inner.disk.reset_stats();
        self.buffer().reset_stats();
    }

    /// Drop every cached page, so the next reads hit the disk.
    pub fn clear_buffer(&self) {
        self.buffer().clear();
    }

    /// Buffer hit/miss counters.
    pub fn buffer_stats(&self) -> (u64, u64) {
        let b = self.buffer();
        (b.hits(), b.misses())
    }

    /// Atomically consistent snapshot of disk and buffer activity.
    ///
    /// The (reads, writes) pair is one atomic load of the packed counter
    /// word — untearable under concurrent workers; hits/misses are taken
    /// together under the buffer mutex. Pair two of these with
    /// [`IoSnapshot::since`] to attribute a delta to a region of work.
    /// Pure loads throughout: snapshotting never perturbs the counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let io = self.inner.disk.stats();
        let (hits, misses) = self.buffer_stats();
        IoSnapshot { reads: io.reads, writes: io.writes, hits, misses }
    }

    /// Read a page through the buffer pool.
    ///
    /// System pages (ids ≥ [`disk::SYSTEM_PAGE_BASE`]) take a side path:
    /// uncounted, unbuffered, untraced, unrecorded. The check is one
    /// integer compare on the id, and ordinary pages can never alias the
    /// range, so the hot path is unchanged for real relations.
    pub fn read_page(&self, id: PageId) -> Arc<Page> {
        if id.is_system() {
            return self.inner.disk.read_system(id);
        }
        match &self.inner.mode {
            IoMode::Counted => {
                self.record(TraceEvent::Read(id));
                self.buffer().get(id)
            }
            IoMode::Trace(_) => {
                self.trace(TraceEvent::Read(id));
                self.inner.disk.read_uncounted(id)
            }
        }
    }

    /// Read a page directly from disk, bypassing (and not populating) the
    /// buffer. Sort passes use this so their I/O pattern matches the
    /// analytical model exactly.
    pub fn read_page_direct(&self, id: PageId) -> Arc<Page> {
        if id.is_system() {
            return self.inner.disk.read_system(id);
        }
        match &self.inner.mode {
            IoMode::Counted => {
                self.record(TraceEvent::ReadDirect(id));
                self.inner.disk.read(id)
            }
            IoMode::Trace(_) => {
                self.trace(TraceEvent::ReadDirect(id));
                self.inner.disk.read_uncounted(id)
            }
        }
    }

    /// Read a page's tuples without counting, without touching the buffer,
    /// and without recording. This is a side channel for observability and
    /// result-cache publication (capturing a freshly materialized temp's
    /// contents); it must never be used on a query-execution path.
    pub fn read_page_tuples_uncounted(&self, id: PageId) -> Vec<Tuple> {
        if id.is_system() {
            return self.inner.disk.read_system(id).tuples().to_vec();
        }
        self.inner.disk.read_uncounted(id).tuples().to_vec()
    }

    /// Allocate and write a fresh page directly to disk (write-around:
    /// freshly written pages are not cached).
    pub fn write_new_page(&self, tuples: Vec<Tuple>) -> PageId {
        let id = self.inner.disk.alloc();
        match &self.inner.mode {
            IoMode::Counted => {
                self.record(TraceEvent::Write(id));
                self.inner.disk.write(id, Page::new(tuples))
            }
            IoMode::Trace(_) => {
                // Physical write so later scans can see the page; the I/O
                // charge happens at replay via `charge_write`.
                self.inner.disk.write_uncounted(id, Page::new(tuples));
                self.trace(TraceEvent::Write(id));
            }
        }
        id
    }

    /// Pin a resident page against eviction (nests; see
    /// [`BufferPool::pin`]). Returns `false` if the page is not resident.
    pub fn pin_page(&self, id: PageId) -> bool {
        self.buffer().pin(id)
    }

    /// Release one pin. Returns `false` if not resident or not pinned.
    pub fn unpin_page(&self, id: PageId) -> bool {
        self.buffer().unpin(id)
    }

    /// Whether a page is currently cached (does not touch recency).
    pub fn page_resident(&self, id: PageId) -> bool {
        self.buffer().contains(id)
    }

    /// Number of cached pages.
    pub fn resident_pages(&self) -> usize {
        self.buffer().resident()
    }

    /// Drop a page from the buffer without freeing it on disk (the next
    /// read becomes a miss). Skips pinned frames; returns `true` if the
    /// page is no longer resident.
    pub fn evict_page(&self, id: PageId) -> bool {
        self.buffer().evict_if_unpinned(id)
    }

    /// Free a page (drops it from the buffer too). Freeing counts no I/O,
    /// but it is recorded/traced: dropping a page from the buffer frees a
    /// frame, so a faithful replay must reproduce it.
    pub fn free_page(&self, id: PageId) {
        if id.is_system() {
            // System pages never enter the buffer and are never traced.
            self.inner.disk.free_system(id);
            return;
        }
        match &self.inner.mode {
            IoMode::Counted => self.record(TraceEvent::Free(id)),
            IoMode::Trace(_) => self.trace(TraceEvent::Free(id)),
        }
        self.buffer().evict(id);
        self.inner.disk.free(id);
    }

    /// Number of allocated, not-yet-freed disk pages. Temporary-file
    /// leak checks assert on this after operators finish.
    pub fn live_pages(&self) -> usize {
        self.inner.disk.live_pages()
    }

    /// Number of tuples of `width` bytes that fit in one page (at least 1,
    /// so oversized tuples still make progress).
    pub fn tuples_per_page(&self, width: usize) -> usize {
        (self.inner.page_size / width.max(1)).max(1)
    }

    /// Materialize an in-memory [`Relation`] as a heap file, packing tuples
    /// into pages by byte budget. Costs one write per page.
    pub fn store_relation(&self, rel: &Relation) -> HeapFile {
        HeapFile::from_tuples(self, rel.schema().clone(), rel.tuples().iter().cloned())
    }

    /// Allocate and write a fresh *system* page (uncounted, memory-only;
    /// see [`disk::SYSTEM_PAGE_BASE`]).
    pub fn write_new_system_page(&self, tuples: Vec<Tuple>) -> PageId {
        let id = self.inner.disk.alloc_system();
        self.inner.disk.write_system(id, Page::new(tuples));
        id
    }

    /// Materialize a [`Relation`] as a heap file on *system* pages: same
    /// byte-budget packing as [`Storage::store_relation`], but every page
    /// goes to the uncounted side store, so scanning the result moves no
    /// I/O counter. This is how the `nsql_stat_*` views become ordinary
    /// scannable heap files without perturbing what they report.
    pub fn store_relation_system(&self, rel: &Relation) -> HeapFile {
        HeapFile::from_tuples_system(self, rel.schema().clone(), rel.tuples().iter().cloned())
    }

    /// Number of live system pages (excluded from [`Storage::live_pages`]).
    pub fn system_pages(&self) -> usize {
        self.inner.disk.system_pages()
    }

    /// Load a heap file fully into an in-memory [`Relation`] (costs reads
    /// through the buffer).
    pub fn load_relation(&self, file: &HeapFile) -> Relation {
        let mut rel = Relation::empty(file.schema().clone());
        for t in file.scan(self) {
            rel.push(t).expect("heap tuples match heap schema");
        }
        rel
    }
}

/// A named stored relation: schema + heap file.
#[derive(Clone)]
pub struct StoredRelation {
    /// Relation name (catalog key).
    pub name: String,
    /// The heap file holding the rows.
    pub file: HeapFile,
}

impl StoredRelation {
    /// Construct from a name and file.
    pub fn new(name: impl Into<String>, file: HeapFile) -> StoredRelation {
        StoredRelation { name: name.into().to_ascii_uppercase(), file }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.file.schema()
    }

    /// Page count (the paper's `Pk`).
    pub fn pages(&self) -> usize {
        self.file.page_count()
    }

    /// Tuple count (the paper's `Nk`).
    pub fn tuples(&self) -> usize {
        self.file.tuple_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Value};

    fn int_relation(n: i64) -> Relation {
        let schema = Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "B", ColumnType::Int),
        ]);
        let mut rel = Relation::empty(schema);
        for i in 0..n {
            rel.push(Tuple::new(vec![Value::Int(i), Value::Int(i * 10)])).unwrap();
        }
        rel
    }

    #[test]
    fn store_and_load_roundtrip() {
        let st = Storage::with_defaults();
        let rel = int_relation(100);
        let file = st.store_relation(&rel);
        assert!(file.page_count() > 1, "100 tuples should span several pages");
        let back = st.load_relation(&file);
        assert!(back.same_bag(&rel));
    }

    #[test]
    fn writing_costs_one_io_per_page() {
        let st = Storage::with_defaults();
        let rel = int_relation(200);
        st.reset_stats();
        let file = st.store_relation(&rel);
        let io = st.io_stats();
        assert_eq!(io.writes, file.page_count() as u64);
        assert_eq!(io.reads, 0);
    }

    #[test]
    fn rereading_within_buffer_is_free() {
        let st = Storage::new(16, 512);
        let rel = int_relation(50);
        let file = st.store_relation(&rel);
        assert!(file.page_count() <= 16);
        st.reset_stats();
        let _ = st.load_relation(&file);
        let cold = st.io_stats().reads;
        assert_eq!(cold, file.page_count() as u64);
        let _ = st.load_relation(&file);
        assert_eq!(st.io_stats().reads, cold, "second scan must be all buffer hits");
    }

    #[test]
    fn sequential_rescan_larger_than_buffer_thrashes() {
        // The System R pathology the paper describes: cyclic rescans of a
        // relation larger than the buffer get no reuse from LRU.
        let st = Storage::new(4, 512);
        let rel = int_relation(400);
        let file = st.store_relation(&rel);
        assert!(file.page_count() > 4);
        st.reset_stats();
        let _ = st.load_relation(&file);
        let _ = st.load_relation(&file);
        assert_eq!(st.io_stats().reads, 2 * file.page_count() as u64);
    }

    #[test]
    fn page_packing_respects_width() {
        let st = Storage::new(4, 128);
        let rel = int_relation(10);
        let width = rel.tuples()[0].storage_width();
        let per_page = st.tuples_per_page(width);
        let file = st.store_relation(&rel);
        assert_eq!(file.page_count(), 10usize.div_ceil(per_page));
    }

    #[test]
    fn storage_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Storage>();
        assert_send_sync::<HeapFile>();
        assert_send_sync::<IoStats>();
    }

    #[test]
    fn trace_view_logs_without_counting() {
        let st = Storage::with_defaults();
        let file = st.store_relation(&int_relation(20));
        st.reset_stats();

        let sink = Arc::new(Mutex::new(Vec::new()));
        let tv = st.trace_view(Arc::clone(&sink));
        assert!(tv.is_trace() && !st.is_trace());
        for &id in file.page_ids() {
            let _ = tv.read_page(id);
        }
        let new_id = tv.write_new_page(vec![Tuple::new(vec![Value::Int(1)])]);
        tv.trace_marker(7);
        assert_eq!(st.io_stats().total(), 0, "trace mode must not count");

        let events = sink.lock().unwrap().clone();
        let mut expect: Vec<TraceEvent> =
            file.page_ids().iter().map(|&id| TraceEvent::Read(id)).collect();
        expect.push(TraceEvent::Write(new_id));
        expect.push(TraceEvent::Marker(7));
        assert_eq!(events, expect);

        // The traced write is physically visible to the counted view.
        assert_eq!(st.read_page(new_id).len(), 1);
        st.free_page(new_id);
    }

    #[test]
    fn replaying_a_trace_reproduces_serial_io() {
        // Serial run.
        let serial = Storage::new(3, 512);
        let rel = int_relation(120);
        let f = serial.store_relation(&rel);
        serial.clear_buffer();
        serial.reset_stats();
        for _ in 0..2 {
            for &id in f.page_ids() {
                let _ = serial.read_page(id);
            }
        }
        let want = serial.io_stats();

        // Traced run on a second storage with identical layout, then replay.
        let st = Storage::new(3, 512);
        let f2 = st.store_relation(&rel);
        st.clear_buffer();
        st.reset_stats();
        let sink = Arc::new(Mutex::new(Vec::new()));
        let tv = st.trace_view(Arc::clone(&sink));
        for _ in 0..2 {
            for &id in f2.page_ids() {
                let _ = tv.read_page(id);
            }
        }
        for ev in sink.lock().unwrap().iter() {
            match ev {
                TraceEvent::Read(id) => {
                    let _ = st.read_page(*id);
                }
                TraceEvent::ReadDirect(id) => {
                    let _ = st.read_page_direct(*id);
                }
                TraceEvent::Write(_) => st.charge_write(),
                TraceEvent::Free(id) => {
                    let _ = st.evict_page(*id);
                }
                TraceEvent::Marker(_) => {}
            }
        }
        assert_eq!(st.io_stats(), want);
    }

    #[test]
    fn counted_recording_mirrors_io_without_perturbing_it() {
        let st = Storage::new(3, 512);
        let rel = int_relation(60);
        let f = st.store_relation(&rel);
        st.clear_buffer();
        st.reset_stats();

        // Recorded run: scan, write a page, free it, direct-read a page.
        st.start_recording();
        for &id in f.page_ids() {
            let _ = st.read_page(id);
        }
        let tmp = st.write_new_page(vec![Tuple::new(vec![Value::Int(1)])]);
        let _ = st.read_page_direct(f.page_ids()[0]);
        st.free_page(tmp);
        let recorded = st.take_recording();
        let want = st.io_stats();

        let mut expect: Vec<TraceEvent> =
            f.page_ids().iter().map(|&id| TraceEvent::Read(id)).collect();
        expect.push(TraceEvent::Write(tmp));
        expect.push(TraceEvent::ReadDirect(f.page_ids()[0]));
        expect.push(TraceEvent::Free(tmp));
        assert_eq!(recorded, expect);

        // An identical unrecorded run counts exactly the same.
        st.clear_buffer();
        st.reset_stats();
        for &id in f.page_ids() {
            let _ = st.read_page(id);
        }
        let tmp2 = st.write_new_page(vec![Tuple::new(vec![Value::Int(1)])]);
        let _ = st.read_page_direct(f.page_ids()[0]);
        st.free_page(tmp2);
        assert_eq!(st.io_stats(), want, "recording must not change counted I/O");
        assert!(st.take_recording().is_empty(), "recording was off for the second run");
    }

    #[test]
    fn system_pages_are_invisible_to_counters_and_traces() {
        let st = Storage::with_defaults();
        let rel = int_relation(80);
        st.reset_stats();
        st.start_recording();
        let sink = Arc::new(Mutex::new(Vec::new()));
        let tv = st.trace_view(Arc::clone(&sink));

        // Materialize, scan (buffered + direct + via trace view), free.
        let f = st.store_relation_system(&rel);
        assert!(f.page_count() > 1);
        assert!(f.page_ids().iter().all(|id| id.is_system()));
        let back = st.load_relation(&f);
        assert!(back.same_bag(&rel));
        for &id in f.page_ids() {
            let _ = st.read_page_direct(id);
            let _ = tv.read_page(id);
            assert_eq!(st.read_page_tuples_uncounted(id).len(), st.read_page(id).len());
        }
        assert_eq!(st.system_pages(), f.page_count());
        f.drop_pages(&st);
        assert_eq!(st.system_pages(), 0);

        // Not one counter, recorded event, trace event, buffered frame, or
        // ordinary live page moved.
        assert_eq!(st.io_stats().total(), 0);
        let snap = st.io_snapshot();
        assert_eq!((snap.hits, snap.misses), (0, 0));
        assert!(st.take_recording().is_empty());
        assert!(sink.lock().unwrap().is_empty());
        assert_eq!(st.resident_pages(), 0);
        assert_eq!(st.live_pages(), 0);
    }

    #[test]
    fn system_pages_never_touch_the_durable_backend() {
        let dir = std::env::temp_dir().join(format!("nsql-sys-pages-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (st, _) = Storage::file_backed(6, 512, &dir).unwrap();
        let f = st.store_relation_system(&int_relation(40));
        assert!(f.page_count() > 0);
        let store = st.durable().unwrap();
        let before = store.batch_len();
        st.commit_durable(b"meta").unwrap();
        assert_eq!(before, 0, "system writes must not enter the durable batch");
        assert_eq!(st.io_stats().total(), 0);
        f.drop_pages(&st);
        drop(st);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_buffer_makes_reads_cold() {
        let st = Storage::with_defaults();
        let file = st.store_relation(&int_relation(20));
        let _ = st.load_relation(&file);
        st.clear_buffer();
        st.reset_stats();
        let _ = st.load_relation(&file);
        assert_eq!(st.io_stats().reads, file.page_count() as u64);
    }
}
