//! Durable store round-trips: commit → reopen, checkpoint → reopen,
//! free-list reuse, and I/O-count equivalence with the memory backend.

use nsql_storage::{Storage, StorageError};
use nsql_testkit::TempDir;
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};

fn int_relation(name: &str, n: i64) -> Relation {
    let schema = Schema::new(vec![
        Column::qualified(name, "A", ColumnType::Int),
        Column::qualified(name, "B", ColumnType::Str),
    ]);
    let mut rel = Relation::empty(schema);
    for i in 0..n {
        rel.push(Tuple::new(vec![Value::Int(i), Value::str(format!("row-{i}"))])).unwrap();
    }
    rel
}

fn page_ids_tuples(st: &Storage, file: &nsql_storage::HeapFile) -> Vec<Tuple> {
    file.scan(st).collect()
}

#[test]
fn committed_pages_survive_reopen() {
    let dir = TempDir::new("nsql-durable-roundtrip");
    let rel = int_relation("T", 120);
    let (pages, want) = {
        let (st, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
        assert_eq!(report, nsql_storage::RecoveryReport::default());
        let file = st.store_relation(&rel);
        st.commit_durable(b"meta-v1").unwrap();
        (file.page_ids().to_vec(), page_ids_tuples(&st, &file))
    };
    assert!(pages.len() > 1, "should span pages");

    let (st2, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    assert_eq!(report.wal_records_applied as usize, pages.len() + 1);
    assert_eq!(report.commits_applied, 1);
    assert!(!report.torn_tail);
    assert_eq!(st2.durable().unwrap().committed_meta().as_deref(), Some(&b"meta-v1"[..]));
    assert_eq!(st2.live_pages(), pages.len());
    let mut got = Vec::new();
    for &id in &pages {
        got.extend(st2.read_page(id).tuples().iter().cloned());
    }
    assert_eq!(got, want);
}

#[test]
fn uncommitted_batch_rolls_back_on_reopen() {
    let dir = TempDir::new("nsql-durable-rollback");
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let _committed = st.store_relation(&int_relation("T", 40));
        st.commit_durable(b"v1").unwrap();
        // Uncommitted writes: never reach a commit record.
        let _lost = st.store_relation(&int_relation("U", 40));
    }
    let (st2, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    // Logging is deferred to commit: the uncommitted batch never reached
    // the WAL, so recovery sees a clean log ending at the commit.
    assert_eq!(report.wal_records_discarded, 0);
    assert!(!report.torn_tail);
    assert_eq!(st2.durable().unwrap().committed_meta().as_deref(), Some(&b"v1"[..]));
    let committed_pages = report.wal_records_applied - 1; // minus the commit record
    assert_eq!(st2.live_pages(), committed_pages);
}

#[test]
fn checkpoint_then_reopen_reads_no_wal() {
    let dir = TempDir::new("nsql-durable-ckpt");
    let rel = int_relation("T", 200);
    let pages = {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let file = st.store_relation(&rel);
        st.commit_durable(b"v1").unwrap();
        st.durable().unwrap().checkpoint().unwrap();
        assert_eq!(st.durable().unwrap().wal_len(), 0);
        file.page_ids().to_vec()
    };
    let (st2, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    assert!(report.had_checkpoint);
    assert_eq!(report.pages_from_checkpoint, pages.len());
    assert_eq!(report.wal_records_scanned, 0);
    assert_eq!(st2.live_pages(), pages.len());
    // Content still intact.
    let total: usize = pages.iter().map(|&id| st2.read_page(id).len()).sum();
    assert_eq!(total, 200);
}

#[test]
fn frees_and_rewrites_across_checkpoints_reuse_slots() {
    let dir = TempDir::new("nsql-durable-freelist");
    let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    let f1 = st.store_relation(&int_relation("T", 100));
    st.commit_durable(b"v1").unwrap();
    st.durable().unwrap().checkpoint().unwrap();
    let extents_before = st.durable().unwrap().live_extents().unwrap().len();

    // Drop the relation, write a same-sized replacement, checkpoint again:
    // the file should not balloon (slots are reused).
    for &id in f1.page_ids() {
        st.free_page(id);
    }
    let f2 = st.store_relation(&int_relation("T", 100));
    st.commit_durable(b"v2").unwrap();
    st.durable().unwrap().checkpoint().unwrap();
    let extents_after = st.durable().unwrap().live_extents().unwrap().len();
    assert_eq!(extents_before, extents_after);

    let (st3, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    assert_eq!(st3.live_pages(), f2.page_ids().len());
    let size1 = std::fs::metadata(dir.path().join("pages.nsql")).unwrap().len();
    // One more cycle must not grow the file at all.
    for &id in f2.page_ids() {
        st.free_page(id);
    }
    let _f3 = st.store_relation(&int_relation("T", 100));
    st.commit_durable(b"v3").unwrap();
    st.durable().unwrap().checkpoint().unwrap();
    let size2 = std::fs::metadata(dir.path().join("pages.nsql")).unwrap().len();
    assert_eq!(size1, size2, "slot reuse must keep the page file stable");
}

#[test]
fn io_counts_match_memory_backend_exactly() {
    let dir = TempDir::new("nsql-durable-iocount");
    let rel = int_relation("T", 150);

    let mem = Storage::new(4, 256);
    let (file_st, _) = Storage::file_backed(4, 256, dir.path()).unwrap();

    let mut snaps = Vec::new();
    for st in [&mem, &file_st] {
        let f = st.store_relation(&rel);
        st.commit_durable(b"v").unwrap(); // memory: no-op
        st.clear_buffer();
        st.reset_stats();
        let _ = st.load_relation(&f);
        let _ = st.load_relation(&f); // second scan exercises the buffer
        snaps.push(st.io_snapshot());
    }
    assert_eq!(snaps[0], snaps[1], "counted I/O must be backend-independent");
}

#[test]
fn page_id_allocation_resumes_after_reopen() {
    let dir = TempDir::new("nsql-durable-nextid");
    let max_id = {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let f = st.store_relation(&int_relation("T", 50));
        st.commit_durable(b"v").unwrap();
        f.page_ids().iter().map(|p| p.0).max().unwrap()
    };
    let (st2, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    let fresh = st2.write_new_page(vec![Tuple::new(vec![Value::Int(1)])]);
    assert!(fresh.0 > max_id, "recovered allocator must not reuse live ids");
}

#[test]
fn reopen_respects_stored_page_size() {
    let dir = TempDir::new("nsql-durable-pagesize");
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let f = st.store_relation(&int_relation("T", 50));
        st.commit_durable(b"v").unwrap();
        st.durable().unwrap().checkpoint().unwrap();
        drop(f);
    }
    // Caller passes a different default; the header's 256 must win.
    let (st2, _) = Storage::file_backed(8, 4096, dir.path()).unwrap();
    assert_eq!(st2.page_size(), 256);
}

#[test]
fn checkpoint_mid_batch_is_a_typed_error() {
    let dir = TempDir::new("nsql-durable-midbatch");
    let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    let _f = st.store_relation(&int_relation("T", 10));
    let err = st.durable().unwrap().checkpoint().unwrap_err();
    assert!(matches!(err, StorageError::Invalid(_)), "got {err:?}");
}
