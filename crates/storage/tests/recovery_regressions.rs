//! Named, shrunk reproductions of recovery bugs found by the
//! fault-injection harness and the corruption sweep (the PR 4 workflow:
//! every divergence the property suites catch is pinned here forever,
//! in its minimal form, so a regression is a named test failure rather
//! than an anonymous property report).

use nsql_storage::durable::codec;
use nsql_storage::durable::FaultPlan;
use nsql_storage::Storage;
use nsql_testkit::TempDir;
use nsql_types::{Tuple, Value};

fn tuples(tag: i64, n: i64) -> Vec<Tuple> {
    (0..n).map(|i| Tuple::new(vec![Value::Int(tag), Value::Int(i)])).collect()
}

/// Found by `random_workloads_recover_at_random_crash_points`, shrunk to
/// `ops: [Commit], crash_frac: 0.0, torn: Some(60)`: a "torn" write whose
/// byte budget covered the *entire* fatal op made the op complete, so a
/// commit the harness model called lost was durably recovered. The fault
/// model now caps the torn prefix at one byte less than the op: the fatal
/// op never completes (a crash after a complete op is the same crash at
/// the next site).
#[test]
fn torn_write_covering_whole_op_must_not_commit() {
    let dir = TempDir::new("nsql-regr-torn-whole");
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        // Crash at the very first WAL append with a torn budget far larger
        // than any single commit record.
        st.durable()
            .unwrap()
            .inject_fault(FaultPlan { crash_at_op: 0, torn_bytes: Some(10_000) });
        st.commit_durable(b"commit-0").unwrap();
        assert!(st.durable().unwrap().crashed());
    }
    let (st, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    assert_eq!(st.durable().unwrap().committed_meta(), None, "{report:?}");
    assert_eq!(report.commits_applied, 0);
}

/// Found by `flipped_bits_in_committed_pages_yield_typed_errors` (seed
/// 0xc044, round 19): chunk CRCs originally covered only the payload, so
/// flipping one bit in a chunk's `next` pointer (7 → 5) spliced two
/// individually valid chunks into a plausible — and silently wrong — page
/// image. Chunk CRCs now cover the header (linkage included), and the
/// directory carries a whole-image CRC per page.
#[test]
fn chain_splice_via_next_pointer_flip_is_detected() {
    let dir = TempDir::new("nsql-regr-splice");
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        // Two multi-chunk pages (images larger than one slot) so every
        // first chunk has a non-trivial `next` pointer.
        let _a = st.write_new_page(tuples(1, 40));
        let _b = st.write_new_page(tuples(2, 40));
        st.commit_durable(b"v").unwrap();
        st.durable().unwrap().checkpoint().unwrap();
    }
    let path = dir.path().join("pages.nsql");
    let original = std::fs::read(&path).unwrap();
    // Exhaustively flip every low bit of every chunk-header `next` byte in
    // the slot region; none may open silently with different content.
    let hdr = 2 * 256usize;
    let slot_size = 256 + 16;
    let mut checked = 0;
    for slot in 0..(original.len() - hdr) / slot_size {
        let off = hdr + slot * slot_size;
        for bit in 0..4 {
            let mut bytes = original.clone();
            bytes[off] ^= 1 << bit;
            if bytes == original {
                continue;
            }
            std::fs::write(&path, &bytes).unwrap();
            match Storage::file_backed(8, 256, dir.path()) {
                Err(_) => checked += 1,
                Ok((st, _)) => {
                    // Only acceptable if the flip hit a dead slot.
                    assert_eq!(st.live_pages(), 2, "slot {slot} bit {bit}: page lost");
                    let mut pages = st.durable().unwrap().snapshot_pages();
                    pages.sort_by_key(|(id, _)| *id);
                    assert_eq!(pages[0].1, tuples(1, 40), "slot {slot} bit {bit}: spliced");
                    assert_eq!(pages[1].1, tuples(2, 40), "slot {slot} bit {bit}: spliced");
                }
            }
        }
    }
    std::fs::write(&path, &original).unwrap();
    assert!(checked > 0, "sweep never hit a live chunk header");
}

/// A torn commit record rolls the batch back to the previous commit — the
/// valid WAL prefix is the durable history.
#[test]
fn torn_commit_record_rolls_back_to_previous_commit() {
    let dir = TempDir::new("nsql-regr-torn-commit");
    let first_batch;
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let a = st.write_new_page(tuples(1, 3));
        st.commit_durable(b"v1").unwrap();
        first_batch = vec![a];
        // Second batch: op 0 is the PageWrite append, op 1 the Commit
        // append (fault installation resets the op counter). Crash on the
        // commit record, leaving a 9-byte torn prefix.
        st.durable().unwrap().inject_fault(FaultPlan { crash_at_op: 1, torn_bytes: Some(9) });
        let _b = st.write_new_page(tuples(2, 3));
        st.commit_durable(b"v2").unwrap();
        assert!(st.durable().unwrap().crashed());
    }
    let (st, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    assert!(report.torn_tail, "{report:?}");
    assert_eq!(st.durable().unwrap().committed_meta().as_deref(), Some(&b"v1"[..]));
    let pages = st.durable().unwrap().snapshot_pages();
    assert_eq!(pages.len(), 1);
    assert_eq!(pages[0].0, first_batch[0]);
}

/// A crash between the checkpoint's header write and its WAL truncate
/// leaves stale-generation records behind; recovery must ignore them
/// rather than replay them onto the already-checkpointed image.
#[test]
fn crash_between_header_write_and_wal_truncate_is_idempotent() {
    // Dry run: count the ops in this workload's checkpoint (chunk
    // writes…, header write, WAL truncate). The truncate is the last op.
    let total = {
        let dir = TempDir::new("nsql-regr-hdr-trunc-dry");
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let _a = st.write_new_page(tuples(1, 3));
        st.commit_durable(b"v1").unwrap();
        let fs = st.durable().unwrap();
        fs.inject_fault(FaultPlan { crash_at_op: u64::MAX, torn_bytes: None });
        fs.checkpoint().unwrap();
        fs.write_ops()
    };
    assert!(total >= 3, "checkpoint should be several ops, got {total}");

    // Identical store, crash exactly at the truncate (the header has
    // landed; the old-generation WAL records survive on disk).
    let dir = TempDir::new("nsql-regr-hdr-trunc");
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let _a = st.write_new_page(tuples(1, 3));
        st.commit_durable(b"v1").unwrap();
        let fs = st.durable().unwrap();
        fs.inject_fault(FaultPlan { crash_at_op: total - 1, torn_bytes: None });
        fs.checkpoint().unwrap();
        assert!(fs.crashed(), "crash must land on the WAL truncate");
    }
    let (st, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    // Stale-generation records exist but must be discarded, not replayed.
    assert!(report.wal_records_scanned > 0, "{report:?}");
    assert_eq!(report.wal_records_applied, 0, "{report:?}");
    assert_eq!(st.durable().unwrap().committed_meta().as_deref(), Some(&b"v1"[..]));
    assert_eq!(st.live_pages(), 1);
    let pages = st.durable().unwrap().snapshot_pages();
    assert_eq!(pages[0].1, tuples(1, 3));
}

/// A crash in the middle of a checkpoint's chunk writes must leave the
/// previous checkpoint fully reachable (copy-on-write slot allocation).
#[test]
fn crash_mid_checkpoint_keeps_previous_checkpoint_reachable() {
    // First pass: measure how many ops a second checkpoint takes.
    let measure = {
        let dir = TempDir::new("nsql-regr-cow-measure");
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let a = st.write_new_page(tuples(1, 30));
        st.commit_durable(b"v1").unwrap();
        st.durable().unwrap().checkpoint().unwrap();
        st.free_page(a);
        let _b = st.write_new_page(tuples(2, 30));
        st.commit_durable(b"v2").unwrap();
        let fs = st.durable().unwrap();
        let before = fs.write_ops();
        fs.checkpoint().unwrap();
        fs.write_ops() - before
    };
    assert!(measure >= 3);
    // Sweep every op inside that second checkpoint.
    for crash_rel in 0..measure {
        let dir = TempDir::new("nsql-regr-cow");
        let b_id;
        {
            let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
            let a = st.write_new_page(tuples(1, 30));
            st.commit_durable(b"v1").unwrap();
            st.durable().unwrap().checkpoint().unwrap();
            st.free_page(a);
            b_id = st.write_new_page(tuples(2, 30));
            st.commit_durable(b"v2").unwrap();
            let fs = st.durable().unwrap();
            // Fault installation zeroes the op counter, so the crash site
            // is just the offset within the checkpoint.
            fs.inject_fault(FaultPlan { crash_at_op: crash_rel, torn_bytes: Some(7) });
            fs.checkpoint().unwrap();
            assert!(fs.crashed());
        }
        let (st, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
        // Whether or not the new header landed, the durable state is v2:
        // either new checkpoint image, or old checkpoint + WAL replay.
        assert_eq!(
            st.durable().unwrap().committed_meta().as_deref(),
            Some(&b"v2"[..]),
            "crash at relative op {crash_rel}: {report:?}"
        );
        let pages = st.durable().unwrap().snapshot_pages();
        assert_eq!(pages.len(), 1, "crash at relative op {crash_rel}");
        assert_eq!(pages[0].0, b_id);
        assert_eq!(pages[0].1, tuples(2, 30));
    }
}

/// A freed page must not resurrect after recovery, even when the free and
/// the pages around it span commits and a checkpoint.
#[test]
fn freed_page_does_not_resurrect() {
    let dir = TempDir::new("nsql-regr-resurrect");
    let (a, b);
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        a = st.write_new_page(tuples(1, 4));
        b = st.write_new_page(tuples(2, 4));
        st.commit_durable(b"v1").unwrap();
        st.durable().unwrap().checkpoint().unwrap();
        st.free_page(a);
        st.commit_durable(b"v2").unwrap();
        // No checkpoint after the free: recovery must apply the PageFree
        // record on top of the checkpoint image that still contains `a`.
    }
    let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    let pages = st.durable().unwrap().snapshot_pages();
    assert_eq!(pages.len(), 1);
    assert_eq!(pages[0].0, b);
    assert_eq!(st.durable().unwrap().committed_meta().as_deref(), Some(&b"v2"[..]));
    let _ = a;
}

/// The WAL scanner itself: a record claiming an absurd length is a torn
/// tail, not a crash or an allocation bomb.
#[test]
fn forged_wal_length_is_survivable() {
    let dir = TempDir::new("nsql-regr-forged-len");
    {
        let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
        let _a = st.write_new_page(tuples(1, 3));
        st.commit_durable(b"v1").unwrap();
    }
    let path = dir.path().join("wal.nsql");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 12]);
    std::fs::write(&path, &bytes).unwrap();
    let (st, report) = Storage::file_backed(8, 256, dir.path()).unwrap();
    assert!(report.torn_tail);
    assert_eq!(st.durable().unwrap().committed_meta().as_deref(), Some(&b"v1"[..]));
    assert_eq!(st.live_pages(), 1);
}

/// Sanity for the codec invariant the directory image CRC rests on: page
/// encoding is deterministic, so recomputing a carried-over page's CRC at
/// checkpoint time matches the stored bytes.
#[test]
fn page_encoding_is_deterministic() {
    let t = tuples(3, 17);
    assert_eq!(codec::encode_page(&t), codec::encode_page(&t));
}
