//! The deterministic fault-injection recovery sweep.
//!
//! A random-but-seeded workload of page writes, frees, commits, and
//! checkpoints is first run *clean* to (a) enumerate every physical
//! file-write site (`FileStore::write_ops`) and (b) record, at each commit
//! boundary, the shadow state a correct recovery must reproduce: the full
//! page image set plus the committed catalog meta. The sweep then replays
//! the identical workload once per crash site — killing the store at write
//! op `k`, for every `k`, with both a lost and a torn fatal op — reopens
//! the directory, and diffs recovered state against the shadow entry for
//! the last commit whose final WAL append completed before the crash.
//!
//! Two layers:
//!
//! * [`sweep_every_site_recovers_to_last_durable_commit`] — exhaustive
//!   over crash sites for a pinned-seed workload (the acceptance
//!   criterion: *every* enumerated WAL/page write site must recover).
//! * [`random_workloads_recover_at_random_crash_points`] — the property
//!   form: workloads and crash fractions drawn from the testkit PRNG,
//!   replayable via `NSQL_TEST_SEED` and greedily shrunk (ops dropped
//!   first, then the crash point) on divergence.

use nsql_storage::durable::{FaultPlan, FileStore};
use nsql_storage::{PageId, Storage};
use nsql_testkit::{prop_assert, prop_assert_eq, Config, PropResult, Rng, Shrink, TempDir};
use nsql_types::{Tuple, Value};
use std::collections::BTreeMap;

/// One workload step. Page contents are derived from `(step, row)` so a
/// recovered page proves *which* write survived, not just that something
/// did.
#[derive(Debug, Clone, PartialEq)]
enum WOp {
    /// Write a fresh page with `rows` tuples.
    Write { rows: u8 },
    /// Free the `nth` (mod live) oldest still-live page.
    Free { nth: u8 },
    /// Commit the open batch; meta = commit ordinal.
    Commit,
    /// Checkpoint (only valid at a commit boundary; the workload commits
    /// first when needed).
    Checkpoint,
}

#[derive(Debug, Clone, PartialEq)]
struct SweepCase {
    ops: Vec<WOp>,
    /// Crash site as a fraction of the clean run's total write ops.
    crash_frac: f64,
    /// Torn bytes of the fatal op (None = op entirely lost).
    torn: Option<u8>,
}

impl Shrink for SweepCase {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Drop ops — halves first, then single removals.
        let n = self.ops.len();
        if n > 1 {
            for chunk in [n / 2, 1] {
                if chunk == 0 {
                    continue;
                }
                for start in (0..n).step_by(chunk.max(1)) {
                    let mut ops = self.ops.clone();
                    ops.drain(start..(start + chunk).min(n));
                    if !ops.is_empty() && ops != self.ops {
                        out.push(SweepCase { ops, ..self.clone() });
                    }
                }
            }
        }
        // Simplify the crash point and tear.
        if self.crash_frac > 0.0 {
            out.push(SweepCase { crash_frac: 0.0, ..self.clone() });
            out.push(SweepCase { crash_frac: self.crash_frac / 2.0, ..self.clone() });
        }
        if self.torn.is_some() {
            out.push(SweepCase { torn: None, ..self.clone() });
        }
        out
    }
}

fn gen_case(rng: &mut Rng) -> SweepCase {
    let n_ops = rng.gen_range(4..40) as usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(match rng.gen_range(0..10) {
            0..=4 => WOp::Write { rows: rng.gen_range(1..12) as u8 },
            5..=6 => WOp::Free { nth: rng.gen_range(0..8) as u8 },
            7..=8 => WOp::Commit,
            _ => WOp::Checkpoint,
        });
    }
    ops.push(WOp::Commit);
    SweepCase {
        ops,
        crash_frac: rng.f64_unit(),
        torn: if rng.gen_bool(0.5) { Some(rng.gen_range(0..64) as u8) } else { None },
    }
}

/// Durable state at a commit boundary: page images + committed meta.
type Shadow = (BTreeMap<u64, Vec<Tuple>>, Vec<u8>);

fn page_tuples(step: usize, rows: u8) -> Vec<Tuple> {
    (0..rows as i64)
        .map(|r| Tuple::new(vec![Value::Int(step as i64), Value::Int(r), Value::str("payload")]))
        .collect()
}

/// Run the workload against `storage`. Returns, per executed commit, the
/// shadow state and the store's `write_ops()` right after that commit's
/// records landed. (On a crashed store the op counter freezes; the
/// returned boundaries are only meaningful for a clean run.)
fn run_workload(storage: &Storage, ops: &[WOp]) -> Vec<(u64, Shadow)> {
    let fs = storage.durable().expect("file-backed");
    let mut live: Vec<(PageId, Vec<Tuple>)> = Vec::new();
    let mut commits = Vec::new();
    let mut commit_no = 0u64;
    let commit =
        |storage: &Storage, fs: &FileStore, live: &[(PageId, Vec<Tuple>)], no: &mut u64| {
            let meta = format!("commit-{no}").into_bytes();
            storage.commit_durable(&meta).unwrap();
            *no += 1;
            let shadow: BTreeMap<u64, Vec<Tuple>> =
                live.iter().map(|(id, t)| (id.0, t.clone())).collect();
            (fs.write_ops(), (shadow, meta))
        };
    for (step, op) in ops.iter().enumerate() {
        match op {
            WOp::Write { rows } => {
                let tuples = page_tuples(step, *rows);
                let id = storage.write_new_page(tuples.clone());
                live.push((id, tuples));
            }
            WOp::Free { nth } => {
                if live.is_empty() {
                    continue;
                }
                let (id, _) = live.remove(*nth as usize % live.len());
                storage.free_page(id);
            }
            WOp::Commit => commits.push(commit(storage, fs, &live, &mut commit_no)),
            WOp::Checkpoint => {
                // Checkpoints require a commit boundary; the implied
                // commit is part of the workload's deterministic op
                // stream.
                commits.push(commit(storage, fs, &live, &mut commit_no));
                let _ = fs.checkpoint();
            }
        }
    }
    commits
}

/// Check one crash site: rerun the workload with the fault installed,
/// reopen, and diff against the last commit durable before the crash.
fn check_crash_site(
    case: &SweepCase,
    clean_commits: &[(u64, Shadow)],
    crash_at: u64,
    torn: Option<usize>,
) -> PropResult {
    let dir = TempDir::new("nsql-crash-sweep");
    {
        let (storage, _) = Storage::file_backed(8, 256, dir.path()).map_err(|e| e.to_string())?;
        storage
            .durable()
            .unwrap()
            .inject_fault(FaultPlan { crash_at_op: crash_at, torn_bytes: torn });
        let _ = run_workload(&storage, &case.ops);
    }
    // Expected: the last commit whose records all landed strictly before
    // the crash op (the op indexed `crash_at` itself is lost or torn).
    let expect: Shadow = clean_commits
        .iter()
        .rev()
        .find(|(end_ops, _)| *end_ops <= crash_at)
        .map(|(_, s)| s.clone())
        .unwrap_or_default();

    let (recovered, report) =
        Storage::file_backed(8, 256, dir.path()).map_err(|e| e.to_string())?;
    let fs = recovered.durable().unwrap();
    let got: BTreeMap<u64, Vec<Tuple>> =
        fs.snapshot_pages().into_iter().map(|(id, t)| (id.0, t)).collect();
    prop_assert_eq!(
        &got,
        &expect.0,
        "crash at op {} (torn {:?}): recovered pages diverge (report {:?})",
        crash_at,
        torn,
        report
    );
    let got_meta = fs.committed_meta().unwrap_or_default();
    prop_assert_eq!(
        String::from_utf8_lossy(&got_meta),
        String::from_utf8_lossy(&expect.1),
        "crash at op {} (torn {:?}): wrong committed meta",
        crash_at,
        torn
    );
    Ok(())
}

fn clean_run(case: &SweepCase) -> (Vec<(u64, Shadow)>, u64) {
    let dir = TempDir::new("nsql-crash-clean");
    let (storage, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    let commits = run_workload(&storage, &case.ops);
    let total = storage.durable().unwrap().write_ops();
    (commits, total)
}

/// Acceptance criterion: for a fixed representative workload, kill the
/// store at **every** enumerated write site (each with a lost and a torn
/// fatal op) and require oracle-identical recovery each time.
#[test]
fn sweep_every_site_recovers_to_last_durable_commit() {
    // Pinned seed → one representative workload with writes, frees,
    // multiple commits, and checkpoints. Changing the seed sweeps a
    // different workload; the property test below roams freely.
    let mut rng = Rng::from_seed(0xc4a5_4000);
    let mut case = gen_case(&mut rng);
    // Make sure the workload exercises every op kind.
    case.ops.insert(0, WOp::Write { rows: 9 });
    case.ops.insert(1, WOp::Commit);
    case.ops.insert(2, WOp::Checkpoint);
    case.ops.insert(3, WOp::Free { nth: 0 });
    case.ops.push(WOp::Checkpoint);

    let (commits, total_ops) = clean_run(&case);
    assert!(total_ops >= 20, "workload too small to be a meaningful sweep: {total_ops} ops");
    assert!(commits.len() >= 3, "want several commit boundaries, got {}", commits.len());
    for crash_at in 0..total_ops {
        for torn in [None, Some(5)] {
            if let Err(msg) = check_crash_site(&case, &commits, crash_at, torn) {
                panic!("crash sweep failed at site {crash_at}/{total_ops}: {msg}");
            }
        }
    }
}

/// Property form: random workloads, random crash fractions, seedable and
/// shrinkable via the standard testkit machinery.
#[test]
fn random_workloads_recover_at_random_crash_points() {
    nsql_testkit::forall_cfg(
        &Config::cases(60),
        "random_workloads_recover_at_random_crash_points",
        gen_case,
        |case| {
            let (commits, total_ops) = clean_run(case);
            prop_assert!(total_ops > 0, "workload produced no write ops");
            let crash_at = ((case.crash_frac * total_ops as f64) as u64).min(total_ops - 1);
            check_crash_site(case, &commits, crash_at, case.torn.map(usize::from))
        },
    );
}
