//! Trace-equivalence property test for the O(1) `BufferPool`.
//!
//! The pool used to pick eviction victims with a full-frame
//! `min_by_key(last_used)` scan; it now maintains an intrusive recency
//! list. Both disciplines must agree exactly: `get` bumps a (conceptual)
//! clock on every access, so `last_used` timestamps are pairwise distinct
//! and the LRU victim is *unique* — there is no tie the two
//! implementations could break differently. This suite keeps the old
//! timestamp-scan logic alive as a test-only oracle and replays
//! randomized access/evict traces against it, demanding identical
//! hit/miss sequences, identical resident sets after every step, and
//! identical disk read counts. Any divergence would change counted page
//! I/Os — the quantity the paper's experiments are stated in.

use nsql_storage::{BufferPool, Disk, Page, PageId};
use nsql_testkit::{forall, prop_assert, prop_assert_eq, Shrink};
use nsql_types::{Tuple, Value};
use std::sync::Arc;

/// The pre-rewrite pool, reduced to its accounting skeleton: a timestamped
/// frame table scanned with `min_by_key` on eviction.
struct ReferenceLru {
    capacity: usize,
    frames: Vec<(PageId, u64)>,
    clock: u64,
}

impl ReferenceLru {
    fn new(capacity: usize) -> ReferenceLru {
        ReferenceLru { capacity: capacity.max(1), frames: Vec::new(), clock: 0 }
    }

    /// Returns `true` on a cache hit.
    fn access(&mut self, id: PageId) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(f) = self.frames.iter_mut().find(|(p, _)| *p == id) {
            f.1 = clock;
            return true;
        }
        if self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            self.frames.remove(victim);
        }
        self.frames.push((id, clock));
        false
    }

    fn evict(&mut self, id: PageId) {
        self.frames.retain(|(p, _)| *p != id);
    }

    fn resident(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self.frames.iter().map(|(p, _)| *p).collect();
        ids.sort_by_key(|p| p.0);
        ids
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get(usize),
    Evict(usize),
}

impl Shrink for Op {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            Op::Get(i) => i.shrink().into_iter().map(Op::Get).collect(),
            // An eviction simplifies to a read of the same page first, then
            // to reads/evictions of smaller page indices.
            Op::Evict(i) => std::iter::once(Op::Get(i))
                .chain(i.shrink().into_iter().map(Op::Evict))
                .collect(),
        }
    }
}

fn disk_with_pages(n: u64) -> (Arc<Disk>, Vec<PageId>) {
    let disk = Arc::new(Disk::new());
    let ids: Vec<PageId> = (0..n)
        .map(|i| {
            let id = disk.alloc();
            disk.write(id, Page::new(vec![Tuple::new(vec![Value::Int(i as i64)])]));
            id
        })
        .collect();
    disk.reset_stats();
    (disk, ids)
}

#[test]
fn pool_replays_traces_identically_to_min_by_key_oracle() {
    forall(
        128,
        "pool_replays_traces_identically_to_min_by_key_oracle",
        |rng| {
            let pages = rng.gen_range(1u64..12);
            let capacity = rng.gen_range(1usize..8);
            let len = rng.gen_range(0usize..300);
            let trace: Vec<Op> = (0..len)
                .map(|_| {
                    let idx = rng.gen_range(0usize..pages as usize);
                    // Mostly reads; occasional explicit evictions (page frees).
                    if rng.gen_bool(0.9) {
                        Op::Get(idx)
                    } else {
                        Op::Evict(idx)
                    }
                })
                .collect();
            (pages, capacity, trace)
        },
        |(pages, capacity, trace)| {
            let (disk, ids) = disk_with_pages(*pages);
            let mut pool = BufferPool::new(Arc::clone(&disk), *capacity);
            let mut oracle = ReferenceLru::new(*capacity);
            for (step, op) in trace.iter().enumerate() {
                match *op {
                    Op::Get(idx) => {
                        let hits_before = pool.hits();
                        pool.get(ids[idx]);
                        let pool_hit = pool.hits() > hits_before;
                        let oracle_hit = oracle.access(ids[idx]);
                        prop_assert_eq!(
                            pool_hit, oracle_hit,
                            "step {step}: hit/miss diverged on get({idx})"
                        );
                    }
                    Op::Evict(idx) => {
                        pool.evict(ids[idx]);
                        oracle.evict(ids[idx]);
                    }
                }
                let mut got = pool.resident_pages();
                got.sort_by_key(|p| p.0);
                prop_assert_eq!(
                    &got,
                    &oracle.resident(),
                    "step {step}: resident sets diverged after {op:?}"
                );
                prop_assert!(pool.resident() <= *capacity, "step {step}: over capacity");
            }
            // Misses are the only source of reads: total disk reads must
            // equal the oracle's miss count exactly.
            let oracle_misses =
                trace.iter().filter(|op| matches!(op, Op::Get(_))).count() as u64 - pool.hits();
            prop_assert_eq!(pool.misses(), oracle_misses);
            prop_assert_eq!(disk.stats().reads, pool.misses());
            Ok(())
        },
    );
}

#[test]
fn recency_list_matches_timestamp_order() {
    // Beyond set equality: the pool's MRU→LRU listing must equal the
    // oracle's frames sorted by descending timestamp.
    forall(
        64,
        "recency_list_matches_timestamp_order",
        |rng| {
            let pages = rng.gen_range(1u64..10);
            let len = rng.gen_range(0usize..200);
            let trace: Vec<usize> =
                (0..len).map(|_| rng.gen_range(0usize..pages as usize)).collect();
            (pages, rng.gen_range(1usize..6), trace)
        },
        |(pages, capacity, trace)| {
            let (disk, ids) = disk_with_pages(*pages);
            let mut pool = BufferPool::new(disk, *capacity);
            let mut oracle = ReferenceLru::new(*capacity);
            for &idx in trace {
                pool.get(ids[idx]);
                oracle.access(ids[idx]);
                let mut by_recency = oracle.frames.clone();
                by_recency.sort_by_key(|&(_, last_used)| std::cmp::Reverse(last_used));
                let want: Vec<PageId> = by_recency.into_iter().map(|(p, _)| p).collect();
                prop_assert_eq!(&pool.resident_pages(), &want);
            }
            Ok(())
        },
    );
}
