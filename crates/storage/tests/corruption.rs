//! Page-corruption detection: flipped bits in committed data must surface
//! as a typed [`StorageError`], never a panic or a silent wrong answer.
//!
//! Random byte flips are drawn from the testkit PRNG at a pinned seed, so
//! the suite is deterministic yet covers many offsets; the targets are the
//! *live extents* of the page file (chunk headers + payloads reachable
//! from the current checkpoint) and the committed region of the WAL.

use nsql_storage::{Storage, StorageError};
use nsql_testkit::{Rng, TempDir};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};

fn relation(n: i64) -> Relation {
    let schema = Schema::new(vec![
        Column::qualified("T", "K", ColumnType::Int),
        Column::qualified("T", "S", ColumnType::Str),
    ]);
    let mut rel = Relation::empty(schema);
    for i in 0..n {
        rel.push(Tuple::new(vec![Value::Int(i), Value::str(format!("value-{i}"))])).unwrap();
    }
    rel
}

/// Build a checkpointed store and return its directory guard.
fn checkpointed_store(dir: &TempDir) -> Vec<(u64, u64)> {
    let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
    let _f = st.store_relation(&relation(80));
    st.commit_durable(b"meta").unwrap();
    st.durable().unwrap().checkpoint().unwrap();
    st.durable().unwrap().live_extents().unwrap()
}

#[test]
fn flipped_bits_in_committed_pages_yield_typed_errors() {
    let mut rng = Rng::from_seed(0xc0_44u64);
    for round in 0..25 {
        let dir = TempDir::new("nsql-corrupt-page");
        let extents = checkpointed_store(&dir);
        assert!(!extents.is_empty());
        // Pick a live extent, flip one random byte inside it.
        let (off, len) = *rng.choose(&extents);
        let at = off + rng.gen_range(0..len.max(1) as i64) as u64;
        let path = dir.path().join("pages.nsql");
        let mut bytes = std::fs::read(&path).unwrap();
        let bit = 1u8 << rng.gen_range(0..8);
        bytes[at as usize] ^= bit;
        std::fs::write(&path, &bytes).unwrap();

        match Storage::file_backed(8, 256, dir.path()) {
            Err(
                StorageError::Checksum { .. } | StorageError::Corrupt(_) | StorageError::Io(_),
            ) => {}
            Err(other) => panic!("round {round}: unexpected error kind {other:?}"),
            Ok((st, _)) => panic!(
                "round {round}: flip at offset {at} (bit {bit:#x}) opened silently \
                 with {} pages",
                st.live_pages()
            ),
        }
    }
}

#[test]
fn flipped_bits_in_committed_wal_truncate_but_never_lie() {
    // A flip in the WAL's committed region must either (a) surface as a
    // typed error, or (b) roll recovery back to an earlier commit — but
    // never produce a state that claims the later commit while carrying
    // damaged data. Here there is one commit, so the only honest fallback
    // is the empty store.
    let mut rng = Rng::from_seed(0x3a1_7u64);
    for round in 0..25 {
        let dir = TempDir::new("nsql-corrupt-wal");
        {
            let (st, _) = Storage::file_backed(8, 256, dir.path()).unwrap();
            let _f = st.store_relation(&relation(60));
            st.commit_durable(b"meta-1").unwrap();
            // No checkpoint: the WAL is the entire durable history.
        }
        let path = dir.path().join("wal.nsql");
        let mut bytes = std::fs::read(&path).unwrap();
        assert!(!bytes.is_empty());
        let at = rng.gen_range(0..bytes.len() as i64) as usize;
        bytes[at] ^= 1u8 << rng.gen_range(0..8);
        std::fs::write(&path, &bytes).unwrap();

        match Storage::file_backed(8, 256, dir.path()) {
            Err(
                StorageError::Checksum { .. } | StorageError::Corrupt(_) | StorageError::Io(_),
            ) => {}
            Err(other) => panic!("round {round}: unexpected error kind {other:?}"),
            Ok((st, report)) => {
                // The damaged record and everything after it must be gone;
                // with a single commit that means a fully empty store.
                assert_eq!(
                    (st.live_pages(), st.durable().unwrap().committed_meta()),
                    (0, None),
                    "round {round}: flip at {at} survived as a wrong answer ({report:?})"
                );
            }
        }
    }
}

#[test]
fn truncated_page_file_is_detected() {
    let dir = TempDir::new("nsql-corrupt-trunc");
    let _ = checkpointed_store(&dir);
    let path = dir.path().join("pages.nsql");
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);
    let err = Storage::file_backed(8, 256, dir.path());
    assert!(
        matches!(err, Err(StorageError::Corrupt(_)) | Err(StorageError::Checksum { .. })),
        "got {:?}",
        err.map(|(st, r)| (st.live_pages(), r))
    );
}
