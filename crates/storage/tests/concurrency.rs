//! Concurrency smoke test: many threads hammer one shared `Storage`
//! (get / pin / unpin / targeted evict). The test passing at all shows no
//! deadlock; the assertions check that the hit+miss ledger stays consistent
//! under contention and that eviction pressure never steals a pinned frame.

use nsql_storage::Storage;
use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 4_000;
const PAGES: usize = 64;
const CAPACITY: usize = 8;

/// Tiny deterministic PRNG (xorshift64*) so the schedule is seed-stable
/// per thread even though interleaving is not.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[test]
fn threads_hammering_shared_storage() {
    let st = Storage::new(CAPACITY, 512);
    let schema = Schema::new(vec![Column::new("A", ColumnType::Int)]);
    let ids: Vec<_> = (0..PAGES)
        .map(|i| st.write_new_page(vec![Tuple::new(vec![Value::Int(i as i64)])]))
        .collect();
    let _ = schema;

    // Pin two pages up front; they must survive arbitrary eviction pressure.
    let pinned = [ids[0], ids[1]];
    for &id in &pinned {
        let _ = st.read_page(id);
        assert!(st.pin_page(id));
    }
    st.reset_stats();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let st = st.clone();
            let ids = &ids;
            s.spawn(move || {
                let mut rng = Rng(0x9E3779B97F4A7C15 ^ (t as u64 + 1));
                // Per-thread nested pin bookkeeping so every pin is matched.
                let mut held: Vec<nsql_storage::PageId> = Vec::new();
                for op in 0..OPS_PER_THREAD {
                    // Never touch the globally pinned pages from workers so
                    // their pin counts stay exactly 1.
                    let id = ids[2 + (rng.next() as usize) % (PAGES - 2)];
                    match rng.next() % 8 {
                        // Mostly reads: hits and misses both exercised.
                        0..=4 => {
                            let p = st.read_page(id);
                            assert_eq!(p.len(), 1);
                        }
                        5 => {
                            // Pin (only counts if resident), remember to unpin.
                            let _ = st.read_page(id);
                            if st.pin_page(id) {
                                held.push(id);
                            }
                        }
                        6 => {
                            if let Some(id) = held.pop() {
                                assert!(st.unpin_page(id), "we pinned it, so it is resident");
                            }
                        }
                        _ => {
                            // Targeted evict of a page we hold no pin on; if
                            // another thread pinned it, `evict` walks past it.
                            if !held.contains(&id) {
                                let _ = st.evict_page(id);
                            }
                        }
                    }
                    if op % 512 == 0 {
                        // Periodically confirm the globally pinned frames are
                        // still resident mid-flight.
                        for &p in &pinned {
                            assert!(st.page_resident(p), "pinned page was evicted");
                        }
                    }
                }
                for id in held {
                    assert!(st.unpin_page(id));
                }
            });
        }
    });

    // Pinned frames survived the whole run.
    for &id in &pinned {
        assert!(st.page_resident(id), "pinned page was evicted");
        assert!(st.unpin_page(id));
    }

    // Ledger consistency: every buffered access is exactly one hit or one
    // miss, and every miss cost exactly one disk read.
    let (hits, misses) = st.buffer_stats();
    let io = st.io_stats();
    assert_eq!(io.reads, misses, "each miss reads exactly one page");
    assert_eq!(io.writes, 0);
    assert!(hits + misses > 0);
    assert!(hits > 0, "with 64 pages over an 8-frame pool some reads must hit");
    assert!(misses > 0, "with 64 pages over an 8-frame pool some reads must miss");

    // Resident set respects capacity once eviction can make progress again:
    // the pool only grows past capacity while every frame is pinned, and the
    // next miss reclaims the excess. Force one guaranteed miss.
    let _ = st.evict_page(ids[2]);
    let _ = st.read_page(ids[2]);
    assert!(st.resident_pages() <= CAPACITY);
}
