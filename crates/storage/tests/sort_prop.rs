//! Property tests for the external (B−1)-way merge sort: output is a
//! sorted permutation of the input, duplicate elimination matches the
//! in-memory reference, and I/O stays within the model envelope across
//! random buffer sizes.

use nsql_storage::sort::{compare, SortKey};
use nsql_storage::{external_sort, HeapFile, Storage};
use nsql_testkit::{forall, prop_assert, prop_assert_eq, Rng};
use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("A", ColumnType::Int),
        Column::new("B", ColumnType::Int),
    ])
}

fn file_of(st: &Storage, rows: &[(i64, i64)]) -> HeapFile {
    HeapFile::from_tuples(
        st,
        schema(),
        rows.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)])),
    )
}

fn rows_of(rng: &mut Rng, max_len: usize, a_span: i64, b_span: i64) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0usize..max_len);
    (0..n)
        .map(|_| (rng.gen_range(0i64..a_span), rng.gen_range(0i64..b_span)))
        .collect()
}

#[test]
fn sort_is_a_sorted_permutation() {
    forall(
        64,
        "sort_is_a_sorted_permutation",
        |rng| {
            (
                rows_of(rng, 400, 50, 50),
                rng.gen_range(3usize..10),
                *rng.choose(&[64usize, 128, 512]),
            )
        },
        |(rows, buffer, page_size)| {
            let st = Storage::new(*buffer, *page_size);
            let f = file_of(&st, rows);
            let keys = [SortKey::asc(0), SortKey::desc(1)];
            let sorted = external_sort(&st, &f, &keys, false);
            let got: Vec<Tuple> = sorted.scan(&st).collect();
            // Sorted?
            for w in got.windows(2) {
                prop_assert!(compare(&w[0], &w[1], &keys) != std::cmp::Ordering::Greater);
            }
            // Permutation?
            let mut want: Vec<Tuple> = f.scan(&st).collect();
            let mut have = got;
            want.sort_by(Tuple::total_cmp);
            have.sort_by(Tuple::total_cmp);
            prop_assert_eq!(want, have);
            Ok(())
        },
    );
}

#[test]
fn unique_sort_matches_in_memory_dedup() {
    forall(
        64,
        "unique_sort_matches_in_memory_dedup",
        |rng| (rows_of(rng, 200, 8, 4), rng.gen_range(3usize..8)),
        |(rows, buffer)| {
            let st = Storage::new(*buffer, 64);
            let f = file_of(&st, rows);
            let sorted = external_sort(&st, &f, &[], true);
            let got = sorted.tuple_count();
            let mut want = rows.clone();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(got, want.len());
            Ok(())
        },
    );
}

#[test]
fn sort_io_within_model_envelope() {
    forall(
        64,
        "sort_io_within_model_envelope",
        |rng| (rng.gen_range(50usize..600), rng.gen_range(4usize..8)),
        |&(n, buffer)| {
            let st = Storage::new(buffer, 64);
            let rows: Vec<(i64, i64)> = (0..n as i64).map(|i| ((i * 7919) % 601, i)).collect();
            let f = file_of(&st, &rows);
            let p = f.page_count() as f64;
            let before = st.io_stats();
            let _ = external_sort(&st, &f, &[SortKey::asc(0)], false);
            let used = st.io_stats().since(&before).total() as f64;
            // Upper bound: 2P per pass, passes ≤ 1 + ceil(log_{B-1}(runs)) + 1 slack.
            let b = buffer as f64;
            let runs = (p / b).ceil().max(1.0);
            let passes = 1.0 + if runs > 1.0 { runs.log(b - 1.0).ceil() } else { 0.0 };
            prop_assert!(
                used <= 2.0 * p * (passes + 1.0) + 4.0,
                "sort of {p} pages with B={buffer} used {used} I/Os (≈{passes} passes expected)"
            );
            Ok(())
        },
    );
}
