//! Experiment E11 — the "four possible total costs" of Section 7.4,
//! **measured**: nested-loop vs merge join chosen independently at the
//! temp-creation join and at the final join, plus the cost-based pick.
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin ablation
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_bench::{measure, print_table};
use nsql_db::plan_exec::PlanExecutor;
use nsql_db::{JoinPolicy, QueryOptions};
use nsql_engine::Exec;

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    let sql = queries::TYPE_JA_MAX;
    println!(
        "workload: Pi = {} pages, Pj = {} pages, B = {}; query: Q3-with-MAX\n",
        w.outer_pages(),
        w.inner_pages(),
        w.spec.buffer_pages
    );

    // Reference result and baseline.
    let ni = measure(&w.db, sql, "nested iteration", &QueryOptions::nested_iteration());

    let plan = w.db.plan(sql).expect("transformable");
    let storage = w.db.storage().clone();
    let mut rows = Vec::new();
    for temp_policy in [JoinPolicy::ForceNestedLoop, JoinPolicy::ForceMergeJoin] {
        for final_policy in [JoinPolicy::ForceNestedLoop, JoinPolicy::ForceMergeJoin] {
            storage.clear_buffer();
            let before = storage.io_stats();
            let exec = Exec::new(storage.clone());
            let mut pe = PlanExecutor::new(exec, w.db.catalog(), temp_policy);
            // Temps under `temp_policy` …
            for temp in &plan.temps {
                let out = pe.run_plan(&temp.plan).expect("temp plan");
                let schema = out.file.schema().requalify(&temp.name);
                let file = out.file.with_schema(schema);
                pe.register_temp(
                    &temp.name,
                    nsql_db::plan_exec::PlanOutput {
                        file,
                        sorted_by: out.sorted_by,
                        indexes: vec![],
                    },
                );
            }
            // … final canonical query under `final_policy`.
            pe.set_policy(final_policy);
            let rel = pe.execute_flat_query(&plan.canonical, false).expect("canonical");
            pe.drop_temps();
            let io = storage.io_stats().since(&before);
            assert!(rel.same_bag(&ni.relation), "variant disagrees with reference");
            rows.push(vec![
                temp_policy.name().to_string(),
                final_policy.name().to_string(),
                io.total().to_string(),
                format!("{:.1}%", (1.0 - io.total() as f64 / ni.io.total() as f64) * 100.0),
            ]);
        }
    }
    // Cost-based pick for comparison.
    let cb = measure(&w.db, sql, "cost-based", &QueryOptions::transformed());
    rows.push(vec![
        "cost-based".into(),
        "cost-based".into(),
        cb.io.total().to_string(),
        format!("{:.1}%", (1.0 - cb.io.total() as f64 / ni.io.total() as f64) * 100.0),
    ]);
    // E13 extension: what a post-1987 hash join would buy.
    let hj = measure(
        &w.db,
        sql,
        "hash-join",
        &QueryOptions {
            join_policy: JoinPolicy::ForceHashJoin,
            ..QueryOptions::transformed()
        },
    );
    assert!(hj.relation.same_bag(&ni.relation));
    rows.push(vec![
        "hash-join*".into(),
        "hash-join*".into(),
        hj.io.total().to_string(),
        format!("{:.1}%", (1.0 - hj.io.total() as f64 / ni.io.total() as f64) * 100.0),
    ]);

    print_table(
        &format!(
            "E11 — NEST-JA2 evaluation variants (baseline: nested iteration = {} page I/Os)",
            ni.io.total()
        ),
        &["temp-creation join", "final join", "page I/Os", "savings vs NI"],
        &rows,
    );
    println!(
        "Section 7.4: \"there are four possible total costs for a single-level\n\
         query, each of which may be estimated by the optimizer\" — all four beat\n\
         nested iteration here, and the two-merge-join variant exploits the\n\
         pre-sorted temporaries exactly as the paper describes.\n\
         (*) hash join is a modern extension — System R offered only\n\
         nested-loop and merge joins; it is excluded from the cost-based pick."
    );
}
