//! Experiment E12 — crossover sweep (extension of Figure 1).
//!
//! Sweeps the inner-relation size and buffer size to locate the regime
//! where transformation stops paying: "The comparative costs will of
//! course vary with different queries and data base conditions" (§4). The
//! crossover is exactly where the inner relation fits into the buffer and
//! nested iteration's rescans become cache hits.
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin sweep
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_bench::{measure, print_table};
use nsql_db::QueryOptions;

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    let seed = seed_from_env();
    // ---- sweep 1: inner relation size at fixed B = 6 -------------------
    let mut rows = Vec::new();
    for inner_tuples in [30usize, 75, 150, 450, 1500, 4500] {
        let w = ja_workload(
            WorkloadSpec {
                inner_tuples,
                ..WorkloadSpec::kim_scale()
            },
            seed,
        );
        let ni = measure(
            &w.db,
            queries::TYPE_JA_COUNT,
            "ni",
            &QueryOptions::nested_iteration(),
        );
        let tr = measure(
            &w.db,
            queries::TYPE_JA_COUNT,
            "tr",
            &QueryOptions::transformed(),
        );
        assert!(tr.relation.same_bag(&ni.relation));
        let ratio = ni.io.total() as f64 / tr.io.total() as f64;
        rows.push(vec![
            inner_tuples.to_string(),
            w.inner_pages().to_string(),
            ni.io.total().to_string(),
            tr.io.total().to_string(),
            format!("{ratio:.2}x"),
            if ratio >= 1.0 { "transform" } else { "nested iteration" }.to_string(),
        ]);
    }
    print_table(
        "E12a — inner size sweep (type-JA COUNT query, B = 6, f(i)·Ni ≈ 100)",
        &["inner tuples", "Pj (pages)", "NI I/Os", "TR I/Os (cost-based)", "NI/TR", "winner"],
        &rows,
    );

    // ---- sweep 2: buffer size at fixed inner = 450 tuples --------------
    let mut rows = Vec::new();
    for buffer_pages in [4usize, 6, 12, 24, 48] {
        let w = ja_workload(
            WorkloadSpec {
                inner_tuples: 450,
                buffer_pages,
                ..WorkloadSpec::kim_scale()
            },
            seed,
        );
        let ni = measure(
            &w.db,
            queries::TYPE_JA_COUNT,
            "ni",
            &QueryOptions::nested_iteration(),
        );
        let tr = measure(
            &w.db,
            queries::TYPE_JA_COUNT,
            "tr",
            &QueryOptions::transformed(),
        );
        assert!(tr.relation.same_bag(&ni.relation));
        let fits = w.inner_pages() < buffer_pages;
        rows.push(vec![
            buffer_pages.to_string(),
            format!("{}{}", w.inner_pages(), if fits { " (fits)" } else { "" }),
            ni.io.total().to_string(),
            tr.io.total().to_string(),
            format!("{:.2}x", ni.io.total() as f64 / tr.io.total() as f64),
        ]);
    }
    print_table(
        "E12b — buffer size sweep (Pj ≈ 30 pages)",
        &["B (pages)", "Pj", "NI I/Os", "TR I/Os", "NI/TR"],
        &rows,
    );

    // ---- sweep 3: outer selectivity f(i) --------------------------------
    let mut rows = Vec::new();
    for sel in [0.02f64, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let w = ja_workload(
            WorkloadSpec {
                inner_tuples: 450,
                outer_selectivity: sel,
                ..WorkloadSpec::kim_scale()
            },
            seed,
        );
        let ni = measure(
            &w.db,
            queries::TYPE_JA_COUNT,
            "ni",
            &QueryOptions::nested_iteration(),
        );
        let tr = measure(
            &w.db,
            queries::TYPE_JA_COUNT,
            "tr",
            &QueryOptions::transformed(),
        );
        assert!(tr.relation.same_bag(&ni.relation));
        rows.push(vec![
            format!("{sel:.2}"),
            ni.io.total().to_string(),
            tr.io.total().to_string(),
            format!("{:.2}x", ni.io.total() as f64 / tr.io.total() as f64),
        ]);
    }
    print_table(
        "E12c — outer selectivity sweep (nested iteration cost ∝ f(i)·Ni)",
        &["f(i)", "NI I/Os", "TR I/Os", "NI/TR"],
        &rows,
    );
    println!(
        "Crossover reading: nested iteration is competitive only when the inner\n\
         relation fits in the buffer (E12b 'fits' rows) or almost no outer tuples\n\
         qualify (E12c smallest f(i)); everywhere else the transformation wins,\n\
         by an order of magnitude in the Kim-scale regime."
    );
}
