//! Recovery smoke for `scripts/verify.sh`: build Kiessling's example
//! database file-backed, crash the store mid-commit at every write site of a
//! follow-up INSERT, recover, and diff the recovered image against the naive
//! oracle — the on-disk state must be exactly the last committed state
//! (never a torn intermediate), and every pipeline must agree with the
//! oracle on the recovered data.
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin recovery_smoke
//! ```

use nsql_db::{Database, QueryOptions};
use nsql_oracle::Oracle;
use nsql_storage::FaultPlan;
use nsql_testkit::TempDir;
use nsql_types::Relation;

/// Kiessling's example database (the paper's Section 4 walkthrough).
const SETUP: &str = "CREATE TABLE PARTS (PNUM INT, QOH INT);
     CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
     INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
     INSERT INTO SUPPLY VALUES
       (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
       (10, 2, 8-10-81), (8, 5, 5-7-83);";

/// Kiessling's Q2 — the COUNT-bug query.
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

/// Write sites to sweep: comfortably past the last durable write of the
/// probe INSERT's commit, so the tail of the range exercises "crash after
/// commit" (the insert must survive) as well as every torn prefix.
const CRASH_SITES: u64 = 16;

fn main() {
    // Keep the run deterministic; recovery itself is single-threaded.
    std::env::set_var("NSQL_THREADS", "1");
    let q2 = nsql_sql::parse_query(Q2).expect("Q2 parses");
    let (mut survived, mut rolled_back) = (0u64, 0u64);

    for crash_at in 0..CRASH_SITES {
        let dir = TempDir::new("nsql-recovery-smoke");
        let insert_landed;
        {
            let mut db = Database::open(dir.path()).expect("open file-backed");
            db.execute_script(SETUP).expect("setup script");
            db.catalog_mut().create_index("SUPPLY", "PNUM").expect("index");
            let store = db.storage().durable().expect("file-backed").clone();
            store.inject_fault(FaultPlan {
                crash_at_op: crash_at,
                torn_bytes: Some(3),
            });
            // The fault model simulates process death: the doomed process
            // sees no error, its writes just stop reaching disk.
            db.execute_script("INSERT INTO PARTS VALUES (99, 99)").expect("insert");
            insert_landed = !store.crashed();
        }

        // "Restart the process" and replay recovery.
        let db = Database::open(dir.path())
            .unwrap_or_else(|e| panic!("recovery failed at crash site {crash_at}: {e}"));
        let report = db.open_report().expect("open() retains its report").clone();

        // Oracle diff: load the *recovered* heap contents into the naive
        // interpreter and compare both engine strategies against it.
        let mut oracle = Oracle::new();
        let names: Vec<String> =
            db.catalog().table_names().iter().map(|s| s.to_string()).collect();
        for name in &names {
            let file = db.catalog().table(name).expect("listed table exists");
            let rel = Relation::new(
                file.schema().clone(),
                file.scan(db.storage()).collect(),
            )
            .expect("recovered heap is well-typed");
            oracle.load(name.clone(), rel);
        }
        let want = oracle.eval(&q2).expect("oracle evaluates Q2");
        for (label, opts) in [
            ("nested iteration", QueryOptions::nested_iteration()),
            ("transformed", QueryOptions::transformed()),
        ] {
            let got = db.query_with(Q2, &opts).expect("Q2 on recovered image");
            assert!(
                got.relation.same_bag(&want),
                "crash site {crash_at}: {label} diverges from the oracle on the \
                 recovered image\noracle:\n{want}\ngot:\n{}",
                got.relation
            );
        }

        // The recovered PARTS row count must be exactly pre- or post-commit.
        let parts = db.catalog().table("PARTS").expect("PARTS").tuple_count();
        let expect = if insert_landed { 4 } else { 3 };
        assert_eq!(
            parts, expect,
            "crash site {crash_at}: torn intermediate state surfaced \
             (WAL scanned {}, applied {}, discarded {})",
            report.recovery.wal_records_scanned,
            report.recovery.wal_records_applied,
            report.recovery.wal_records_discarded,
        );
        if insert_landed {
            survived += 1;
        } else {
            rolled_back += 1;
        }
    }

    assert!(rolled_back > 0, "no crash site rolled back — sweep starts too late");
    assert!(survived > 0, "no crash site survived — widen CRASH_SITES");
    println!(
        "recovery smoke: {CRASH_SITES} crash sites swept, \
         {rolled_back} rolled back to the last commit, {survived} kept the \
         committed insert; oracle agreed at every site"
    );
}
