//! Experiments E3–E8 — the Section 5–6 bug demonstrations, printed as the
//! paper prints them (every intermediate temporary and final result).
//!
//! ```sh
//! cargo run -p nsql-bench --bin bugs            # all demonstrations
//! cargo run -p nsql-bench --bin bugs -- count   # just the COUNT bug
//! ```
//!
//! Subcommands: `count`, `count-fix`, `count-star`, `non-eq`,
//! `duplicates`, `ja2-trace`.

use nsql_core::{JaVariant, UnnestOptions};
use nsql_db::plan_exec::PlanExecutor;
use nsql_db::{Database, JoinPolicy, QueryOptions, Strategy};
use nsql_engine::Exec;

const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

const Q5: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT MAX(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)";

fn kiessling_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
           (10, 2, 8-10-81), (8, 5, 5-7-83);",
    )
    .expect("fixture loads");
    db
}

fn section_5_3_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 0), (10, 4), (8, 4);
         INSERT INTO SUPPLY VALUES
           (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78), (9, 5, 3-2-79);",
    )
    .expect("fixture loads");
    db
}

fn section_5_4_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT, QOH INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
         INSERT INTO PARTS VALUES (3, 6), (3, 2), (10, 1), (10, 0), (8, 0);
         INSERT INTO SUPPLY VALUES
           (3, 4, 8/14/77), (3, 2, 11/11/78), (10, 1, 6/22/76);",
    )
    .expect("fixture loads");
    db
}

fn variant_opts(variant: JaVariant) -> QueryOptions {
    QueryOptions {
        strategy: Strategy::Transform,
        unnest: UnnestOptions { ja_variant: variant, ..Default::default() },
        cold_start: true,
        ..Default::default()
    }
}

/// Run a transformation, print each temporary table and the final result.
fn run_with_temps(db: &Database, sql: &str, variant: JaVariant) {
    let q = nsql_sql::parse_query(sql).expect("valid SQL");
    let plan =
        nsql_core::transform_query(db.catalog(), &q, &UnnestOptions { ja_variant: variant, ..Default::default() })
            .expect("transformable");
    println!("{plan}\n");
    let exec = Exec::new(db.storage().clone());
    let mut pe = PlanExecutor::new(exec, db.catalog(), JoinPolicy::ForceMergeJoin);
    let rel = pe.execute_transform_plan(&plan, false).expect("executes");
    for temp in &plan.temps {
        let out = pe.temp(&temp.name).expect("registered");
        println!(
            "{}:\n{}\n",
            temp.name,
            db.storage().load_relation(&out.file)
        );
    }
    pe.drop_temps();
    println!("final result:\n{rel}\n");
}

fn demo_count() {
    println!("════ E3 — the COUNT bug (Section 5.1) ════\n");
    let db = kiessling_db();
    println!("Query Q2 [KIE 84]: {Q2}\n");
    let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
    println!("nested iteration (ground truth):\n{}\n", ni.relation);
    println!("Kim's NEST-JA transformation:");
    run_with_temps(&db, Q2, JaVariant::KimOriginal);
    println!(
        "→ TEMP's CT column can never be 0, so part 8 (QOH = 0) is lost.\n"
    );
}

fn demo_count_fix() {
    println!("════ E4 — the outer-join fix (Section 5.2) ════\n");
    let db = kiessling_db();
    println!("NEST-JA2 on query Q2:");
    run_with_temps(&db, Q2, JaVariant::Ja2);
    println!("→ the LEFT OUTER JOIN manufactures the zero counts; {{10, 8}} as in the paper.\n");
}

fn demo_count_star() {
    println!("════ E5 — COUNT(*) (Section 5.2.1) ════\n");
    let db = kiessling_db();
    let q2_star = Q2.replace("COUNT(SHIPDATE)", "COUNT(*)");
    println!("Q2 with COUNT(*): the temporary must count the *join column*, or the\n\
              NULL-padded rows of the outer join would each count as 1.\n");
    run_with_temps(&db, &q2_star, JaVariant::Ja2);
    let ni = db.query_with(&q2_star, &QueryOptions::nested_iteration()).unwrap();
    println!("nested iteration agrees:\n{}\n", ni.relation);
}

fn demo_non_eq() {
    println!("════ E6 — relations other than equality (Section 5.3) ════\n");
    let db = section_5_3_db();
    println!("Query Q5: {Q5}\n");
    let ni = db.query_with(Q5, &QueryOptions::nested_iteration()).unwrap();
    println!("nested iteration (ground truth, MAX(∅) = NULL):\n{}\n", ni.relation);
    println!("Kim's NEST-JA (aggregates per join-column *value*):");
    run_with_temps(&db, Q5, JaVariant::KimOriginal);
    println!("NEST-JA2 (aggregates over the join-column *range*):");
    run_with_temps(&db, Q5, JaVariant::Ja2);
}

fn demo_duplicates() {
    println!("════ E7 — the duplicates problem (Section 5.4) ════\n");
    let db = section_5_4_db();
    let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
    println!("PARTS has duplicate PNUMs. nested iteration:\n{}\n", ni.relation);
    println!("outer-join fix WITHOUT the projection step (counts inflated):");
    run_with_temps(&db, Q2, JaVariant::Ja2NoProjection);
    println!("full NEST-JA2 (DISTINCT projection of the outer join column first):");
    run_with_temps(&db, Q2, JaVariant::Ja2);
}

fn demo_late_restriction() {
    println!("════ E5b — restriction ordering (Section 5.2) ════\n");
    let db = kiessling_db();
    println!(
        "The paper: \"the condition which applies to only one relation\n\
         (SHIPDATE < 1-1-80) must be applied before the join is performed.\n\
         Otherwise the join would not contain the last row, and the result\n\
         would be incorrect.\"\n"
    );
    println!("restriction applied AFTER the outer join (broken ordering):");
    run_with_temps(&db, Q2, JaVariant::Ja2LateRestriction);
    println!("→ part 8's padded row is filtered away (NULL SHIPDATE), so its zero\n\
              count is lost — the same wrong answer as Kim's NEST-JA.\n");
    println!("restriction applied BEFORE the join (NEST-JA2 proper):");
    run_with_temps(&db, Q2, JaVariant::Ja2);
}

fn demo_ja2_trace() {
    println!("════ E8 — the NEST-JA2 three-step walkthrough (Section 6.1) ════\n");
    let db = section_5_4_db();
    let out = db.query_with(Q2, &variant_opts(JaVariant::Ja2)).unwrap();
    for line in &out.explain {
        println!("  {line}");
    }
    println!();
    run_with_temps(&db, Q2, JaVariant::Ja2);
}

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("count") => demo_count(),
        Some("count-fix") => demo_count_fix(),
        Some("count-star") => demo_count_star(),
        Some("non-eq") => demo_non_eq(),
        Some("duplicates") => demo_duplicates(),
        Some("late-restriction") => demo_late_restriction(),
        Some("ja2-trace") => demo_ja2_trace(),
        Some(other) => {
            eprintln!(
                "unknown demo {other:?}; available: count, count-fix, count-star, \
                 non-eq, duplicates, late-restriction, ja2-trace"
            );
            std::process::exit(2);
        }
        None => {
            demo_count();
            demo_count_fix();
            demo_count_star();
            demo_non_eq();
            demo_duplicates();
            demo_late_restriction();
            demo_ja2_trace();
        }
    }
}
