//! EXPLAIN ANALYZE smoke gate and per-operator metrics exporter.
//!
//! Runs `EXPLAIN ANALYZE` on one query per transform type (type-N,
//! type-J, type-JA) against the seeded benchmark workload and validates
//! the JSON exporter schema by round-tripping every report through the
//! in-tree parser. Any missing key, unparseable output, or wrong
//! transform decision panics, so the process exits nonzero —
//! `scripts/verify.sh` runs this as the `explain_smoke` gate.
//!
//! With `NSQL_OBS_JSON=<path>` set, additionally appends one JSON line
//! per query — transform decision, predicted Section-7 costs, measured
//! page I/O, and the full per-operator metrics array — which is how
//! `scripts/bench.sh obs` builds `BENCH_pr5.json`.
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin explain_smoke
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_db::QueryOptions;
use nsql_obs::Json;
use std::io::Write as _;

fn require<'a>(j: &'a Json, key: &str, ctx: &str) -> &'a Json {
    j.get(key)
        .unwrap_or_else(|| panic!("explain JSON missing key `{key}` ({ctx})"))
}

fn main() {
    // The gate diffs nothing byte-for-byte (wall times vary), but the
    // schema must hold on the serial path the paper's tables use.
    std::env::set_var("NSQL_THREADS", "1");
    let w = ja_workload(WorkloadSpec::small(), seed_from_env());

    let cases = [
        ("type-N", queries::TYPE_N),
        ("type-J", queries::TYPE_J),
        ("type-JA", queries::TYPE_JA_COUNT),
    ];

    let mut lines = Vec::new();
    for (name, sql) in cases {
        let report = w
            .db
            .explain_query(sql, true, &QueryOptions::default())
            .unwrap_or_else(|e| panic!("{name}: EXPLAIN ANALYZE failed: {e}"));
        let text = report.to_json().to_string();
        let json = Json::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: exporter emitted unparseable JSON: {e}"));

        // ---- top-level schema ------------------------------------------
        for key in
            ["sql", "analyze", "chosen", "tree", "strategy", "predicted", "io", "rows", "obs"]
        {
            require(&json, key, name);
        }
        assert_eq!(
            require(&json, "analyze", name),
            &Json::Bool(true),
            "{name}: analyze flag not set"
        );
        let chosen = require(&json, "chosen", name)
            .as_str()
            .expect("chosen is a string")
            .to_string();

        // ---- per-operator metrics and lifecycle spans ------------------
        let obs = require(&json, "obs", name);
        let ops = require(obs, "operators", name).as_arr().expect("operators is an array");
        for op in ops {
            for key in [
                "label", "rows_in", "rows_out", "morsels_per_worker", "reads", "writes",
                "hits", "misses", "build_ns", "probe_ns", "wall_ns",
            ] {
                require(op, key, &format!("{name} operator"));
            }
        }
        let spans = require(obs, "spans", name).as_arr().expect("spans is an array");
        assert!(!spans.is_empty(), "{name}: no lifecycle spans recorded");

        // ---- transform decision per nesting type -----------------------
        match name {
            "type-N" => assert!(chosen.contains("NEST-N-J"), "{name}: chose {chosen}"),
            "type-J" => assert!(chosen.contains("NEST-N-J"), "{name}: chose {chosen}"),
            "type-JA" => {
                assert!(chosen.contains("NEST-JA2"), "{name}: chose {chosen}");
                let predicted = require(&json, "predicted", name)
                    .as_arr()
                    .expect("predicted is an array");
                assert_eq!(predicted.len(), 4, "{name}: want 4 Section-7 cost variants");
                for p in predicted {
                    for key in [
                        "temp_method", "final_method", "outer_projection", "temp_creation",
                        "final_join", "total",
                    ] {
                        require(p, key, &format!("{name} predicted cost"));
                    }
                }
                assert!(!ops.is_empty(), "{name}: no per-operator metrics");
            }
            _ => unreachable!(),
        }

        println!(
            "explain_smoke: {name:<8} ok — chosen: {chosen}; {} operator(s), {} span(s)",
            ops.len(),
            spans.len()
        );

        lines.push(
            Json::obj([
                ("bench", Json::str("explain")),
                ("query", Json::str(name)),
                ("chosen", Json::str(&chosen)),
                ("predicted", json.get("predicted").cloned().unwrap_or(Json::Null)),
                ("io", json.get("io").cloned().unwrap_or(Json::Null)),
                ("rows", json.get("rows").cloned().unwrap_or(Json::Null)),
                ("operators", Json::Arr(ops.to_vec())),
            ])
            .to_string(),
        );
    }

    if let Ok(path) = std::env::var("NSQL_OBS_JSON") {
        if !path.is_empty() {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
            for line in &lines {
                writeln!(f, "{line}").expect("write metrics line");
            }
        }
    }

    println!("explain_smoke: OK ({} queries validated)", cases.len());
}
