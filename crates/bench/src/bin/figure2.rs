//! Experiment E9 — Figure 2 and the Section-9.1 walkthrough: the query
//! tree, the postorder recursion, the upward inheritance of the
//! trans-aggregate join predicate, and the correctness of the result.
//!
//! ```sh
//! cargo run -p nsql-bench --bin figure2
//! ```

use nsql_core::UnnestOptions;
use nsql_db::{Database, QueryOptions};

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), SNAME CHAR(10), STATUS INT, CITY CHAR(10));
         CREATE TABLE P (PNO CHAR(4), PNAME CHAR(10), COLOR CHAR(8), WEIGHT INT, CITY CHAR(10));
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT, ORIGIN CHAR(10));
         INSERT INTO S VALUES
           ('S1','SMITH',400,'LONDON'), ('S2','JONES',400,'PARIS'),
           ('S3','BLAKE',30,'PARIS'),   ('S4','CLARK',20,'LONDON'),
           ('S5','ADAMS',30,'ATHENS');
         INSERT INTO P VALUES
           ('P1','NUT','RED',12,'LONDON'),  ('P2','BOLT','GREEN',17,'PARIS'),
           ('P3','SCREW','BLUE',17,'ROME'), ('P4','SCREW','RED',14,'LONDON'),
           ('P5','CAM','BLUE',12,'PARIS'),  ('P6','COG','RED',19,'LONDON');
         INSERT INTO SP VALUES
           ('S1','P1',300,'LONDON'), ('S1','P2',200,'PARIS'),
           ('S1','P3',400,'ROME'),   ('S1','P4',200,'LONDON'),
           ('S1','P5',100,'PARIS'),  ('S1','P6',100,'LONDON'),
           ('S2','P1',300,'PARIS'),  ('S2','P2',400,'PARIS'),
           ('S3','P2',200,'PARIS'),  ('S4','P2',200,'LONDON'),
           ('S4','P4',300,'LONDON'), ('S4','P5',400,'LONDON');",
    )
    .expect("fixture loads");

    // The Figure-2 shape: root A; B (aggregate) with descendants C and D
    // (D carries the join predicate referencing A's table — the
    // "trans-aggregate" reference); E is a second, independent child of A.
    let sql = "SELECT SNAME FROM S WHERE \
                 STATUS = (SELECT MAX(QTY) FROM SP WHERE PNO IN \
                             (SELECT PNO FROM P WHERE PNO IN \
                                (SELECT PNO FROM SP X WHERE X.ORIGIN = S.CITY))) \
                 AND CITY IN (SELECT CITY FROM P)";

    println!("query:\n  {sql}\n");
    let tree = db.query_tree(sql).expect("analyzable");
    println!("Figure 2 — the example query tree:\n{}", tree.render());
    println!("blocks: {}, max depth: {}\n", tree.block_count(), tree.depth());

    let plan = db.plan(sql).expect("transformable");
    println!("Section 9.1 — the recursion unwinds (postorder):");
    for (i, line) in plan.trace.iter().enumerate() {
        println!("  {}. {line}", i + 1);
    }
    println!("\ncanonical plan:\n{plan}\n");

    // Verify against nested iteration.
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).expect("reference runs");
    let opts = QueryOptions {
        unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
        ..QueryOptions::transformed()
    };
    let tr = db.query_with(sql, &opts).expect("transformed runs");
    assert!(tr.relation.same_set(&ni.relation), "strategies disagree");
    println!(
        "both strategies agree; nested iteration {} vs transformed {}.",
        ni.io, tr.io
    );
    println!("\nresult:\n{}", ni.relation);
}
