//! Experiment E2 — the Section-7.4 worked example, analytically and
//! measured.
//!
//! The paper: "Let the query to be evaluated be Kim's query Q3 where the
//! aggregate function is MAX(). Let Pi = 50, Pj = 30, Pt2 = 7, Pt3 = 10,
//! Pt4 = 8, Pt = 5, B = 6, and f(i)·Ni = 100. The nested iteration method
//! of processing Q3 costs 3050 page fetches in the worst case. The
//! transformation approach, using the modified algorithm and two merge
//! joins, costs about 475 page fetches."
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin section7
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_bench::{measure, print_table};
use nsql_core::cost::{ja2_cost, nested_iteration_cost_j, Ja2Params, JoinMethod};
use nsql_db::QueryOptions;

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    // ---------------------------------------------------- analytical part
    let p = Ja2Params::paper_example();
    let ni = nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni);
    println!(
        "Section 7.4 parameters: Pi={} Pj={} Pt2={} Pt3={} Pt4={} Pt={} B={} f(i)·Ni={}\n",
        p.pi, p.pj, p.pt2, p.pt3, p.pt4, p.pt, p.b, p.fi_ni
    );

    let mut rows = vec![vec![
        "nested iteration (worst case)".to_string(),
        String::new(),
        String::new(),
        String::new(),
        format!("{ni:.0}"),
        "3050".to_string(),
    ]];
    for m1 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
        for m2 in [JoinMethod::NestedLoop, JoinMethod::MergeJoin] {
            let c = ja2_cost(&p, m1, m2);
            let paper = if m1 == JoinMethod::MergeJoin && m2 == JoinMethod::MergeJoin {
                "≈475"
            } else {
                "—"
            };
            rows.push(vec![
                format!("NEST-JA2: {} / {}", m1.name(), m2.name()),
                format!("{:.1}", c.outer_projection),
                format!("{:.1}", c.temp_creation),
                format!("{:.1}", c.final_join),
                format!("{:.0}", c.total()),
                paper.to_string(),
            ]);
        }
    }
    print_table(
        "E2 (analytical) — the four possible total costs of Section 7.4",
        &["method (temp join / final join)", "step 1", "step 2", "step 3", "total", "paper"],
        &rows,
    );

    let mj = ja2_cost(&p, JoinMethod::MergeJoin, JoinMethod::MergeJoin).total();
    println!(
        "two-merge-join total: {mj:.0} page I/Os — the paper says \"about 475\".\n\
         (The paper's arithmetic implies a continuous log_(B-1); with a ceiled\n\
         log the same formula gives 558. See EXPERIMENTS.md.)\n"
    );

    // ---------------------------------------------------- measured part
    // A workload whose parameters approximate the example: Pj ≈ 30,
    // f(i)·Ni = 100, B = 6; Pi comes out at ≈67 pages (vs the paper's 50) —
    // reported alongside.
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    println!(
        "measured companion workload: Pi = {} pages, Pj = {} pages, B = {}",
        w.outer_pages(),
        w.inner_pages(),
        w.spec.buffer_pages
    );
    let ni = measure(
        &w.db,
        queries::TYPE_JA_MAX,
        "nested iteration",
        &QueryOptions::nested_iteration(),
    );
    let tr = measure(
        &w.db,
        queries::TYPE_JA_MAX,
        "NEST-JA2 + 2 merge joins",
        &QueryOptions::transformed_merge(),
    );
    assert!(tr.relation.same_bag(&ni.relation), "strategies disagree");
    print_table(
        "E2 (measured) — Q3-with-MAX on the companion workload",
        &["strategy", "page I/Os"],
        &[
            vec![ni.label.clone(), ni.io.total().to_string()],
            vec![tr.label.clone(), tr.io.total().to_string()],
        ],
    );
    println!(
        "savings: {:.1}% (paper's analytical example: {:.1}%)",
        (1.0 - tr.io.total() as f64 / ni.io.total() as f64) * 100.0,
        (1.0 - 475.0 / 3050.0) * 100.0
    );
}
