//! Differential oracle check, as a standalone gate for `scripts/verify.sh`.
//!
//! Runs `NSQL_DIFF_CASES` (default 250) random nested-query/database pairs
//! through the naive `nsql-oracle` interpreter and every engine pipeline —
//! nested iteration at 1 and 4 threads, the transformation under every join
//! policy, and `ForceDistinct` — comparing at the strength the paper
//! promises (see DESIGN.md "Oracle semantics"). Exits non-zero with a
//! replayable seed and a shrunk counterexample on the first divergence.
//!
//! Pin a specific case with `NSQL_TEST_SEED=<hex> NSQL_DIFF_CASES=1`.

use nested_query_opt::diff::{run_cache_dml_property, run_diff_property};

fn main() {
    let cases: u32 = std::env::var("NSQL_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    // The property runner honours NSQL_TEST_CASES too; route our own knob
    // through it so the two are never in conflict.
    std::env::set_var("NSQL_TEST_CASES", cases.to_string());
    let stats = run_diff_property("diffcheck", cases);
    let mut compared_somewhere = false;
    for s in &stats {
        println!(
            "diffcheck {:>14}: {:>5} compared, {:>4} skipped",
            s.name, s.compared, s.skipped
        );
        compared_somewhere |= s.compared > 0;
    }
    assert!(compared_somewhere, "diffcheck compared nothing — harness is broken");
    println!("diffcheck: {cases} cases, every pipeline agrees with the oracle");

    // The DML-interleaved cache sweep: cache-on ≡ cache-off ≡ oracle, with
    // random INSERTs between identical queries (see tests/diff_prop.rs).
    let stats = run_cache_dml_property("diffcheck-cache", cases);
    let mut compared_somewhere = false;
    for s in &stats {
        println!(
            "diffcheck {:>14}: {:>5} compared, {:>4} skipped",
            s.name, s.compared, s.skipped
        );
        compared_somewhere |= s.compared > 0;
    }
    assert!(compared_somewhere, "cache diffcheck compared nothing — harness is broken");
    println!("diffcheck: {cases} cases, the cache is transparent under interleaved DML");
}
