//! Experiment E1 — Figure 1: "Page I/Os Required in Kim's Examples".
//!
//! The paper reprints Kim's comparison of nested iteration against
//! transformation followed by merge join for one example of each nesting
//! type:
//!
//! ```text
//!   query     nested iteration    transformation + merge join
//!   type-N          10 220                 720
//!   type-J          10 120                 550
//!   type-JA          3 050                 615
//! ```
//!
//! Kim's exact table configurations are not recoverable from this paper
//! (see DESIGN.md), so this binary measures *our* engine on workloads with
//! the same structure (inner ≈ 100 pages, `f(i)·Ni ≈ 100`, `B = 6`) and
//! verifies the claim under test: transformation + merge join wins by
//! 80–95%.
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin figure1
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_bench::{measure, print_table, savings};
use nsql_core::cost::{nested_iteration_cost_j, nested_iteration_cost_n};
use nsql_core::UnnestOptions;
use nsql_db::QueryOptions;

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    let seed = seed_from_env();
    let spec = WorkloadSpec::kim_scale();
    let w = ja_workload(spec, seed);
    let ja_spec = WorkloadSpec::kim_scale_ja();
    let w_ja = ja_workload(ja_spec, seed);
    println!(
        "workloads: N/J rows — Pi = {} pages, Pj = {} pages; JA row — Pj = {} pages; \
         B = {}, f(i)·Ni ≈ {}\n",
        w.outer_pages(),
        w.inner_pages(),
        w_ja.inner_pages(),
        spec.buffer_pages,
        (spec.outer_tuples as f64 * spec.outer_selectivity) as usize
    );

    let paper: &[(&str, &str, bool, u64, u64)] = &[
        ("type-N", queries::TYPE_N, false, 10_220, 720),
        ("type-J", queries::TYPE_J, false, 10_120, 550),
        ("type-JA", queries::TYPE_JA_COUNT, true, 3_050, 615),
    ];

    // Analytical NI predictions from the Section-7 model on the *actual*
    // workload parameters.
    let b = spec.buffer_pages as f64;
    let fi_ni = spec.outer_tuples as f64 * spec.outer_selectivity;
    let model_for = |label: &str| -> f64 {
        match label {
            // X ≈ 34% of SUPPLY projected to one wide int column.
            "type-N" => {
                let x_tuples = spec.inner_tuples as f64 * 0.34;
                let px = (x_tuples * 10.0 / spec.page_size as f64).ceil();
                nested_iteration_cost_n(
                    w.outer_pages() as f64,
                    w.inner_pages() as f64,
                    px,
                    b,
                    spec.outer_tuples as f64,
                )
            }
            "type-J" => nested_iteration_cost_j(w.outer_pages() as f64, w.inner_pages() as f64, b, fi_ni),
            _ => nested_iteration_cost_j(w_ja.outer_pages() as f64, w_ja.inner_pages() as f64, b, fi_ni),
        }
    };

    let mut rows = Vec::new();
    for (label, sql, use_ja_workload, paper_ni, paper_tr) in paper {
        let db = if *use_ja_workload { &w_ja.db } else { &w.db };
        let ni = measure(db, sql, "nested iteration", &QueryOptions::nested_iteration());
        let opts = QueryOptions {
            unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
            ..QueryOptions::transformed_merge()
        };
        let tr = measure(db, sql, "transformed", &opts);
        assert!(
            tr.relation.same_set(&ni.relation),
            "{label}: strategies disagree"
        );
        let s = savings(&ni, &tr);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", model_for(label)),
            ni.io.total().to_string(),
            tr.io.total().to_string(),
            format!("{:.1}%", s * 100.0),
            format!("{paper_ni}"),
            format!("{paper_tr}"),
            format!("{:.1}%", (1.0 - *paper_tr as f64 / *paper_ni as f64) * 100.0),
        ]);
    }
    print_table(
        "Figure 1 — page I/Os: nested iteration vs transformation + merge join",
        &[
            "query",
            "model NI",
            "measured NI",
            "measured TR",
            "savings",
            "paper NI",
            "paper TR",
            "paper savings",
        ],
        &rows,
    );
    println!(
        "The paper's claim under reproduction: savings of 80% to 95% from the\n\
         transformation method. Absolute cells differ (Kim's exact configurations\n\
         are not given in this paper); the shape — who wins, and by how much — holds."
    );
}
