//! Statistics-subsystem smoke gate and JSON-export validator.
//!
//! Runs a mixed workload (all three strategies, a failing statement, and a
//! slow-logged statement) against the seeded benchmark database, then
//! checks the statistics surface end to end:
//!
//! * the `nsql_stat_*` system views answer plain SQL — including the
//!   acceptance query `SELECT query, calls, p99_us FROM
//!   nsql_stat_statements` and a nested query with a stat view in the
//!   inner block;
//! * the JSON snapshot export round-trips through the in-tree parser with
//!   per-fingerprint call counts matching the workload that was actually
//!   run;
//! * reading the views moves no counted I/O (the invariant every figure
//!   in the repo depends on).
//!
//! Any mismatch panics, so the process exits nonzero — `scripts/verify.sh`
//! runs this as the `stats_smoke` gate.
//!
//! ```sh
//! cargo run --release -p nsql-bench --bin stats_smoke
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_db::QueryOptions;
use nsql_obs::Json;

fn fingerprint(sql: &str) -> String {
    nsql_analyzer::query_fingerprint(&nsql_sql::parse_query(sql).expect("workload query parses"))
}

fn calls_for<'a>(stmts: &'a [Json], fp: &str) -> &'a Json {
    stmts
        .iter()
        .find(|s| s.get("query").and_then(|q| q.as_str()) == Some(fp))
        .unwrap_or_else(|| panic!("fingerprint missing from export: {fp}"))
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(|v| v.as_num())
        .unwrap_or_else(|| panic!("missing numeric `{key}` in {j}"))
}

fn main() {
    std::env::set_var("NSQL_THREADS", "1");
    let w = ja_workload(WorkloadSpec::small(), seed_from_env());

    // ---- mixed workload ---------------------------------------------------
    let ni = QueryOptions::nested_iteration();
    let tr = QueryOptions::transformed();
    let ba = QueryOptions::batched();
    w.db.query_with(queries::TYPE_N, &ni).expect("type-N runs");
    for _ in 0..3 {
        w.db.query_with(queries::TYPE_J, &tr).expect("type-J runs");
    }
    for _ in 0..2 {
        w.db.query_with(queries::TYPE_JA_COUNT, &ba).expect("type-JA runs");
    }
    let bad = "SELECT NO_SUCH_COL FROM PARTS";
    assert!(w.db.query(bad).is_err(), "analysis must reject {bad}");
    let slow = QueryOptions { slow_query_ms: Some(0), ..QueryOptions::nested_iteration() };
    w.db.query_with(queries::TYPE_JA_MAX, &slow).expect("slow-logged query runs");

    // ---- system views answer SQL, and *scanning* them is I/O-free ---------
    // Stat views live on uncounted system pages, so a pure scan (nested
    // iteration materializes nothing) moves no counter. A transformed
    // query over a view still pays for its own temps like any query —
    // that is query-processing cost, not observation cost.
    let io0 = w.db.storage().io_snapshot();
    let rel = w
        .db
        .query_with("SELECT query, calls, p99_us FROM nsql_stat_statements", &ni)
        .expect("acceptance query over nsql_stat_statements")
        .relation;
    // Five distinct fingerprints so far; the view snapshots at *this*
    // statement's start, so the acceptance query is not its own sixth row.
    assert_eq!(rel.len(), 5, "five distinct fingerprints ran:\n{rel}");
    let nested = w
        .db
        .query_with(
            "SELECT TABLE_NAME FROM NSQL_STAT_TABLES \
             WHERE SCANS >= (SELECT MAX(CALLS) FROM NSQL_STAT_STATEMENTS)",
            &ni,
        )
        .expect("nested query with stat-view inner block")
        .relation;
    assert!(!nested.tuples().is_empty(), "PARTS is scanned more often than any call count");
    let io1 = w.db.storage().io_snapshot();
    assert_eq!(io0, io1, "scanning statistics must not move counted I/O");
    // The same nested query under the transform strategy agrees on rows.
    let transformed = w
        .db
        .query_with(
            "SELECT TABLE_NAME FROM NSQL_STAT_TABLES \
             WHERE SCANS >= (SELECT MAX(CALLS) FROM NSQL_STAT_STATEMENTS)",
            &tr,
        )
        .expect("transformed nested query over stat views")
        .relation;
    // Not compared row-for-row against the NI run: each statement advances
    // the registry, so the two runs see different (equally correct)
    // snapshots. PARTS qualifies under any snapshot of this workload.
    assert!(
        transformed.tuples().iter().any(|t| t.get(0).to_string().contains("PARTS")),
        "transformed nested query lost PARTS:\n{transformed}"
    );

    // ---- JSON export round-trips with correct aggregation -----------------
    let text = w.db.stats().snapshot().to_json().to_string();
    let json = Json::parse(&text).expect("stats export parses with the in-tree parser");
    let stmts = json
        .get("statements")
        .and_then(|s| s.as_arr())
        .expect("export has a statements array");
    for (sql, calls, errors) in [
        (queries::TYPE_N, 1.0, 0.0),
        (queries::TYPE_J, 3.0, 0.0),
        (queries::TYPE_JA_COUNT, 2.0, 0.0),
        (queries::TYPE_JA_MAX, 1.0, 0.0),
        (bad, 1.0, 1.0),
    ] {
        let s = calls_for(stmts, &fingerprint(sql));
        assert_eq!(num(s, "calls"), calls, "calls mismatch for {sql}");
        assert_eq!(num(s, "errors"), errors, "errors mismatch for {sql}");
        let (min, max, p99) = (num(s, "min_us"), num(s, "max_us"), num(s, "p99_us"));
        assert!(min <= max && max <= p99.max(max), "inconsistent timings for {sql}");
    }
    let tables = json.get("tables").and_then(|t| t.as_arr()).expect("tables array");
    for name in ["PARTS", "SUPPLY"] {
        let t = tables
            .iter()
            .find(|t| t.get("table").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from tables export"));
        assert!(num(t, "scans") > 0.0, "{name} was scanned");
        assert!(num(t, "tuples_read") > 0.0, "{name} yielded tuples");
    }
    let slow_log = json.get("slow_queries").and_then(|s| s.as_arr()).expect("slow array");
    assert_eq!(slow_log.len(), 1, "exactly one statement ran over threshold 0");
    assert!(
        slow_log[0].get("explain").and_then(|e| e.as_arr()).is_some_and(|e| !e.is_empty()),
        "slow entry carries its rendered EXPLAIN"
    );

    println!(
        "stats_smoke: OK ({} fingerprints, {} tables, {} slow entr{})",
        stmts.len(),
        tables.len(),
        slow_log.len(),
        if slow_log.len() == 1 { "y" } else { "ies" }
    );
}
