//! Experiment E10 — the Section-8 predicate extensions: the rewrite table,
//! and end-to-end equivalence (plus the paper's own ANY/ALL caveat).
//!
//! ```sh
//! cargo run -p nsql-bench --bin extensions
//! ```

use nsql_bench::print_table;
use nsql_core::rewrites::rewrite_extended;
use nsql_core::UnnestOptions;
use nsql_db::{Database, QueryOptions};
use nsql_sql::{parse_query, print_predicate};

fn main() {
    // Figure/table output is diffed byte-for-byte against the serial
    // reference traces; pin the whole process to the serial code path.
    std::env::set_var("NSQL_THREADS", "1");
    // ---- the rewrite table itself -------------------------------------
    let examples = [
        "EXISTS (SELECT B FROM U WHERE U.B = T.A)",
        "NOT EXISTS (SELECT B FROM U WHERE U.B = T.A)",
        "A < ANY (SELECT B FROM U)",
        "A <= ANY (SELECT B FROM U)",
        "A < ALL (SELECT B FROM U)",
        "A > ANY (SELECT B FROM U)",
        "A > ALL (SELECT B FROM U)",
        "A = ANY (SELECT B FROM U)",
        "A != ALL (SELECT B FROM U)",
        "A = ALL (SELECT B FROM U)",
    ];
    let mut rows = Vec::new();
    for src in examples {
        let q = parse_query(&format!("SELECT A FROM T WHERE {src}")).expect("parses");
        let mut trace = Vec::new();
        let rewritten = rewrite_extended(q.where_clause.expect("has WHERE"), &mut trace);
        rows.push(vec![src.to_string(), print_predicate(&rewritten)]);
    }
    print_table("E10 — Section 8 rewrites", &["original", "rewritten"], &rows);

    // ---- end-to-end on data --------------------------------------------
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE S (SNO CHAR(4), STATUS INT);
         CREATE TABLE SP (SNO CHAR(4), PNO CHAR(4), QTY INT);
         INSERT INTO S VALUES ('S1', 2), ('S2', 0), ('S3', 1);
         INSERT INTO SP VALUES
           ('S1','P1',300), ('S1','P2',200), ('S3','P2',100);",
    )
    .expect("fixture loads");

    let mut rows = Vec::new();
    for (label, sql) in [
        (
            "EXISTS",
            "SELECT SNO FROM S WHERE EXISTS (SELECT PNO FROM SP WHERE SP.SNO = S.SNO)",
        ),
        (
            "NOT EXISTS",
            "SELECT SNO FROM S WHERE NOT EXISTS (SELECT PNO FROM SP WHERE SP.SNO = S.SNO)",
        ),
        (
            "COUNT = column",
            "SELECT SNO FROM S WHERE STATUS = (SELECT COUNT(PNO) FROM SP WHERE SP.SNO = S.SNO)",
        ),
        (
            ">= ALL (correlated)",
            "SELECT SNO, PNO FROM SP WHERE QTY >= ALL (SELECT QTY FROM SP X WHERE X.SNO = SP.SNO)",
        ),
    ] {
        let ni = db.query_with(sql, &QueryOptions::nested_iteration()).expect("reference");
        let tr = db
            .query_with(
                sql,
                &QueryOptions {
                    unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
                    ..QueryOptions::transformed_merge()
                },
            )
            .expect("transformed");
        let agree = tr.relation.same_set(&ni.relation);
        assert!(agree, "{label} must agree");
        rows.push(vec![
            label.to_string(),
            ni.relation.len().to_string(),
            tr.relation.len().to_string(),
            "yes".to_string(),
        ]);
    }
    print_table(
        "E10 — end-to-end equivalence after rewriting",
        &["predicate", "reference rows", "transformed rows", "agree"],
        &rows,
    );

    // ---- the paper's own caveat ----------------------------------------
    println!("── the documented ANY/ALL empty-set divergence (Section 8.2)");
    let sql = "SELECT SNO FROM S WHERE STATUS < ALL (SELECT QTY FROM SP WHERE QTY > 9000)";
    let ni = db.query_with(sql, &QueryOptions::nested_iteration()).expect("reference");
    let tr = db.query_with(sql, &QueryOptions::transformed_merge()).expect("transformed");
    println!("  query: {sql}");
    println!("  SQL semantics (ALL over ∅ is TRUE):        {} rows", ni.relation.len());
    println!("  paper rewrite (x < MIN(∅) = NULL, UNKNOWN): {} rows", tr.relation.len());
    println!(
        "  → the paper calls its rewrite \"logically (but not necessarily\n\
         semantically) equivalent\"; this is that divergence, reproduced."
    );
}
