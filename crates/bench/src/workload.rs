//! Synthetic workloads shaped like Kim's examples.
//!
//! Kim's Figure-1 table configurations are not reprinted in the paper, but
//! his cost formulas are, and the generators here are tuned so that the
//! *nested-iteration* costs land on Kim's cells:
//!
//! * type-N: `Pj + Px + Pi + Ni·Px ≈ 100 + 10 + 67 + 10 000 ≈ 10 200`
//!   (Kim: 10 220) — the stored list `X` is ~10 pages and every outer
//!   tuple re-scans it;
//! * type-J: `Pi + f(i)·Ni·Pj ≈ 67 + 100·100 ≈ 10 100` (Kim: 10 120);
//! * type-JA: same formula with `Pj = 30` → `≈ 3 070` (Kim: 3 050).
//!
//! The transformed costs are whatever our engine measures — the claim
//! under reproduction is the 80–95% savings band, not Kim's absolute
//! transformed cells. See DESIGN.md ("Faithfulness notes").

use nsql_db::Database;
use nsql_testkit::Rng;
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};

/// The default workload seed. Every figure/table binary uses this unless
/// `NSQL_WORKLOAD_SEED` overrides it, so published numbers (EXPERIMENTS.md)
/// are bit-reproducible run-to-run and machine-to-machine.
pub const DEFAULT_SEED: u64 = 42;

/// The workload seed to use: `NSQL_WORKLOAD_SEED` if set, else
/// [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    match std::env::var("NSQL_WORKLOAD_SEED") {
        Ok(v) => v.parse().unwrap_or_else(|_| panic!("bad NSQL_WORKLOAD_SEED: {v}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Parameters of a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Outer relation cardinality (`Ni`).
    pub outer_tuples: usize,
    /// Inner relation cardinality (`Nj`).
    pub inner_tuples: usize,
    /// Fraction of outer tuples passing the simple predicate (`f(i)`).
    pub outer_selectivity: f64,
    /// Fraction of inner PNUMs that exist in the outer relation (controls
    /// how often the COUNT-bug's empty groups occur).
    pub match_fraction: f64,
    /// Buffer pages (`B`).
    pub buffer_pages: usize,
    /// Page size in bytes.
    pub page_size: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            outer_tuples: 1000,
            inner_tuples: 1500, // ≈100 pages at 512-byte pages, 4 int columns
            outer_selectivity: 0.1,
            match_fraction: 0.8,
            buffer_pages: 6,
            page_size: 512,
        }
    }
}

impl WorkloadSpec {
    /// Kim-scale default (Figure 1, type-N and type-J rows): `Pj ≈ 100`,
    /// `Pi ≈ 67`, `f(i)·Ni = 100`.
    pub fn kim_scale() -> WorkloadSpec {
        WorkloadSpec::default()
    }

    /// The type-JA row of Figure 1 and the §7.4 example use a smaller
    /// inner relation (`Pj ≈ 30`).
    pub fn kim_scale_ja() -> WorkloadSpec {
        WorkloadSpec { inner_tuples: 450, ..WorkloadSpec::default() }
    }

    /// A smaller configuration for wall-clock benches.
    pub fn small() -> WorkloadSpec {
        WorkloadSpec {
            outer_tuples: 200,
            inner_tuples: 400,
            ..WorkloadSpec::default()
        }
    }
}

/// A generated database plus its spec.
pub struct Workload {
    /// The database (PARTS and SUPPLY loaded).
    pub db: Database,
    /// The workload spec it was built from.
    pub spec: WorkloadSpec,
}

impl Workload {
    /// `Pi`: pages of the outer relation.
    pub fn outer_pages(&self) -> usize {
        self.db.catalog().table("PARTS").map_or(0, |f| f.page_count())
    }

    /// `Pj`: pages of the inner relation.
    pub fn inner_pages(&self) -> usize {
        self.db.catalog().table("SUPPLY").map_or(0, |f| f.page_count())
    }
}

/// Schemas:
/// `PARTS(PNUM, QOH, GRP, SERIAL)` — `GRP` drives the outer simple
/// predicate (`GRP = 0` selects `f(i)` of the rows); `SERIAL` is a
/// wide-range value used by the type-N membership test.
/// `SUPPLY(PNUM, QUAN, EPOCH, TAG)` — `EPOCH` drives the inner simple
/// predicate (standing in for SHIPDATE); `TAG` is the wide-range column
/// the type-N inner block selects.
fn schemas() -> (Schema, Schema) {
    let parts = Schema::new(vec![
        Column::new("PNUM", ColumnType::Int),
        Column::new("QOH", ColumnType::Int),
        Column::new("GRP", ColumnType::Int),
        Column::new("SERIAL", ColumnType::Int),
    ]);
    let supply = Schema::new(vec![
        Column::new("PNUM", ColumnType::Int),
        Column::new("QUAN", ColumnType::Int),
        Column::new("EPOCH", ColumnType::Int),
        Column::new("TAG", ColumnType::Int),
    ]);
    (parts, supply)
}

/// Generate the workload; all four benchmark queries run against it.
/// Workloads are a pure function of `(spec, seed)` — same inputs, same
/// database, bit for bit.
pub fn ja_workload(spec: WorkloadSpec, seed: u64) -> Workload {
    let mut rng = Rng::from_seed(seed);
    let (parts_schema, supply_schema) = schemas();
    let grp_mod = (1.0 / spec.outer_selectivity).round().max(1.0) as i64;
    // Wide range for the membership columns: matches are rare, so the
    // stored list X is scanned (nearly) in full per outer tuple, as in
    // Kim's model.
    let wide = (spec.inner_tuples as i64 * 20).max(1000);

    let mut parts = Relation::empty(parts_schema);
    for i in 0..spec.outer_tuples {
        parts
            .push(Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..6)),
                Value::Int(i as i64 % grp_mod),
                Value::Int(rng.gen_range(0..wide)),
            ]))
            .unwrap();
    }
    let mut supply = Relation::empty(supply_schema);
    let pnum_range = (spec.outer_tuples as f64 / spec.match_fraction).ceil() as i64;
    for _ in 0..spec.inner_tuples {
        supply
            .push(Tuple::new(vec![
                Value::Int(rng.gen_range(0..pnum_range)),
                Value::Int(rng.gen_range(0..20)),
                Value::Int(rng.gen_range(0..100)),
                Value::Int(rng.gen_range(0..wide)),
            ]))
            .unwrap();
    }
    let mut db = Database::with_storage(spec.buffer_pages, spec.page_size);
    db.catalog_mut().load_table("PARTS", &parts).expect("fresh catalog");
    db.catalog_mut().load_table("SUPPLY", &supply).expect("fresh catalog");
    Workload { db, spec }
}

/// Alias kept for readability at call sites that only run type-N queries.
pub fn n_workload(spec: WorkloadSpec, seed: u64) -> Workload {
    ja_workload(spec, seed)
}

/// A duplicate-heavy variant of [`ja_workload`]: `PARTS.PNUM` cycles
/// through only `distinct_outer` values instead of being unique, and every
/// `SUPPLY.PNUM` is drawn from that same small domain, so the correlation
/// column carries massive duplication. This is the regime where batched
/// correlated evaluation shines — sort/dedup collapses `f(i)·Ni` outer
/// bindings to `distinct_outer` inner evaluations — and where the
/// NEST-JA2/merge-join transform pays full-relation sorts for a handful of
/// distinct groups. Same determinism contract as [`ja_workload`]: a pure
/// function of `(spec, seed, distinct_outer)`.
pub fn dup_workload(spec: WorkloadSpec, seed: u64, distinct_outer: usize) -> Workload {
    let mut rng = Rng::from_seed(seed);
    let (parts_schema, supply_schema) = schemas();
    let grp_mod = (1.0 / spec.outer_selectivity).round().max(1.0) as i64;
    let wide = (spec.inner_tuples as i64 * 20).max(1000);
    let domain = distinct_outer.max(1) as i64;

    let mut parts = Relation::empty(parts_schema);
    for i in 0..spec.outer_tuples {
        parts
            .push(Tuple::new(vec![
                Value::Int(i as i64 % domain),
                Value::Int(rng.gen_range(0..6)),
                Value::Int(i as i64 % grp_mod),
                Value::Int(rng.gen_range(0..wide)),
            ]))
            .unwrap();
    }
    let mut supply = Relation::empty(supply_schema);
    for _ in 0..spec.inner_tuples {
        supply
            .push(Tuple::new(vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..20)),
                Value::Int(rng.gen_range(0..100)),
                Value::Int(rng.gen_range(0..wide)),
            ]))
            .unwrap();
    }
    let mut db = Database::with_storage(spec.buffer_pages, spec.page_size);
    db.catalog_mut().load_table("PARTS", &parts).expect("fresh catalog");
    db.catalog_mut().load_table("SUPPLY", &supply).expect("fresh catalog");
    Workload { db, spec }
}

/// The benchmark queries, one per nesting type (`GRP = 0` is the outer
/// simple predicate giving `f(i)`).
pub mod queries {
    /// Type-N: membership in a large uncorrelated list. No outer simple
    /// predicate — Kim's type-N example tests every outer tuple. `EPOCH <
    /// 34` sizes the stored list `X` at ≈10 pages.
    pub const TYPE_N: &str = "SELECT PNUM FROM PARTS WHERE SERIAL IN \
        (SELECT TAG FROM SUPPLY WHERE EPOCH < 34)";

    /// Type-J: correlated membership.
    pub const TYPE_J: &str = "SELECT PNUM FROM PARTS WHERE GRP = 0 AND QOH IN \
        (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)";

    /// Type-J with NOT IN — *outside* the transformable class (the NEST-*
    /// rewrites have no sound join form for anti-membership under NULLs),
    /// so the transform refuses it and the pre-batched status quo is
    /// nested iteration.
    pub const TYPE_J_NOT_IN: &str = "SELECT PNUM FROM PARTS WHERE GRP = 0 AND QOH NOT IN \
        (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)";

    /// Type-JA: correlated aggregate (the Q2 shape, COUNT variant).
    pub const TYPE_JA_COUNT: &str = "SELECT PNUM FROM PARTS WHERE GRP = 0 AND QOH = \
        (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND EPOCH < 50)";

    /// Type-JA with MAX (Kim's Q3 shape used in §7.4).
    pub const TYPE_JA_MAX: &str = "SELECT PNUM FROM PARTS WHERE GRP = 0 AND QOH = \
        (SELECT MAX(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND EPOCH < 50)";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_per_seed() {
        let spec = WorkloadSpec { outer_tuples: 50, inner_tuples: 80, ..Default::default() };
        let a = ja_workload(spec, DEFAULT_SEED);
        let b = ja_workload(spec, DEFAULT_SEED);
        let ra = a.db.query("SELECT PNUM, QOH FROM PARTS WHERE GRP = 0").unwrap();
        let rb = b.db.query("SELECT PNUM, QOH FROM PARTS WHERE GRP = 0").unwrap();
        assert!(ra.same_bag(&rb));
        // A different seed produces a genuinely different database.
        let c = ja_workload(spec, DEFAULT_SEED + 1);
        let rc = c.db.query("SELECT PNUM, QOH FROM PARTS").unwrap();
        let ra_all = a.db.query("SELECT PNUM, QOH FROM PARTS").unwrap();
        assert!(!ra_all.same_bag(&rc), "seed must steer the generator");
    }

    #[test]
    fn kim_scale_hits_target_shape() {
        let w = ja_workload(WorkloadSpec::kim_scale(), DEFAULT_SEED);
        assert!(
            (85..=115).contains(&w.inner_pages()),
            "inner should be ≈100 pages, got {}",
            w.inner_pages()
        );
        assert!(
            (50..=85).contains(&w.outer_pages()),
            "outer should be ≈67 pages, got {}",
            w.outer_pages()
        );
        // f(i)·Ni ≈ 100.
        let f = w.db.query("SELECT PNUM FROM PARTS WHERE GRP = 0").unwrap();
        assert!((80..=120).contains(&f.len()), "f(i)·Ni = {}", f.len());
        // And the JA spec lands near Pj = 30.
        let ja = ja_workload(WorkloadSpec::kim_scale_ja(), DEFAULT_SEED);
        assert!((24..=36).contains(&ja.inner_pages()), "Pj = {}", ja.inner_pages());
    }

    #[test]
    fn queries_parse_and_run_on_small_workload() {
        let w = ja_workload(
            WorkloadSpec { outer_tuples: 40, inner_tuples: 60, ..WorkloadSpec::default() },
            DEFAULT_SEED,
        );
        for sql in [
            queries::TYPE_N,
            queries::TYPE_J,
            queries::TYPE_JA_COUNT,
            queries::TYPE_JA_MAX,
        ] {
            let ni = w
                .db
                .query_with(sql, &nsql_db::QueryOptions::nested_iteration())
                .unwrap();
            let opts = nsql_db::QueryOptions {
                unnest: nsql_core::UnnestOptions {
                    preserve_duplicates: true,
                    ..Default::default()
                },
                ..nsql_db::QueryOptions::transformed_merge()
            };
            let tr = w.db.query_with(sql, &opts).unwrap();
            assert!(
                tr.relation.same_set(&ni.relation),
                "{sql}\nNI:\n{}\nTR:\n{}",
                ni.relation,
                tr.relation
            );
        }
    }
}
