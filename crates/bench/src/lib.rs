#![warn(missing_docs)]

//! Experiment harness: workload generators and measurement helpers shared
//! by the per-figure binaries and the Criterion benches.
//!
//! Workloads are scaled to Kim's configurations: the inner relation is
//! ~100 pages, the outer a few dozen, the buffer 6 pages, and the outer
//! simple predicate selects ≈`f(i)·Ni = 100` tuples — the setting in which
//! Kim reports 10 220 / 10 120 / 3 050 page I/Os for nested iteration
//! (Figure 1).

pub mod workload;

pub use workload::{ja_workload, n_workload, Workload, WorkloadSpec};

use nsql_db::{Database, QueryOptions};
use nsql_storage::IoStats;
use nsql_types::Relation;

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Strategy label.
    pub label: String,
    /// Page I/Os.
    pub io: IoStats,
    /// Result rows (for cross-checking between strategies).
    pub relation: Relation,
}

/// Run `sql` under `opts` and collect the measurement.
pub fn measure(db: &Database, sql: &str, label: &str, opts: &QueryOptions) -> Measurement {
    let out = db
        .query_with(sql, opts)
        .unwrap_or_else(|e| panic!("query failed under {label}: {e}\n{sql}"));
    Measurement { label: label.to_string(), io: out.io, relation: out.relation }
}

/// Percentage saved by `new` relative to `baseline` (the paper's headline
/// metric: "cost savings of 80% to 95% are possible").
pub fn savings(baseline: &Measurement, new: &Measurement) -> f64 {
    1.0 - new.io.total() as f64 / baseline.io.total() as f64
}

/// Render a simple aligned table: header plus rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("── {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("  {:<w$}", c, w = widths[i]));
        }
        println!("{s}");
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_math() {
        let base = Measurement {
            label: "a".into(),
            io: IoStats { reads: 90, writes: 10 },
            relation: Relation::empty(Default::default()),
        };
        let new = Measurement {
            label: "b".into(),
            io: IoStats { reads: 10, writes: 10 },
            relation: Relation::empty(Default::default()),
        };
        assert!((savings(&base, &new) - 0.8).abs() < 1e-9);
    }
}
