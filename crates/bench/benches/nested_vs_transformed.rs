//! Wall-clock companion to experiment E1: nested iteration vs transformed
//! execution, one timer group per nesting type.
//!
//! The paper's metric is page I/Os (see `--bin figure1`); these benches
//! confirm the same ordering holds for real elapsed time in our engine.
//! Timing uses the in-tree `nsql_testkit::bench` harness: warmup then
//! median-of-N, `NSQL_BENCH_JSON=<path>` for machine-readable output.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench nested_vs_transformed
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, Workload, WorkloadSpec};
use nsql_core::UnnestOptions;
use nsql_db::QueryOptions;
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;

fn small_workload() -> Workload {
    ja_workload(WorkloadSpec::small(), seed_from_env())
}

fn bench_query(c: &mut Bench, group_name: &str, sql: &'static str, set_semantics: bool) {
    let w = small_workload();
    let mut group = c.group(group_name);
    group.sample_size(10);

    group.bench_function("nested_iteration", |b| {
        b.iter(|| {
            let out = w
                .db
                .query_with(black_box(sql), &QueryOptions::nested_iteration())
                .expect("reference runs");
            black_box(out.relation.len())
        })
    });
    let opts = if set_semantics {
        QueryOptions {
            unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
            ..QueryOptions::transformed_merge()
        }
    } else {
        QueryOptions::transformed_merge()
    };
    group.bench_function("transformed_merge", |b| {
        b.iter(|| {
            let out = w.db.query_with(black_box(sql), &opts).expect("transformed runs");
            black_box(out.relation.len())
        })
    });
    let cost_based = if set_semantics {
        QueryOptions {
            unnest: UnnestOptions { preserve_duplicates: true, ..Default::default() },
            ..QueryOptions::transformed()
        }
    } else {
        QueryOptions::transformed()
    };
    group.bench_function("transformed_cost_based", |b| {
        b.iter(|| {
            let out = w.db.query_with(black_box(sql), &cost_based).expect("transformed runs");
            black_box(out.relation.len())
        })
    });
    group.finish();
}

fn benches(c: &mut Bench) {
    bench_query(c, "type_n", queries::TYPE_N, true);
    bench_query(c, "type_j", queries::TYPE_J, true);
    bench_query(c, "type_ja_count", queries::TYPE_JA_COUNT, false);
    bench_query(c, "type_ja_max", queries::TYPE_JA_MAX, false);
}

bench_main!(benches);
