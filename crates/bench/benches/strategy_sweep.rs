//! Three-way strategy wall-clock sweep: nested iteration vs the NEST-*
//! transformation vs batched correlated evaluation on the same cells.
//!
//! Three workload regimes, chosen so each strategy loses somewhere:
//!
//! * `strategy-dup-type-J-notin` — the duplicate-heavy workload with a
//!   `NOT IN` query, which sits *outside* the transformable class: the
//!   NEST-* rewrites refuse it, so the `transform` cell honestly times
//!   the pre-batched status quo (attempt the rewrite, take the refusal,
//!   fall back to nested iteration). Batched evaluation still collapses
//!   the ~100 outer bindings to 8 distinct inner runs and beats both
//!   incumbents outright — this is the BENCH_pr9.json acceptance cell,
//!   and the reason a third executable strategy earns its keep: the
//!   transform's wins are confined to the class it can rewrite.
//!
//! * `strategy-dup-*` (IN / COUNT) — same duplicate-heavy workload on
//!   transformable queries: batched beats nested iteration ~4x, but the
//!   one-pass aggregate-view/join transform beats both — dedup does not
//!   pay for skipping the join entirely.
//!
//! * `strategy-unique-type-JA-count` — the standard Kim-scale workload,
//!   where `PARTS.PNUM` is unique: dedup buys nothing (every binding is
//!   distinct), so batched degenerates to nested iteration plus a sort.
//!   Recorded so the sweep shows batched is a regime, not a universal
//!   answer — the planner's three-way cost pick (EXPLAIN "strategy
//!   costs") must track exactly this crossover.
//!
//! Counted page I/Os per cell are deterministic (and thread-invariant for
//! batched by construction); the wall-clock medians are what
//! `scripts/bench.sh strategy` appends to BENCH_pr9.json.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench strategy_sweep
//! ```

use nsql_bench::workload::{dup_workload, ja_workload, queries, seed_from_env, Workload, WorkloadSpec};
use nsql_db::QueryOptions;
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;

/// Distinct correlation values in the duplicate-heavy regime.
const DUP_DOMAIN: usize = 8;

fn sweep(c: &mut Bench, group_name: &str, w: &Workload, sql: &'static str) {
    let mut group = c.group(group_name);
    group.sample_size(10);
    for (cell, base) in [
        ("ni", QueryOptions::nested_iteration()),
        ("transform", QueryOptions::transformed()),
        ("batched", QueryOptions::batched()),
    ] {
        let opts = QueryOptions { threads: 1, cold_start: true, ..base };
        let fallback = QueryOptions { threads: 1, cold_start: true, ..QueryOptions::nested_iteration() };
        group.bench_function(cell, |b| {
            b.iter(|| {
                // A transform refusal (query outside the transformable
                // class) is not free: time what a pre-batched system does —
                // attempt the rewrite, then run nested iteration.
                let out = match w.db.query_with(black_box(sql), &opts) {
                    Ok(out) => out,
                    Err(nsql_db::DbError::Transform(_)) => w
                        .db
                        .query_with(black_box(sql), &fallback)
                        .expect("nested-iteration fallback runs"),
                    Err(e) => panic!("bench query failed: {e}"),
                };
                black_box(out.relation.len())
            })
        });
    }
}

/// Duplicate-heavy correlation domain: batched's home turf.
fn bench_duplicate_heavy(c: &mut Bench) {
    let w = dup_workload(WorkloadSpec::kim_scale(), seed_from_env(), DUP_DOMAIN);
    sweep(c, "strategy-dup-type-J-notin", &w, queries::TYPE_J_NOT_IN);
    sweep(c, "strategy-dup-type-J", &w, queries::TYPE_J);
    let w_ja = dup_workload(WorkloadSpec::kim_scale_ja(), seed_from_env(), DUP_DOMAIN);
    sweep(c, "strategy-dup-type-JA-count", &w_ja, queries::TYPE_JA_COUNT);
}

/// Unique correlation column: the transform's home turf (batched pays the
/// binding sort for zero dedup).
fn bench_unique(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(c, "strategy-unique-type-JA-count", &w, queries::TYPE_JA_COUNT);
}

bench_main!(bench_duplicate_heavy, bench_unique);
