//! Wall-clock companion to experiment E11: the NEST-JA2 evaluation
//! variants (join-method ablation) plus the transformation itself.
//!
//! Timing uses the in-tree `nsql_testkit::bench` harness: warmup then
//! median-of-N, `NSQL_BENCH_JSON=<path>` for machine-readable output.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench ja2_variants
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, WorkloadSpec};
use nsql_db::{JoinPolicy, QueryOptions, Strategy};
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;

fn variants(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::small(), seed_from_env());
    let sql = queries::TYPE_JA_MAX;
    let mut group = c.group("ja2_join_policy");
    group.sample_size(10);
    for policy in [
        JoinPolicy::ForceNestedLoop,
        JoinPolicy::ForceMergeJoin,
        JoinPolicy::CostBased,
    ] {
        group.bench_function(policy.name(), |b| {
            let opts = QueryOptions {
                strategy: Strategy::Transform,
                join_policy: policy,
                cold_start: true,
                ..Default::default()
            };
            b.iter(|| {
                let out = w.db.query_with(black_box(sql), &opts).expect("runs");
                black_box(out.relation.len())
            })
        });
    }
    group.finish();
}

fn transform_only(c: &mut Bench) {
    // How long does the *transformation* itself take (no execution)?
    let w = ja_workload(WorkloadSpec::small(), seed_from_env());
    let mut group = c.group("transform_only");
    for (name, sql) in [
        ("type_ja", queries::TYPE_JA_COUNT),
        ("type_j", queries::TYPE_J),
        ("type_n", queries::TYPE_N),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(w.db.plan(black_box(sql)).expect("transformable")))
        });
    }
    group.finish();
}

bench_main!(variants, transform_only);
