//! Wall-clock companion to experiment E11: the NEST-JA2 evaluation
//! variants (join-method ablation) plus the transformation itself.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench ja2_variants
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use nsql_bench::workload::{ja_workload, queries, WorkloadSpec};
use nsql_db::{JoinPolicy, QueryOptions, Strategy};
use std::hint::black_box;

fn variants(c: &mut Criterion) {
    let w = ja_workload(WorkloadSpec::small());
    let sql = queries::TYPE_JA_MAX;
    let mut group = c.benchmark_group("ja2_join_policy");
    group.sample_size(10);
    for policy in [
        JoinPolicy::ForceNestedLoop,
        JoinPolicy::ForceMergeJoin,
        JoinPolicy::CostBased,
    ] {
        group.bench_function(policy.name(), |b| {
            let opts = QueryOptions {
                strategy: Strategy::Transform,
                join_policy: policy,
                cold_start: true,
                ..Default::default()
            };
            b.iter(|| {
                let out = w.db.query_with(black_box(sql), &opts).expect("runs");
                black_box(out.relation.len())
            })
        });
    }
    group.finish();
}

fn transform_only(c: &mut Criterion) {
    // How long does the *transformation* itself take (no execution)?
    let w = ja_workload(WorkloadSpec::small());
    let mut group = c.benchmark_group("transform_only");
    for (name, sql) in [
        ("type_ja", queries::TYPE_JA_COUNT),
        ("type_j", queries::TYPE_J),
        ("type_n", queries::TYPE_N),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(w.db.plan(black_box(sql)).expect("transformable")))
        });
    }
    group.finish();
}

criterion_group!(e11_wall_clock, variants, transform_only);
criterion_main!(e11_wall_clock);
