//! Thread-sweep wall-clock benches for morsel-parallel execution.
//!
//! Each group runs one (workload, query, strategy) cell at 1/2/4/8 worker
//! threads; the counted page I/Os are identical across the sweep (enforced
//! by `tests/par_prop.rs`), so any median movement is pure execution-time
//! speedup. `scripts/bench.sh sweep` records the results to BENCH_pr3.json.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench par_sweep
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, Workload, WorkloadSpec};
use nsql_db::{JoinPolicy, QueryOptions};
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn sweep(c: &mut Bench, group_name: &str, w: &Workload, sql: &'static str, base: &QueryOptions) {
    let mut group = c.group(group_name);
    group.sample_size(10);
    for t in THREADS {
        let opts = QueryOptions { threads: t, ..base.clone() };
        group.bench_function(&format!("threads={t}"), |b| {
            b.iter(|| {
                let out = w.db.query_with(black_box(sql), &opts).expect("query runs");
                black_box(out.relation.len())
            })
        });
    }
}

/// Nested iteration at Kim scale — the repeated-inner-scan workload the
/// morsel fan-out targets (acceptance: ≥ 1.8x at 4 threads).
fn bench_nested_iteration(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale(), seed_from_env());
    sweep(c, "ni-type-J", &w, queries::TYPE_J, &QueryOptions::nested_iteration());
    let w_ja = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(c, "ni-type-JA-count", &w_ja, queries::TYPE_JA_COUNT, &QueryOptions::nested_iteration());
}

/// NEST-JA2 transformed execution: sort/join/aggregate operators with
/// parallel run generation, build/probe, and merge-fold.
fn bench_transformed(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(c, "ja2-transformed-merge", &w, queries::TYPE_JA_COUNT, &QueryOptions::transformed_merge());
    let hash = QueryOptions { join_policy: JoinPolicy::ForceHashJoin, ..QueryOptions::transformed() };
    sweep(c, "ja2-transformed-hash", &w, queries::TYPE_JA_COUNT, &hash);
}

bench_main!(bench_nested_iteration, bench_transformed);
