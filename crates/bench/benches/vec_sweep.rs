//! Exec-mode wall-clock sweep: row vs vectorized execution per cell.
//!
//! Each group runs one (workload, query, strategy) cell under
//! `ExecMode::Row` and `ExecMode::Vector` at 1 and 4 worker threads. The
//! counted page I/Os are byte-identical across the sweep (enforced by
//! `tests/vec_prop.rs` and the differential harness), so any median
//! movement is pure execution-time speedup from the batch kernels and the
//! per-binding memo. `scripts/bench.sh vec` records the results to
//! BENCH_pr7.json; acceptance asks ≥2x on the type-J nested-iteration and
//! hash-join groups at threads=1.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench vec_sweep
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, Workload, WorkloadSpec};
use nsql_db::{ExecMode, JoinPolicy, QueryOptions};
use nsql_engine::{Exec, JoinKind};
use nsql_storage::{HeapFile, Storage};
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;
use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

const THREADS: [usize; 2] = [1, 4];

fn sweep(c: &mut Bench, group_name: &str, w: &Workload, sql: &'static str, base: &QueryOptions) {
    let mut group = c.group(group_name);
    group.sample_size(10);
    for t in THREADS {
        for (mode, mname) in [(ExecMode::Row, "row"), (ExecMode::Vector, "vector")] {
            let opts = QueryOptions { threads: t, exec_mode: mode, ..base.clone() };
            group.bench_function(&format!("mode={mname}/threads={t}"), |b| {
                b.iter(|| {
                    let out = w.db.query_with(black_box(sql), &opts).expect("query runs");
                    black_box(out.relation.len())
                })
            });
        }
    }
}

/// Nested iteration on the correlated workloads: the batch predicate
/// kernels plus the per-distinct-binding memo against row-at-a-time
/// re-evaluation of the inner block.
fn bench_nested_iteration(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale(), seed_from_env());
    sweep(c, "vec-ni-type-J", &w, queries::TYPE_J, &QueryOptions::nested_iteration());
    let w_ja = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(
        c,
        "vec-ni-type-JA-count",
        &w_ja,
        queries::TYPE_JA_COUNT,
        &QueryOptions::nested_iteration(),
    );
}

/// Transformed execution end-to-end: whole-query cells where the join is
/// one operator among sort/aggregate/project. These contextualize the
/// kernel numbers — small per-query joins amortize less, so the deltas
/// here are modest by design.
fn bench_transformed(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    let hash =
        QueryOptions { join_policy: JoinPolicy::ForceHashJoin, ..QueryOptions::transformed() };
    sweep(c, "vec-tr-hash", &w, queries::TYPE_JA_COUNT, &hash);
    sweep(c, "vec-tr-merge", &w, queries::TYPE_JA_COUNT, &QueryOptions::transformed_merge());
}

/// Seed a heap file of `rows` tuples: column 0 is `key(i)`, the remaining
/// `payload` columns carry derived ints (wide enough that per-tuple clone
/// cost is visible in the row path).
fn seeded_file(
    storage: &Storage,
    prefix: &str,
    rows: usize,
    payload: usize,
    key: impl Fn(usize) -> i64,
) -> HeapFile {
    let mut cols = vec![Column::new(format!("{prefix}K"), ColumnType::Int)];
    for c in 0..payload {
        cols.push(Column::new(format!("{prefix}P{c}"), ColumnType::Int));
    }
    let schema = Schema::new(cols);
    let tuples: Vec<Tuple> = (0..rows)
        .map(|i| {
            let mut vals = vec![Value::Int(key(i))];
            for c in 0..payload {
                vals.push(Value::Int((i * 31 + c * 7) as i64 % 1009));
            }
            Tuple::new(vals)
        })
        .collect();
    HeapFile::from_tuples(storage, schema, tuples)
}

/// Hash-join operator kernel: build + probe over relations large enough
/// that the join dominates. The probe side hits ~25% of the build table,
/// so the row path's per-probe key-tuple allocation and per-tuple scan
/// clones are measured against the vectorized u64-prehash probe that
/// materializes tuples only on match.
fn bench_hash_join(c: &mut Bench) {
    let storage = Storage::new(512, 4096);
    // Build side: 20k rows, dense keys. Probe side: 60k rows over a 4x
    // wider key domain — every build bucket is probed, 3 of 4 probes miss.
    let build = seeded_file(&storage, "R", 20_000, 3, |i| i as i64);
    let probe = seeded_file(&storage, "L", 60_000, 3, |i| ((i * 2_654_435_761) % 80_000) as i64);
    let mut group = c.group("vec-hash-join");
    group.sample_size(10);
    for t in THREADS {
        for (vectorized, mname) in [(false, "row"), (true, "vector")] {
            let e = Exec::with_threads(storage.clone(), t).with_vectorized(vectorized);
            group.bench_function(&format!("mode={mname}/threads={t}"), |b| {
                b.iter(|| {
                    let out = e
                        .hash_join_collect(
                            black_box(&probe),
                            black_box(&build),
                            &[0],
                            &[0],
                            None,
                            JoinKind::Inner,
                        )
                        .expect("join runs");
                    black_box(out.len())
                })
            });
        }
    }
}

bench_main!(bench_nested_iteration, bench_hash_join, bench_transformed);
