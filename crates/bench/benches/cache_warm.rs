//! Cold vs warm wall-clock sweep for the cross-query result cache.
//!
//! Each group runs one (workload, query, strategy) cell twice: `cache=off`
//! (every iteration recomputes — the cold baseline) and `cache=on-warm`
//! (the cache is primed once, every timed iteration answers from it). The
//! counted page I/Os are byte-identical between the two cells by
//! construction — an exact hit *recharges* the recorded page-event
//! sequence rather than skipping it (enforced by `tests/cache.rs` and the
//! DML-interleaved differential sweep) — so the median movement isolates
//! the evaluation work a hit avoids: predicate re-evaluation and tuple
//! materialization on the nested-iteration path; joins, sorts, and GROUP
//! BY on the transform path. `scripts/bench.sh cache` records the results
//! to BENCH_pr8.json; acceptance asks ≥3x on the warm nested-iteration
//! type-J and type-JA groups at threads=1. The transform cells are modest
//! by design at Kim scale: a hit replays step 1/2's temp creation, but
//! the final canonical join (never cached — it is the query's answer)
//! dominates those cells.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench cache_warm
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, Workload, WorkloadSpec};
use nsql_db::{CacheMode, QueryOptions};
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;

fn sweep(c: &mut Bench, group_name: &str, w: &Workload, sql: &'static str, base: &QueryOptions) {
    let mut group = c.group(group_name);
    group.sample_size(10);
    let cold = QueryOptions { cache: CacheMode::Off, threads: 1, ..base.clone() };
    group.bench_function("cache=off", |b| {
        b.iter(|| {
            let out = w.db.query_with(black_box(sql), &cold).expect("query runs");
            black_box(out.relation.len())
        })
    });
    let warm = QueryOptions { cache: CacheMode::On, threads: 1, ..base.clone() };
    // Prime outside the timed region; every timed iteration is a hit.
    let primed = w.db.query_with(sql, &warm).expect("prime run");
    black_box(primed.relation.len());
    group.bench_function("cache=on-warm", |b| {
        b.iter(|| {
            let out = w.db.query_with(black_box(sql), &warm).expect("query runs");
            black_box(out.relation.len())
        })
    });
}

/// Nested iteration: warm runs answer every correlated inner block from
/// the cross-query block cache (one recharged scan per binding instead of
/// a full re-evaluation).
fn bench_nested_iteration(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale(), seed_from_env());
    sweep(c, "cache-ni-type-J", &w, queries::TYPE_J, &QueryOptions::nested_iteration());
    let w_ja = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(
        c,
        "cache-ni-type-JA-count",
        &w_ja,
        queries::TYPE_JA_COUNT,
        &QueryOptions::nested_iteration(),
    );
}

/// Transform path: warm runs replay the recorded materialization of all
/// NEST-JA2 temps (TEMP1..TEMP3) instead of re-running step 1/2's scans,
/// join, and GROUP BY.
fn bench_transformed(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(c, "cache-tr-type-JA-count", &w, queries::TYPE_JA_COUNT, &QueryOptions::transformed());
    let w_j = ja_workload(WorkloadSpec::kim_scale(), seed_from_env());
    sweep(c, "cache-tr-type-J", &w_j, queries::TYPE_J, &QueryOptions::transformed());
}

bench_main!(bench_nested_iteration, bench_transformed);
