//! Wall-clock overhead of the always-on statistics registry.
//!
//! Each group runs one (workload, query, strategy) cell twice: `stats=off`
//! (registry disabled — the per-call cost is one relaxed atomic load) and
//! `stats=on` (per-table counters, fingerprint aggregation, and the
//! latency histogram all collecting). Counted page I/Os are byte-identical
//! between the cells by construction — collection is pure side-state off
//! the per-page hot loop (enforced by `tests/stats_prop.rs`) — so the
//! median movement isolates the registry's CPU cost. `scripts/bench.sh
//! stats` records the results to BENCH_pr10.json; acceptance reads the
//! stats-ni-type-J group and asks the stats=on median to sit within 2% of
//! stats=off.
//!
//! ```sh
//! cargo bench -p nsql-bench --bench stats_overhead
//! ```

use nsql_bench::workload::{ja_workload, queries, seed_from_env, Workload, WorkloadSpec};
use nsql_db::QueryOptions;
use nsql_testkit::bench::{black_box, Bench};
use nsql_testkit::bench_main;

fn sweep(c: &mut Bench, group_name: &str, w: &Workload, sql: &'static str, base: &QueryOptions) {
    let mut group = c.group(group_name);
    group.sample_size(10);
    let opts = QueryOptions { threads: 1, ..base.clone() };
    for (cell, enabled) in [("stats=off", false), ("stats=on", true)] {
        w.db.stats().set_enabled(enabled);
        group.bench_function(cell, |b| {
            b.iter(|| {
                let out = w.db.query_with(black_box(sql), &opts).expect("query runs");
                black_box(out.relation.len())
            })
        });
    }
    w.db.stats().set_enabled(true);
}

/// Nested iteration on the paper-scale type-J workload — the acceptance
/// cell: per-binding inner evaluation is the engine's tightest statement
/// loop, so registry cost has the least work to hide behind.
fn bench_nested_iteration(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale(), seed_from_env());
    sweep(c, "stats-ni-type-J", &w, queries::TYPE_J, &QueryOptions::nested_iteration());
}

/// Transform path on the type-JA workload: temp materialization and the
/// canonical join dominate; the registry's share must stay invisible.
fn bench_transformed(c: &mut Bench) {
    let w = ja_workload(WorkloadSpec::kim_scale_ja(), seed_from_env());
    sweep(c, "stats-tr-type-JA-count", &w, queries::TYPE_JA_COUNT, &QueryOptions::transformed());
}

bench_main!(bench_nested_iteration, bench_transformed);
