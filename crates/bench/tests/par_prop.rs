//! Parallel-equivalence property: on seeded benchmark workloads, every
//! query strategy run at 2/4/8 threads returns the same rows (as a bag)
//! AND reports exactly the same I/O totals as the single-threaded run —
//! the PR's hard invariant, checked end-to-end through the `Database`
//! facade.

use nsql_bench::workload::{ja_workload, queries, WorkloadSpec, DEFAULT_SEED};
use nsql_bench::{measure, Workload};
use nsql_db::{JoinPolicy, QueryOptions};

/// Thread counts swept against the serial baseline.
const SWEEP: [usize; 3] = [2, 4, 8];

fn check(w: &Workload, sql: &str, name: &str, base: &QueryOptions) {
    let serial =
        measure(&w.db, sql, &format!("{name}/threads=1"), &QueryOptions { threads: 1, ..base.clone() });
    for t in SWEEP {
        let par = measure(
            &w.db,
            sql,
            &format!("{name}/threads={t}"),
            &QueryOptions { threads: t, ..base.clone() },
        );
        assert!(
            serial.relation.same_bag(&par.relation),
            "{name}: rows diverged at {t} threads\nserial:\n{}\nparallel:\n{}",
            serial.relation,
            par.relation
        );
        assert_eq!(
            serial.io, par.io,
            "{name}: I/O totals diverged at {t} threads"
        );
    }
}

const QUERIES: [(&str, &str); 4] = [
    ("type-N", queries::TYPE_N),
    ("type-J", queries::TYPE_J),
    ("type-JA-count", queries::TYPE_JA_COUNT),
    ("type-JA-max", queries::TYPE_JA_MAX),
];

#[test]
fn nested_iteration_parallel_equals_serial() {
    for seed in [DEFAULT_SEED, 7] {
        let w = ja_workload(WorkloadSpec::small(), seed);
        for (name, sql) in QUERIES {
            check(&w, sql, &format!("ni/{name}/seed={seed}"), &QueryOptions::nested_iteration());
        }
    }
}

#[test]
fn nested_iteration_parallel_equals_serial_at_kim_scale() {
    // One full-size cell: the configuration the speedup benches run.
    let w = ja_workload(WorkloadSpec::kim_scale(), DEFAULT_SEED);
    check(&w, queries::TYPE_J, "ni/type-J/kim", &QueryOptions::nested_iteration());
}

#[test]
fn transformed_parallel_equals_serial() {
    let w = ja_workload(WorkloadSpec::small(), DEFAULT_SEED);
    for (policy, pname) in [
        (JoinPolicy::ForceMergeJoin, "merge"),
        (JoinPolicy::ForceHashJoin, "hash"),
        (JoinPolicy::CostBased, "cost"),
    ] {
        let base = QueryOptions { join_policy: policy, ..QueryOptions::transformed() };
        for (name, sql) in QUERIES {
            check(&w, sql, &format!("tr/{pname}/{name}"), &base);
        }
    }
}
