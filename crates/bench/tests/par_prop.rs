//! Parallel-equivalence property: on seeded benchmark workloads, every
//! query strategy run at 2/4/8 threads returns the same rows (as a bag)
//! AND reports exactly the same I/O totals as the single-threaded run —
//! the PR's hard invariant, checked end-to-end through the `Database`
//! facade.

use nsql_bench::workload::{ja_workload, queries, WorkloadSpec, DEFAULT_SEED};
use nsql_bench::{measure, Workload};
use nsql_db::{Database, JoinPolicy, QueryOptions};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};

/// Thread counts swept against the serial baseline.
const SWEEP: [usize; 3] = [2, 4, 8];

/// Bag equality is not enough for the float-exactness invariant: `same_bag`
/// compares by SQL value (where `3 == 3.0`). This walks canonically sorted
/// rows asserting *bit* equality — floats via `to_bits`, so even a one-ULP
/// parallel divergence (or an Int/Float type flip) fails loudly.
fn assert_bit_identical(name: &str, t: usize, serial: &Relation, par: &Relation) {
    let canon = |r: &Relation| {
        let mut rows: Vec<Tuple> = r.tuples().to_vec();
        rows.sort_by(Tuple::total_cmp);
        rows
    };
    let (a, b) = (canon(serial), canon(par));
    assert_eq!(a.len(), b.len(), "{name}: row counts diverged at {t} threads");
    for (x, y) in a.iter().zip(&b) {
        for (u, v) in x.values().iter().zip(y.values()) {
            let same = match (u, v) {
                (Value::Float(p), Value::Float(q)) => p.to_bits() == q.to_bits(),
                _ => u == v,
            };
            assert!(same, "{name}: bitwise divergence at {t} threads: {u:?} vs {v:?}");
        }
    }
}

fn check(w: &Workload, sql: &str, name: &str, base: &QueryOptions) {
    let serial =
        measure(&w.db, sql, &format!("{name}/threads=1"), &QueryOptions { threads: 1, ..base.clone() });
    for t in SWEEP {
        let par = measure(
            &w.db,
            sql,
            &format!("{name}/threads={t}"),
            &QueryOptions { threads: t, ..base.clone() },
        );
        assert!(
            serial.relation.same_bag(&par.relation),
            "{name}: rows diverged at {t} threads\nserial:\n{}\nparallel:\n{}",
            serial.relation,
            par.relation
        );
        assert_bit_identical(name, t, &serial.relation, &par.relation);
        assert_eq!(
            serial.io, par.io,
            "{name}: I/O totals diverged at {t} threads"
        );
    }
}

const QUERIES: [(&str, &str); 4] = [
    ("type-N", queries::TYPE_N),
    ("type-J", queries::TYPE_J),
    ("type-JA-count", queries::TYPE_JA_COUNT),
    ("type-JA-max", queries::TYPE_JA_MAX),
];

#[test]
fn nested_iteration_parallel_equals_serial() {
    for seed in [DEFAULT_SEED, 7] {
        let w = ja_workload(WorkloadSpec::small(), seed);
        for (name, sql) in QUERIES {
            check(&w, sql, &format!("ni/{name}/seed={seed}"), &QueryOptions::nested_iteration());
        }
    }
}

#[test]
fn nested_iteration_parallel_equals_serial_at_kim_scale() {
    // One full-size cell: the configuration the speedup benches run.
    let w = ja_workload(WorkloadSpec::kim_scale(), DEFAULT_SEED);
    check(&w, queries::TYPE_J, "ni/type-J/kim", &QueryOptions::nested_iteration());
}

/// Float `SUM`/`AVG` must be *bit-identical* across thread counts — no ULP
/// tolerance. The table mixes magnitudes (1e12 against 0.1 against 1e-9) so
/// any naive reassociation of the sum at a morsel boundary changes the
/// result; the exact-summation accumulator must not care where groups split.
#[test]
fn float_aggregates_bit_identical_across_threads() {
    let schema = Schema::new(vec![
        Column::new("GRP", ColumnType::Int),
        Column::new("X", ColumnType::Float),
    ]);
    let mut rel = Relation::empty(schema);
    let mut rng = nsql_testkit::Rng::from_seed(9);
    for i in 0..4000i64 {
        let x = match i % 7 {
            0 => 1e12,
            1 => -1e12,
            2 => 0.1,
            3 => -0.30000000000000004,
            4 => 1e-9,
            5 => 3.25,
            _ => rng.gen_range(-1000..1000) as f64 / 8.0,
        };
        rel.push(Tuple::new(vec![Value::Int(i % 5), Value::Float(x)])).unwrap();
    }
    let mut db = Database::with_storage(64, 256);
    db.catalog_mut().load_table("MEAS", &rel).expect("fresh catalog");
    let w = Workload { db, spec: WorkloadSpec::small() };
    for sql in [
        "SELECT SUM(X), AVG(X) FROM MEAS",
        "SELECT GRP, SUM(X), AVG(X) FROM MEAS GROUP BY GRP",
    ] {
        check(&w, sql, "float-agg/ni", &QueryOptions::nested_iteration());
        check(&w, sql, "float-agg/tr", &QueryOptions::transformed());
    }
}

/// Observability is pure side-state: with `observe` on, the storage layer's
/// full four-counter trace (reads/writes/hits/misses) and the result rows
/// must be byte-identical to the unobserved run — at every thread count.
/// This is the PR's hard invariant: metrics collection reads the counters,
/// it never adds to them.
#[test]
fn observe_leaves_io_trace_and_results_byte_identical() {
    let w = ja_workload(WorkloadSpec::small(), DEFAULT_SEED);
    for threads in [1usize, 4] {
        for (name, sql) in QUERIES {
            for base in [QueryOptions::nested_iteration(), QueryOptions::transformed()] {
                let base = QueryOptions { threads, cold_start: true, ..base };
                let s0 = w.db.storage().io_snapshot();
                let plain = w.db.query_with(sql, &base).unwrap();
                let s1 = w.db.storage().io_snapshot();
                let observed = w
                    .db
                    .query_with(sql, &QueryOptions { observe: true, ..base.clone() })
                    .unwrap();
                let s2 = w.db.storage().io_snapshot();
                let tag = format!("obs/{name}/threads={threads}");
                assert_bit_identical(&tag, threads, &plain.relation, &observed.relation);
                assert_eq!(
                    s1.since(&s0),
                    s2.since(&s1),
                    "{tag}: observe changed the page-I/O trace"
                );
                assert_eq!(plain.io, observed.io, "{tag}: reported totals diverged");
                assert!(plain.obs.is_none());
                let obs = observed.obs.expect("observe=true collects a report");
                assert!(!obs.spans.is_empty(), "{tag}: no lifecycle spans");
            }
        }
    }
}

#[test]
fn transformed_parallel_equals_serial() {
    let w = ja_workload(WorkloadSpec::small(), DEFAULT_SEED);
    for (policy, pname) in [
        (JoinPolicy::ForceMergeJoin, "merge"),
        (JoinPolicy::ForceHashJoin, "hash"),
        (JoinPolicy::CostBased, "cost"),
    ] {
        let base = QueryOptions { join_policy: policy, ..QueryOptions::transformed() };
        for (name, sql) in QUERIES {
            check(&w, sql, &format!("tr/{pname}/{name}"), &base);
        }
    }
}
