//! Vectorized-equivalence property: on seeded benchmark workloads, every
//! query strategy run under `ExecMode::Vector` returns bit-identical rows
//! AND leaves a byte-identical four-counter page-I/O trace
//! (reads/writes/hits/misses) compared to `ExecMode::Row` — at 1 and 4
//! threads, end-to-end through the `Database` facade. The whole vectorized
//! subsystem (batch kernels, per-binding memo, batched join/agg) must be
//! invisible to everything except wall-clock time.
//!
//! `scripts/verify.sh` runs this suite on the memory backend and again
//! under `NSQL_DURABILITY=file` (the workload databases honor the env).

use nsql_bench::workload::{ja_workload, queries, WorkloadSpec, DEFAULT_SEED};
use nsql_bench::Workload;
use nsql_db::{Database, ExecMode, JoinPolicy, QueryOptions};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};

/// Canonically sorted bitwise row comparison — floats via `to_bits`, so a
/// one-ULP kernel divergence (or an Int/Float type flip) fails loudly.
fn assert_bit_identical(name: &str, row: &Relation, vec: &Relation) {
    let canon = |r: &Relation| {
        let mut rows: Vec<Tuple> = r.tuples().to_vec();
        rows.sort_by(Tuple::total_cmp);
        rows
    };
    let (a, b) = (canon(row), canon(vec));
    assert_eq!(a.len(), b.len(), "{name}: row counts diverged");
    for (x, y) in a.iter().zip(&b) {
        for (u, v) in x.values().iter().zip(y.values()) {
            let same = match (u, v) {
                (Value::Float(p), Value::Float(q)) => p.to_bits() == q.to_bits(),
                _ => u == v,
            };
            assert!(same, "{name}: bitwise divergence: {u:?} vs {v:?}");
        }
    }
}

/// Run `sql` under Row then Vector, asserting identical rows, identical
/// reported I/O, and an identical four-counter storage trace.
fn check(w: &Workload, sql: &str, name: &str, base: &QueryOptions) {
    let s0 = w.db.storage().io_snapshot();
    let row = w
        .db
        .query_with(sql, &QueryOptions { exec_mode: ExecMode::Row, ..base.clone() })
        .unwrap();
    let s1 = w.db.storage().io_snapshot();
    let vec = w
        .db
        .query_with(sql, &QueryOptions { exec_mode: ExecMode::Vector, ..base.clone() })
        .unwrap();
    let s2 = w.db.storage().io_snapshot();
    assert_bit_identical(name, &row.relation, &vec.relation);
    assert_eq!(row.io, vec.io, "{name}: reported I/O totals diverged");
    assert_eq!(
        s1.since(&s0),
        s2.since(&s1),
        "{name}: vector mode changed the reads/writes/hits/misses trace"
    );
}

const QUERIES: [(&str, &str); 4] = [
    ("type-N", queries::TYPE_N),
    ("type-J", queries::TYPE_J),
    ("type-JA-count", queries::TYPE_JA_COUNT),
    ("type-JA-max", queries::TYPE_JA_MAX),
];

#[test]
fn vectorized_nested_iteration_equals_row_mode() {
    for seed in [DEFAULT_SEED, 7] {
        let w = ja_workload(WorkloadSpec::small(), seed);
        for threads in [1usize, 4] {
            for (name, sql) in QUERIES {
                let base = QueryOptions { threads, ..QueryOptions::nested_iteration() };
                check(&w, sql, &format!("ni/{name}/seed={seed}/threads={threads}"), &base);
            }
        }
    }
}

#[test]
fn vectorized_transform_equals_row_mode() {
    let w = ja_workload(WorkloadSpec::small(), DEFAULT_SEED);
    for (policy, pname) in [
        (JoinPolicy::ForceMergeJoin, "merge"),
        (JoinPolicy::ForceHashJoin, "hash"),
        (JoinPolicy::CostBased, "cost"),
    ] {
        for threads in [1usize, 4] {
            let base = QueryOptions {
                join_policy: policy,
                threads,
                ..QueryOptions::transformed()
            };
            for (name, sql) in QUERIES {
                check(&w, sql, &format!("tr/{pname}/{name}/threads={threads}"), &base);
            }
        }
    }
}

/// The vectorized aggregation fold must preserve the exact-summation float
/// invariant: `SUM`/`AVG` bit-identical to the row fold over mixed
/// magnitudes, grouped and global.
#[test]
fn vectorized_float_aggregates_bit_identical() {
    let schema = Schema::new(vec![
        Column::new("GRP", ColumnType::Int),
        Column::new("X", ColumnType::Float),
    ]);
    let mut rel = Relation::empty(schema);
    let mut rng = nsql_testkit::Rng::from_seed(9);
    for i in 0..4000i64 {
        let x = match i % 7 {
            0 => 1e12,
            1 => -1e12,
            2 => 0.1,
            3 => -0.30000000000000004,
            4 => 1e-9,
            5 => 3.25,
            _ => rng.gen_range(-1000..1000) as f64 / 8.0,
        };
        rel.push(Tuple::new(vec![Value::Int(i % 5), Value::Float(x)])).unwrap();
    }
    let mut db = Database::with_storage(64, 256);
    db.catalog_mut().load_table("MEAS", &rel).expect("fresh catalog");
    let w = Workload { db, spec: WorkloadSpec::small() };
    for sql in [
        "SELECT SUM(X), AVG(X) FROM MEAS",
        "SELECT GRP, SUM(X), AVG(X) FROM MEAS GROUP BY GRP",
    ] {
        check(&w, sql, "float-agg/ni", &QueryOptions::nested_iteration());
        check(&w, sql, "float-agg/tr", &QueryOptions::transformed());
    }
}
