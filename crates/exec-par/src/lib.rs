#![warn(missing_docs)]

//! Scoped worker pool and morsel dispatcher for parallel query execution.
//!
//! Morsel-driven parallelism (Leis et al.): work is split into small
//! fixed-size chunks ("morsels") that idle workers claim from a shared
//! atomic dispatcher. There is no per-operator thread topology — every
//! worker runs the same pipeline over whichever morsels it wins, so load
//! balances automatically even when per-morsel cost is skewed (e.g. one
//! outer page whose tuples all pass the simple predicate).
//!
//! Built on `std::thread::scope` only — no external dependencies. Worker 0
//! runs on the calling thread, so `run_workers(1, f)` spawns nothing and
//! is an ordinary function call.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve the thread count from the environment: `NSQL_THREADS` if set
/// (must parse as a positive integer), else `std::thread::available_parallelism`.
pub fn threads_from_env() -> usize {
    match std::env::var("NSQL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("bad NSQL_THREADS: {v:?} (want a positive integer)"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Run `f(worker_index)` on `threads` workers and wait for all of them.
///
/// Worker 0 executes on the calling thread; workers `1..threads` are scoped
/// std threads. A panic on any worker propagates to the caller once every
/// worker has finished. `threads <= 1` degenerates to a plain call `f(0)`.
pub fn run_workers<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (1..threads).map(|w| s.spawn(move || f(w))).collect();
        f(0);
        for h in handles {
            // Re-raise worker panics on the caller.
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });
}

/// Chunked atomic morsel dispatcher over the index range `0..total`.
///
/// Workers call [`Morsels::claim`] in a loop; each claim hands back a
/// disjoint `Range<usize>` of at most `chunk` indices, in ascending order
/// of starting index, until the range is exhausted. A single fetch-add is
/// the only synchronization, so claiming is contention-free in practice.
#[derive(Debug)]
pub struct Morsels {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
}

impl Morsels {
    /// Dispatcher over `0..total` in chunks of `chunk` (minimum 1).
    pub fn new(total: usize, chunk: usize) -> Morsels {
        Morsels { next: AtomicUsize::new(0), total, chunk: chunk.max(1) }
    }

    /// Claim the next morsel, or `None` once the range is exhausted.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.chunk).min(self.total))
    }

    /// Number of morsels this dispatcher will hand out in total.
    pub fn morsel_count(&self) -> usize {
        self.total.div_ceil(self.chunk)
    }

    /// The chunk size (indices per morsel, except possibly the last).
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

/// Pick a morsel chunk size: aim for several morsels per worker (for load
/// balancing) while capping per-claim overhead, clamped to `1..=max_chunk`.
pub fn chunk_for(total: usize, threads: usize, max_chunk: usize) -> usize {
    (total / (threads.max(1) * 4)).clamp(1, max_chunk.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn morsels_cover_range_without_overlap() {
        let m = Morsels::new(103, 8);
        let mut seen = vec![false; 103];
        while let Some(r) = m.claim() {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(Morsels::new(103, 8).morsel_count(), 13);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let m = Morsels::new(0, 4);
        assert!(m.claim().is_none());
        assert_eq!(m.morsel_count(), 0);
    }

    #[test]
    fn workers_collectively_drain_the_queue() {
        let m = Morsels::new(1000, 7);
        let sum = Mutex::new(0u64);
        run_workers(4, |_w| {
            let mut local = 0u64;
            while let Some(r) = m.claim() {
                local += r.map(|i| i as u64).sum::<u64>();
            }
            *sum.lock().unwrap() += local;
        });
        assert_eq!(*sum.lock().unwrap(), (0..1000u64).sum::<u64>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        run_workers(1, |w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn chunk_for_balances() {
        assert_eq!(chunk_for(0, 4, 8), 1);
        assert_eq!(chunk_for(100, 4, 8), 6);
        assert_eq!(chunk_for(10_000, 4, 8), 8);
    }
}
