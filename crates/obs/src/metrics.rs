//! Per-operator metrics on sharded relaxed atomics, plus a diagnostic
//! event sink.
//!
//! The hot-path contract: an instrumented site holds an
//! `Option<Arc<OpMetrics>>` (or reaches one through a registry that is
//! `None` when observability is off), so the disabled path is a single
//! branch. The enabled path only touches [`ShardedCounter`] slots —
//! cache-line-padded relaxed atomics indexed by worker id — and never the
//! engine's own I/O counters, so collection cannot perturb the
//! byte-identical accounting invariant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Number of shards in a [`ShardedCounter`]. Workers index with
/// `worker_id % SHARDS`; 16 covers any plausible core count here while
/// keeping the per-counter footprint at one KiB.
pub const SHARDS: usize = 16;

/// One cache line per shard so concurrent workers never contend.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A u64 counter sharded across [`SHARDS`] cache-line-padded slots.
///
/// All operations are `Relaxed`: these are statistics, not
/// synchronization, and totals are only read after the workers join.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; SHARDS],
}

impl ShardedCounter {
    /// New counter, all shards zero.
    pub fn new() -> ShardedCounter {
        ShardedCounter::default()
    }

    /// Add `n` on the shard for `worker`.
    #[inline]
    pub fn add(&self, worker: usize, n: u64) {
        self.shards[worker % SHARDS].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum across shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard values, trailing zero shards trimmed — used to report
    /// morsel claims per worker.
    pub fn per_shard(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardedCounter({})", self.total())
    }
}

/// Live counters for one physical operator instance.
///
/// Rows and morsels are sharded (workers write concurrently); the I/O and
/// timing fields are written once by the coordinating thread from
/// snapshot deltas, so plain atomics suffice.
#[derive(Default, Debug)]
pub struct OpMetrics {
    /// Operator label, e.g. `"merge join (1 key)"` or `"materialize RT2"`.
    pub label: String,
    /// Tuples consumed (summed over inputs).
    pub rows_in: ShardedCounter,
    /// Tuples produced.
    pub rows_out: ShardedCounter,
    /// Morsel claims, sharded by worker id.
    pub morsels: ShardedCounter,
    /// Column batches processed (vectorized execution; 0 on the row path).
    pub batches: ShardedCounter,
    /// Nonzero when the operator ran its vectorized implementation.
    pub vectorized: AtomicU64,
    /// Pages read during the operator (snapshot delta).
    pub reads: AtomicU64,
    /// Pages written during the operator (snapshot delta).
    pub writes: AtomicU64,
    /// Buffer hits during the operator (snapshot delta).
    pub hits: AtomicU64,
    /// Buffer misses during the operator (snapshot delta).
    pub misses: AtomicU64,
    /// Hash-join build phase, nanoseconds (0 when not a hash join).
    pub build_ns: AtomicU64,
    /// Hash-join probe phase, nanoseconds (0 when not a hash join).
    pub probe_ns: AtomicU64,
    /// Total operator wall time, nanoseconds.
    pub wall_ns: AtomicU64,
}

impl OpMetrics {
    /// New zeroed metrics for an operator labelled `label`.
    pub fn new(label: &str) -> OpMetrics {
        OpMetrics {
            label: label.to_string(),
            ..OpMetrics::default()
        }
    }

    /// Freeze current values into an [`OpSnapshot`].
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            label: self.label.clone(),
            rows_in: self.rows_in.total(),
            rows_out: self.rows_out.total(),
            morsels_per_worker: self.morsels.per_shard(),
            batches: self.batches.total(),
            vectorized: self.vectorized.load(Ordering::Relaxed) != 0,
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            probe_ns: self.probe_ns.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
        }
    }
}

/// Frozen per-operator metrics, ready to render or export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Operator label.
    pub label: String,
    /// Tuples consumed.
    pub rows_in: u64,
    /// Tuples produced.
    pub rows_out: u64,
    /// Morsel claims per worker (empty when the operator ran serially).
    pub morsels_per_worker: Vec<u64>,
    /// Column batches processed (0 on the row path).
    pub batches: u64,
    /// Whether the operator ran vectorized.
    pub vectorized: bool,
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses.
    pub misses: u64,
    /// Hash-join build nanoseconds.
    pub build_ns: u64,
    /// Hash-join probe nanoseconds.
    pub probe_ns: u64,
    /// Operator wall nanoseconds.
    pub wall_ns: u64,
}

impl OpSnapshot {
    /// One-line text rendering for EXPLAIN ANALYZE output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{}: rows {} -> {}, io {}r/{}w, buf {}h/{}m, {:.3} ms",
            self.label,
            self.rows_in,
            self.rows_out,
            self.reads,
            self.writes,
            self.hits,
            self.misses,
            self.wall_ns as f64 / 1e6,
        );
        if self.build_ns > 0 || self.probe_ns > 0 {
            let _ = write!(
                s,
                " (build {:.3} ms, probe {:.3} ms)",
                self.build_ns as f64 / 1e6,
                self.probe_ns as f64 / 1e6
            );
        }
        if !self.morsels_per_worker.is_empty() {
            let _ = write!(s, " morsels/worker {:?}", self.morsels_per_worker);
        }
        if self.vectorized {
            let _ = write!(s, ", {} batches [vectorized]", self.batches);
        }
        s
    }

    /// JSON form with every field.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("rows_in", Json::num(self.rows_in as f64)),
            ("rows_out", Json::num(self.rows_out as f64)),
            (
                "morsels_per_worker",
                Json::Arr(
                    self.morsels_per_worker
                        .iter()
                        .map(|&m| Json::num(m as f64))
                        .collect(),
                ),
            ),
            ("batches", Json::num(self.batches as f64)),
            ("vectorized", Json::Bool(self.vectorized)),
            ("reads", Json::num(self.reads as f64)),
            ("writes", Json::num(self.writes as f64)),
            ("hits", Json::num(self.hits as f64)),
            ("misses", Json::num(self.misses as f64)),
            ("build_ns", Json::num(self.build_ns as f64)),
            ("probe_ns", Json::num(self.probe_ns as f64)),
            ("wall_ns", Json::num(self.wall_ns as f64)),
        ])
    }
}

/// Registry of per-operator metrics plus a diagnostic event sink.
///
/// Cloning shares the registry. One registry lives for one observed query
/// execution; [`snapshot`](MetricsRegistry::snapshot) freezes it in
/// operator-creation order.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    ops: Arc<Mutex<Vec<Arc<OpMetrics>>>>,
    events: Arc<Mutex<Vec<String>>>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register a new operator and return its live metrics handle.
    pub fn op(&self, label: &str) -> Arc<OpMetrics> {
        let m = Arc::new(OpMetrics::new(label));
        self.ops.lock().expect("ops lock").push(Arc::clone(&m));
        m
    }

    /// Record a diagnostic event (the stdout-free replacement for library
    /// `println!`).
    pub fn event(&self, msg: impl Into<String>) {
        self.events.lock().expect("events lock").push(msg.into());
    }

    /// Freeze all operators (creation order) and drain nothing — the
    /// registry stays usable.
    pub fn snapshot(&self) -> Vec<OpSnapshot> {
        self.ops
            .lock()
            .expect("ops lock")
            .iter()
            .map(|m| m.snapshot())
            .collect()
    }

    /// Copy of the recorded events.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().expect("events lock").clone()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} ops)", self.snapshot().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sharded_counter_totals_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let mut handles = Vec::new();
        for w in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    c.add(w, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total(), 8000);
        assert_eq!(c.per_shard(), vec![1000; 8]);
    }

    #[test]
    fn per_shard_trims_trailing_zeros() {
        let c = ShardedCounter::new();
        c.add(0, 5);
        c.add(2, 7);
        assert_eq!(c.per_shard(), vec![5, 0, 7]);
        let empty = ShardedCounter::new();
        assert!(empty.per_shard().is_empty());
    }

    #[test]
    fn registry_snapshot_preserves_creation_order() {
        let r = MetricsRegistry::new();
        let a = r.op("scan PARTS");
        let b = r.op("merge join (1 key)");
        a.rows_out.add(0, 3);
        b.rows_out.add(1, 2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "scan PARTS");
        assert_eq!(snap[0].rows_out, 3);
        assert_eq!(snap[1].rows_out, 2);
    }

    #[test]
    fn events_are_recorded_in_order() {
        let r = MetricsRegistry::new();
        r.event("first");
        r.event(String::from("second"));
        assert_eq!(r.events(), vec!["first", "second"]);
    }

    #[test]
    fn snapshot_render_mentions_build_probe_and_morsels() {
        let m = OpMetrics::new("hash join (1 key)");
        m.build_ns.store(2_000_000, Ordering::Relaxed);
        m.probe_ns.store(3_000_000, Ordering::Relaxed);
        m.morsels.add(0, 4);
        m.morsels.add(1, 2);
        let s = m.snapshot().render();
        assert!(s.contains("build 2.000 ms"));
        assert!(s.contains("probe 3.000 ms"));
        assert!(s.contains("morsels/worker [4, 2]"));
    }
}
