//! Nested span tracer for the query lifecycle.
//!
//! A [`Tracer`] is a cheaply clonable handle. Disabled (the default) it is
//! a `None` inside — every instrumentation site pays exactly one branch and
//! touches no shared state. Enabled, it records a tree of [`SpanNode`]s,
//! each carrying wall time and the page-I/O delta observed between the
//! span's begin and end.
//!
//! The tracer never owns an I/O counter: the creator supplies a *probe*
//! closure that reads the engine's cumulative counters (e.g.
//! `Storage::io_snapshot`). Probing is a pure load — begin/end never
//! mutate what they measure, which is what keeps the PR 2/3 byte-identical
//! I/O accounting invariant intact under observation.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Cumulative page-I/O reading taken by a tracer probe.
///
/// Values are *cumulative totals* at probe time; the tracer subtracts a
/// span's begin reading from its end reading to get the delta charged to
/// the span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoDelta {
    /// Pages read from the simulated disk.
    pub reads: u64,
    /// Pages written to the simulated disk.
    pub writes: u64,
    /// Buffer-pool hits.
    pub hits: u64,
    /// Buffer-pool misses.
    pub misses: u64,
}

impl IoDelta {
    /// Component-wise difference `self - earlier` (saturating, so a
    /// mid-query counter reset cannot underflow).
    pub fn since(&self, earlier: &IoDelta) -> IoDelta {
        IoDelta {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == IoDelta::default()
    }
}

/// One completed span: a named region of the query lifecycle with its
/// wall time, I/O delta, and nested children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, e.g. `"transform"` or `"NEST-JA2 step 2b"`.
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Page-I/O delta observed between begin and end.
    pub io: IoDelta,
    /// Child spans, in begin order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Render this span subtree as indented text lines.
    pub fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let mut line = format!("{}{}", "  ".repeat(depth), self.name);
        let _ = write!(line, "  [{:.3} ms", self.wall_ns as f64 / 1e6);
        if !self.io.is_zero() {
            let _ = write!(
                line,
                ", io: {}r/{}w, buf: {}h/{}m",
                self.io.reads, self.io.writes, self.io.hits, self.io.misses
            );
        }
        line.push(']');
        out.push(line);
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    /// Depth-first search for the first span named `name` in this subtree
    /// (including `self`). Lets recovery tests assert on lifecycle phases
    /// ("open: recover store", "open: restore catalog") without caring where
    /// they nest.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// JSON form: `{name, wall_ns, io:{reads,writes,hits,misses}, children:[..]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("wall_ns", Json::num(self.wall_ns as f64)),
            (
                "io",
                Json::obj([
                    ("reads", Json::num(self.io.reads as f64)),
                    ("writes", Json::num(self.io.writes as f64)),
                    ("hits", Json::num(self.io.hits as f64)),
                    ("misses", Json::num(self.io.misses as f64)),
                ]),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }
}

/// Probe that reads cumulative I/O counters. Must be a pure load.
type Probe = Arc<dyn Fn() -> IoDelta + Send + Sync>;

/// Handle to an open span; pass back to [`Tracer::end`].
///
/// Ending out of order is tolerated: `end` closes open descendants first,
/// so a span abandoned on an early-error path cannot corrupt the tree.
#[derive(Debug, Clone, Copy)]
pub struct SpanId(usize);

struct OpenSpan {
    node: SpanNode,
    started: Instant,
    io_at_start: IoDelta,
    id: usize,
}

struct TracerState {
    /// Completed top-level spans.
    roots: Vec<SpanNode>,
    /// Stack of open spans, outermost first.
    open: Vec<OpenSpan>,
    next_id: usize,
    probe: Option<Probe>,
}

/// Span tracer handle. `Tracer::default()` is disabled and free to clone
/// and pass around; [`Tracer::enabled`] records.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TracerState>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: every call is a single branch and a no-op.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer with no I/O probe (spans carry wall time only).
    pub fn enabled() -> Tracer {
        Tracer::with_probe_opt(None)
    }

    /// An enabled tracer whose spans record I/O deltas via `probe`.
    ///
    /// `probe` must be a pure read of cumulative counters (e.g. a storage
    /// snapshot); it is called twice per span, at begin and end.
    pub fn with_probe(probe: impl Fn() -> IoDelta + Send + Sync + 'static) -> Tracer {
        Tracer::with_probe_opt(Some(Arc::new(probe)))
    }

    fn with_probe_opt(probe: Option<Probe>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TracerState {
                roots: Vec::new(),
                open: Vec::new(),
                next_id: 0,
                probe,
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a nested span. Returns a handle for [`end`](Tracer::end).
    pub fn begin(&self, name: &str) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId(usize::MAX);
        };
        let mut st = inner.lock().expect("tracer lock");
        let io_at_start = st.probe.as_ref().map(|p| p()).unwrap_or_default();
        let id = st.next_id;
        st.next_id += 1;
        st.open.push(OpenSpan {
            node: SpanNode {
                name: name.to_string(),
                wall_ns: 0,
                io: IoDelta::default(),
                children: Vec::new(),
            },
            started: Instant::now(),
            io_at_start,
            id,
        });
        SpanId(id)
    }

    /// Close the span opened by `begin`. Any spans opened after it and not
    /// yet closed are closed first (they nest inside it).
    pub fn end(&self, span: SpanId) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock().expect("tracer lock");
        let Some(pos) = st.open.iter().position(|o| o.id == span.0) else {
            return; // already closed (e.g. by an ancestor's end)
        };
        let io_now = st.probe.as_ref().map(|p| p()).unwrap_or_default();
        while st.open.len() > pos {
            let open = st.open.pop().expect("open span just checked");
            let mut node = open.node;
            node.wall_ns = open.started.elapsed().as_nanos() as u64;
            node.io = io_now.since(&open.io_at_start);
            match st.open.last_mut() {
                Some(parent) => parent.node.children.push(node),
                None => st.roots.push(node),
            }
        }
    }

    /// Run `f` inside a span named `name`.
    pub fn scope<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let id = self.begin(name);
        let out = f();
        self.end(id);
        out
    }

    /// Take the completed span tree, closing any still-open spans. The
    /// tracer is left empty and can be reused.
    pub fn finish(&self) -> Vec<SpanNode> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut st = inner.lock().expect("tracer lock");
        let io_now = st.probe.as_ref().map(|p| p()).unwrap_or_default();
        while let Some(open) = st.open.pop() {
            let mut node = open.node;
            node.wall_ns = open.started.elapsed().as_nanos() as u64;
            node.io = io_now.since(&open.io_at_start);
            match st.open.last_mut() {
                Some(parent) => parent.node.children.push(node),
                None => st.roots.push(node),
            }
        }
        std::mem::take(&mut st.roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let id = t.begin("x");
        t.end(id);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_io_deltas() {
        let counter = Arc::new(AtomicU64::new(0));
        let probe_ctr = Arc::clone(&counter);
        let t = Tracer::with_probe(move || IoDelta {
            reads: probe_ctr.load(Ordering::Relaxed),
            ..IoDelta::default()
        });
        let outer = t.begin("outer");
        counter.fetch_add(2, Ordering::Relaxed);
        let inner = t.begin("inner");
        counter.fetch_add(3, Ordering::Relaxed);
        t.end(inner);
        counter.fetch_add(1, Ordering::Relaxed);
        t.end(outer);

        let roots = t.finish();
        assert_eq!(roots.len(), 1);
        let o = &roots[0];
        assert_eq!(o.name, "outer");
        assert_eq!(o.io.reads, 6);
        assert_eq!(o.children.len(), 1);
        assert_eq!(o.children[0].name, "inner");
        assert_eq!(o.children[0].io.reads, 3);
    }

    #[test]
    fn unclosed_children_fold_into_ancestor_on_end() {
        let t = Tracer::enabled();
        let a = t.begin("a");
        let _b = t.begin("b"); // never explicitly ended
        t.end(a);
        let roots = t.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "b");
    }

    #[test]
    fn scope_runs_and_records() {
        let t = Tracer::enabled();
        let v = t.scope("s", || 41 + 1);
        assert_eq!(v, 42);
        let roots = t.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "s");
    }

    #[test]
    fn render_and_json_shape() {
        let t = Tracer::enabled();
        t.scope("root", || t.scope("child", || ()));
        let roots = t.finish();
        let mut lines = Vec::new();
        roots[0].render_into(0, &mut lines);
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  child"));
        let j = roots[0].to_json().to_string();
        assert!(j.contains("\"name\":\"root\""));
        assert!(j.contains("\"children\":[{"));
    }
}
