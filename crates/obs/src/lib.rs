#![warn(missing_docs)]

//! Zero-dependency observability layer: spans, per-operator metrics, and a
//! JSON exporter.
//!
//! The paper states every claim in counted page I/Os, so the one hard rule
//! of this crate is that **observing a query must not change what is
//! observed**: collection only ever *loads* the engine's I/O counters
//! (never mutates them), all of its own counters live on the side, and
//! every collection point is behind a single branch that disabled-mode
//! skips. `crates/bench/tests/par_prop.rs` proves the invariant end to end
//! (obs on vs off, threads 1 and 4, byte-identical I/O and results).
//!
//! Three pieces:
//!
//! * [`span::Tracer`] — a nested span tracer for the query lifecycle
//!   (parse → analyze → transform steps → plan → execute). Each span
//!   carries wall time and, through an optional caller-supplied probe, the
//!   page-I/O delta it covered.
//! * [`metrics::MetricsRegistry`] — per-operator counters (rows in/out,
//!   pages read/written, buffer hits/misses, build/probe timings, morsel
//!   claims per worker) on sharded relaxed atomics, plus a diagnostic
//!   event sink so library crates never print.
//! * [`json`] — a minimal JSON value type with a writer *and* parser, so
//!   exporters and their schema checks share one in-tree implementation.

pub mod json;
pub mod metrics;
pub mod span;
pub mod stats;

pub use json::Json;
pub use metrics::{MetricsRegistry, OpMetrics, OpSnapshot, ShardedCounter, SHARDS};
pub use span::{IoDelta, SpanNode, Tracer};
pub use stats::{
    thread_shard, CacheCounters, LatencyHistogram, SlowQuery, StatementSample,
    StatementSnapshot, StatementStats, StatsRegistry, StatsSnapshot, TableCounters,
    TableSnapshot, SLOW_LOG_CAP,
};
