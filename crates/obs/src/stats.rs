//! Engine-wide cumulative statistics registry.
//!
//! Unlike [`crate::metrics::MetricsRegistry`] — which lives for one
//! observed query — a [`StatsRegistry`] lives for the whole database and
//! aggregates *across* queries: per-table access counters, per-statement
//! fingerprint aggregates with log-bucketed latency histograms, a mirror
//! of the cache's lifetime counters, and a bounded slow-query log.
//!
//! The crate-level invariant applies unchanged: recording into the
//! registry only ever touches side-state (sharded relaxed atomics and
//! short mutex-guarded map insertions), never the engine's counted I/O,
//! so enabling statistics cannot move a published page count. The
//! disabled path is a single [`AtomicBool`] load.
//!
//! Everything here is integer math — in particular percentiles are
//! derived from power-of-two bucket bounds without floats, so p50/p95/p99
//! are deterministic across platforms.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::metrics::{ShardedCounter, SHARDS};

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i - 1]` — enough for any `u64`.
pub const HIST_BUCKETS: usize = 65;

/// Capacity of the slow-query ring buffer.
pub const SLOW_LOG_CAP: usize = 32;

/// A stable per-thread shard index for [`ShardedCounter`] writes from
/// call sites that have no worker id in scope (catalog lookups, DML).
///
/// Threads are assigned round-robin on first use; the id is cached in a
/// thread-local so the steady-state cost is one TLS read.
pub fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// A log2-bucketed latency histogram over `u64` microsecond samples.
///
/// Recording is one `leading_zeros` plus one relaxed `fetch_add`;
/// percentile queries walk at most [`HIST_BUCKETS`] buckets and return
/// the *upper bound* of the bucket containing the requested rank, so the
/// reported quantile is always ≥ the exact one and within 2x of it.
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2 v) + 1`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (the value a percentile query
    /// reports for ranks landing in that bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `p`-th percentile (`p` in 1..=100) as the upper bound of the
    /// bucket holding rank `ceil(total * p / 100)`. Returns 0 when empty.
    ///
    /// This matches the classic nearest-rank definition applied to the
    /// bucketed distribution: sort all samples, take the value at rank
    /// `ceil(n*p/100)`, and report its bucket's upper bound.
    pub fn percentile(&self, p: u64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as u128 * p as u128).div_ceil(100)).max(1) as u64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HIST_BUCKETS - 1)
    }

    /// Nonzero buckets as `(upper_bound, count)` pairs, for export.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((Self::bucket_upper(i), c))
            })
            .collect()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram({} samples)", self.total())
    }
}

/// Live per-table access counters. All sharded: table scans can run on
/// every morsel worker at once.
#[derive(Default, Debug)]
pub struct TableCounters {
    /// Full-scan starts (one per scan of the heap file, not per page).
    pub scans: ShardedCounter,
    /// Index probes (restrictions or back-joins served by a B+tree).
    pub index_probes: ShardedCounter,
    /// Tuples read out of the table by scans.
    pub tuples_read: ShardedCounter,
    /// Tuples appended by INSERT / load.
    pub tuples_written: ShardedCounter,
}

/// Live per-fingerprint statement aggregates.
#[derive(Debug)]
pub struct StatementStats {
    /// Completed calls (successful or failed).
    pub calls: AtomicU64,
    /// Calls that returned an error.
    pub errors: AtomicU64,
    /// Transform refusals observed (statement fell back to another
    /// strategy because the NEST-* preconditions failed).
    pub refusals: AtomicU64,
    /// Sum of wall time over calls, microseconds.
    pub total_us: AtomicU64,
    /// Minimum call wall time, microseconds (`u64::MAX` until first call).
    pub min_us: AtomicU64,
    /// Maximum call wall time, microseconds.
    pub max_us: AtomicU64,
    /// Counted pages read, summed over calls.
    pub reads: AtomicU64,
    /// Counted pages written, summed over calls.
    pub writes: AtomicU64,
    /// Wall-time histogram (microseconds).
    pub hist: LatencyHistogram,
    /// Strategy chosen on the most recent call (e.g. `"transform"`).
    pub last_strategy: Mutex<String>,
    /// Exec mode on the most recent call (`"row"` / `"vector"`).
    pub last_exec_mode: Mutex<String>,
}

impl Default for StatementStats {
    fn default() -> StatementStats {
        StatementStats {
            calls: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            refusals: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            hist: LatencyHistogram::new(),
            last_strategy: Mutex::new(String::new()),
            last_exec_mode: Mutex::new(String::new()),
        }
    }
}

/// One completed call, ready to fold into a [`StatementStats`] entry.
#[derive(Debug, Clone)]
pub struct StatementSample {
    /// Normalized statement fingerprint (literals replaced by `?`).
    pub fingerprint: String,
    /// Wall time, microseconds.
    pub micros: u64,
    /// Counted pages read by the call.
    pub reads: u64,
    /// Counted pages written by the call.
    pub writes: u64,
    /// Strategy that ran (`"nested-iteration"`, `"transform"`, `"batched"`).
    pub strategy: String,
    /// Exec mode that ran (`"row"` / `"vector"`).
    pub exec_mode: String,
    /// Whether the call returned an error.
    pub error: bool,
    /// Number of transform refusals surfaced by the call.
    pub refusals: u64,
}

/// Lifetime cache counters mirrored from `nsql-cache` — the registry is
/// the single source of truth for *rendering* them (the obs event line
/// and the `nsql_stat_cache` view both come from here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Exact result-cache hits.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Rewrite opportunities declined by the soundness judge.
    pub declines: u64,
    /// Entries evicted by the byte-budget LRU.
    pub evictions: u64,
    /// Entries dropped by generation/epoch invalidation.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently resident.
    pub bytes: u64,
}

impl CacheCounters {
    /// The one rendering of the lifetime cache counters, used verbatim by
    /// the query-end obs event and by `.stats`.
    pub fn render(&self) -> String {
        format!(
            "cache: {} entries, {} bytes; lifetime hits {}, misses {}, declines {}, \
             evictions {}, invalidations {}",
            self.entries,
            self.bytes,
            self.hits,
            self.misses,
            self.declines,
            self.evictions,
            self.invalidations
        )
    }
}

/// One slow-query log entry.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Monotonic sequence number (1-based, over the registry lifetime).
    pub seq: u64,
    /// The statement text as submitted.
    pub sql: String,
    /// Normalized fingerprint.
    pub fingerprint: String,
    /// Wall time, microseconds.
    pub micros: u64,
    /// Strategy that ran.
    pub strategy: String,
    /// Counted pages read.
    pub reads: u64,
    /// Counted pages written.
    pub writes: u64,
    /// Rendered EXPLAIN of the offender (may be empty if planning failed).
    pub explain: Vec<String>,
}

/// Frozen per-table counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSnapshot {
    /// Table name.
    pub table: String,
    /// Full-scan starts.
    pub scans: u64,
    /// Index probes.
    pub index_probes: u64,
    /// Tuples read.
    pub tuples_read: u64,
    /// Tuples written.
    pub tuples_written: u64,
}

/// Frozen per-fingerprint aggregates with derived percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementSnapshot {
    /// Normalized statement fingerprint.
    pub query: String,
    /// Completed calls.
    pub calls: u64,
    /// Calls that errored.
    pub errors: u64,
    /// Transform refusals.
    pub refusals: u64,
    /// Total wall microseconds.
    pub total_us: u64,
    /// Minimum wall microseconds (0 when no calls).
    pub min_us: u64,
    /// Maximum wall microseconds.
    pub max_us: u64,
    /// 50th percentile (bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile (bucket upper bound).
    pub p95_us: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_us: u64,
    /// Pages read, summed.
    pub reads: u64,
    /// Pages written, summed.
    pub writes: u64,
    /// Strategy on the most recent call.
    pub strategy: String,
    /// Exec mode on the most recent call.
    pub exec_mode: String,
}

/// Frozen registry state.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Per-table counters, name order.
    pub tables: Vec<TableSnapshot>,
    /// Per-fingerprint aggregates, fingerprint order.
    pub statements: Vec<StatementSnapshot>,
    /// Cache counters as last mirrored.
    pub cache: CacheCounters,
    /// Slow-query log, oldest first.
    pub slow: Vec<SlowQuery>,
}

impl StatsSnapshot {
    /// Full JSON export via the in-tree writer.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("table", Json::str(&t.table)),
                                ("scans", Json::num(t.scans as f64)),
                                ("index_probes", Json::num(t.index_probes as f64)),
                                ("tuples_read", Json::num(t.tuples_read as f64)),
                                ("tuples_written", Json::num(t.tuples_written as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "statements",
                Json::Arr(
                    self.statements
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("query", Json::str(&s.query)),
                                ("calls", Json::num(s.calls as f64)),
                                ("errors", Json::num(s.errors as f64)),
                                ("refusals", Json::num(s.refusals as f64)),
                                ("total_us", Json::num(s.total_us as f64)),
                                ("min_us", Json::num(s.min_us as f64)),
                                ("max_us", Json::num(s.max_us as f64)),
                                ("p50_us", Json::num(s.p50_us as f64)),
                                ("p95_us", Json::num(s.p95_us as f64)),
                                ("p99_us", Json::num(s.p99_us as f64)),
                                ("reads", Json::num(s.reads as f64)),
                                ("writes", Json::num(s.writes as f64)),
                                ("strategy", Json::str(&s.strategy)),
                                ("exec_mode", Json::str(&s.exec_mode)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", Json::num(self.cache.hits as f64)),
                    ("misses", Json::num(self.cache.misses as f64)),
                    ("declines", Json::num(self.cache.declines as f64)),
                    ("evictions", Json::num(self.cache.evictions as f64)),
                    ("invalidations", Json::num(self.cache.invalidations as f64)),
                    ("entries", Json::num(self.cache.entries as f64)),
                    ("bytes", Json::num(self.cache.bytes as f64)),
                ]),
            ),
            (
                "slow_queries",
                Json::Arr(
                    self.slow
                        .iter()
                        .map(|q| {
                            Json::obj([
                                ("seq", Json::num(q.seq as f64)),
                                ("sql", Json::str(&q.sql)),
                                ("query", Json::str(&q.fingerprint)),
                                ("micros", Json::num(q.micros as f64)),
                                ("strategy", Json::str(&q.strategy)),
                                ("reads", Json::num(q.reads as f64)),
                                ("writes", Json::num(q.writes as f64)),
                                (
                                    "explain",
                                    Json::Arr(q.explain.iter().map(|l| Json::str(l)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The cumulative statistics registry. One per database; always on unless
/// `NSQL_STATS=off` (or a caller disables it), and cheap enough to leave
/// on: the disabled path is one atomic load, the enabled path is relaxed
/// atomics plus short map-lock insertions off the per-page hot loop.
#[derive(Debug)]
pub struct StatsRegistry {
    enabled: AtomicBool,
    tables: Mutex<BTreeMap<String, Arc<TableCounters>>>,
    statements: Mutex<BTreeMap<String, Arc<StatementStats>>>,
    cache: Mutex<CacheCounters>,
    slow: Mutex<VecDeque<SlowQuery>>,
    slow_seq: AtomicU64,
}

impl Default for StatsRegistry {
    fn default() -> StatsRegistry {
        StatsRegistry::new(true)
    }
}

impl StatsRegistry {
    /// New registry, empty.
    pub fn new(enabled: bool) -> StatsRegistry {
        StatsRegistry {
            enabled: AtomicBool::new(enabled),
            tables: Mutex::new(BTreeMap::new()),
            statements: Mutex::new(BTreeMap::new()),
            cache: Mutex::new(CacheCounters::default()),
            slow: Mutex::new(VecDeque::new()),
            slow_seq: AtomicU64::new(0),
        }
    }

    /// New registry honouring `NSQL_STATS` (`off` / `0` / `false`
    /// disables; anything else, including unset, enables).
    pub fn from_env() -> StatsRegistry {
        let enabled = !matches!(
            std::env::var("NSQL_STATS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        StatsRegistry::new(enabled)
    }

    /// Whether collection is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn collection on or off. Already-collected state is kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Live counters for `table`, created on first touch. `None` when
    /// disabled — callers hold the `Option` so the off path is branch-only.
    pub fn table(&self, table: &str) -> Option<Arc<TableCounters>> {
        self.enabled().then(|| self.table_entry(table))
    }

    /// Live counters for `table`, created on first touch regardless of the
    /// enabled flag. Callers that cache the handle to skip the map lock on
    /// hot paths must gate their bumps on [`StatsRegistry::enabled`]
    /// themselves; the entry existing is harmless when disabled (snapshots
    /// render it as an untouched table).
    pub fn table_entry(&self, table: &str) -> Arc<TableCounters> {
        let mut map = self.tables.lock().expect("stats tables lock");
        Arc::clone(map.entry(table.to_string()).or_default())
    }

    /// Fold one completed call into its fingerprint's aggregates.
    pub fn record_statement(&self, sample: &StatementSample) {
        if !self.enabled() {
            return;
        }
        let entry = {
            let mut map = self.statements.lock().expect("stats statements lock");
            Arc::clone(map.entry(sample.fingerprint.clone()).or_default())
        };
        entry.calls.fetch_add(1, Ordering::Relaxed);
        if sample.error {
            entry.errors.fetch_add(1, Ordering::Relaxed);
        }
        if sample.refusals > 0 {
            entry.refusals.fetch_add(sample.refusals, Ordering::Relaxed);
        }
        entry.total_us.fetch_add(sample.micros, Ordering::Relaxed);
        entry.min_us.fetch_min(sample.micros, Ordering::Relaxed);
        entry.max_us.fetch_max(sample.micros, Ordering::Relaxed);
        entry.reads.fetch_add(sample.reads, Ordering::Relaxed);
        entry.writes.fetch_add(sample.writes, Ordering::Relaxed);
        entry.hist.record(sample.micros);
        *entry.last_strategy.lock().expect("strategy lock") = sample.strategy.clone();
        *entry.last_exec_mode.lock().expect("exec mode lock") = sample.exec_mode.clone();
    }

    /// Mirror the cache's lifetime counters (call with
    /// `QueryCache::stats()` whenever they may have moved).
    pub fn record_cache(&self, counters: CacheCounters) {
        if !self.enabled() {
            return;
        }
        *self.cache.lock().expect("stats cache lock") = counters;
    }

    /// The cache counters as last mirrored.
    pub fn cache(&self) -> CacheCounters {
        *self.cache.lock().expect("stats cache lock")
    }

    /// Append to the slow-query log (ring of [`SLOW_LOG_CAP`]); assigns
    /// and returns the entry's sequence number.
    pub fn record_slow(&self, mut entry: SlowQuery) -> u64 {
        let seq = self.slow_seq.fetch_add(1, Ordering::Relaxed) + 1;
        entry.seq = seq;
        let mut ring = self.slow.lock().expect("stats slow lock");
        if ring.len() == SLOW_LOG_CAP {
            ring.pop_front();
        }
        ring.push_back(entry);
        seq
    }

    /// Copy of the slow-query log, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().expect("stats slow lock").iter().cloned().collect()
    }

    /// Freeze everything. Tables and statements come out in key order so
    /// the derived system views are deterministic.
    pub fn snapshot(&self) -> StatsSnapshot {
        let tables = self
            .tables
            .lock()
            .expect("stats tables lock")
            .iter()
            .map(|(name, c)| TableSnapshot {
                table: name.clone(),
                scans: c.scans.total(),
                index_probes: c.index_probes.total(),
                tuples_read: c.tuples_read.total(),
                tuples_written: c.tuples_written.total(),
            })
            .collect();
        let statements = self
            .statements
            .lock()
            .expect("stats statements lock")
            .iter()
            .map(|(fp, s)| {
                let calls = s.calls.load(Ordering::Relaxed);
                let min = s.min_us.load(Ordering::Relaxed);
                StatementSnapshot {
                    query: fp.clone(),
                    calls,
                    errors: s.errors.load(Ordering::Relaxed),
                    refusals: s.refusals.load(Ordering::Relaxed),
                    total_us: s.total_us.load(Ordering::Relaxed),
                    min_us: if calls == 0 || min == u64::MAX { 0 } else { min },
                    max_us: s.max_us.load(Ordering::Relaxed),
                    p50_us: s.hist.percentile(50),
                    p95_us: s.hist.percentile(95),
                    p99_us: s.hist.percentile(99),
                    reads: s.reads.load(Ordering::Relaxed),
                    writes: s.writes.load(Ordering::Relaxed),
                    strategy: s.last_strategy.lock().expect("strategy lock").clone(),
                    exec_mode: s.last_exec_mode.lock().expect("exec mode lock").clone(),
                }
            })
            .collect();
        StatsSnapshot {
            tables,
            statements,
            cache: self.cache(),
            slow: self.slow_queries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(7), 3);
        assert_eq!(LatencyHistogram::bucket_of(8), 4);
        for k in 0..63 {
            // 2^k opens bucket k+1; 2^(k+1) - 1 closes it.
            assert_eq!(LatencyHistogram::bucket_of(1u64 << k), k + 1);
            assert_eq!(LatencyHistogram::bucket_of((1u64 << (k + 1)) - 1), k + 1);
        }
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_upper(0), 0);
        assert_eq!(LatencyHistogram::bucket_upper(1), 1);
        assert_eq!(LatencyHistogram::bucket_upper(2), 3);
        assert_eq!(LatencyHistogram::bucket_upper(10), 1023);
        assert_eq!(LatencyHistogram::bucket_upper(64), u64::MAX);
        // Every value's bucket upper bound is >= the value.
        for v in [0u64, 1, 2, 3, 100, 1000, 123_456, u64::MAX] {
            assert!(LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(v)) >= v);
        }
    }

    /// Nearest-rank oracle: sort, index at ceil(n*p/100), report that
    /// value's bucket upper bound. The histogram must agree exactly.
    fn oracle(values: &[u64], p: u64) -> u64 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((sorted.len() as u128 * p as u128).div_ceil(100)).max(1) as usize;
        LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(sorted[rank - 1]))
    }

    #[test]
    fn percentiles_match_exact_sort_oracle() {
        // Deterministic xorshift so the test is seed-stable.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..50 {
            let n = 1 + (next() % 400) as usize;
            let values: Vec<u64> = (0..n)
                .map(|_| match case % 3 {
                    0 => next() % 10,            // heavy zero/small
                    1 => next() % 100_000,       // mid spread
                    _ => next(),                 // full u64 range
                })
                .collect();
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            for p in [1, 25, 50, 75, 90, 95, 99, 100] {
                assert_eq!(
                    h.percentile(p),
                    oracle(&values, p),
                    "case {case} n {n} p {p}"
                );
            }
        }
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.total(), 0);
        assert!(h.nonzero().is_empty());
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = Arc::clone(&h);
            handles.push(thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.total(), 4000);
    }

    #[test]
    fn statement_aggregation_tracks_min_max_and_errors() {
        let r = StatsRegistry::new(true);
        for (us, err) in [(10, false), (500, true), (3, false)] {
            r.record_statement(&StatementSample {
                fingerprint: "SELECT ?".into(),
                micros: us,
                reads: 2,
                writes: 1,
                strategy: "transform".into(),
                exec_mode: "row".into(),
                error: err,
                refusals: 0,
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.statements.len(), 1);
        let s = &snap.statements[0];
        assert_eq!(s.query, "SELECT ?");
        assert_eq!(s.calls, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.min_us, 3);
        assert_eq!(s.max_us, 500);
        assert_eq!(s.total_us, 513);
        assert_eq!(s.reads, 6);
        assert_eq!(s.writes, 3);
        assert_eq!(s.strategy, "transform");
    }

    #[test]
    fn disabled_registry_collects_nothing() {
        let r = StatsRegistry::new(false);
        assert!(r.table("PARTS").is_none());
        r.record_statement(&StatementSample {
            fingerprint: "SELECT ?".into(),
            micros: 1,
            reads: 0,
            writes: 0,
            strategy: "ni".into(),
            exec_mode: "row".into(),
            error: false,
            refusals: 0,
        });
        r.record_cache(CacheCounters { hits: 9, ..CacheCounters::default() });
        let snap = r.snapshot();
        assert!(snap.tables.is_empty());
        assert!(snap.statements.is_empty());
        assert_eq!(snap.cache, CacheCounters::default());
        // Re-enable: collection resumes on the same registry.
        r.set_enabled(true);
        assert!(r.table("PARTS").is_some());
    }

    #[test]
    fn slow_log_is_a_ring_with_monotonic_seq() {
        let r = StatsRegistry::new(true);
        for i in 0..(SLOW_LOG_CAP as u64 + 5) {
            r.record_slow(SlowQuery {
                seq: 0,
                sql: format!("SELECT {i}"),
                fingerprint: "SELECT ?".into(),
                micros: i,
                strategy: "ni".into(),
                reads: 0,
                writes: 0,
                explain: vec![],
            });
        }
        let log = r.slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAP);
        assert_eq!(log[0].seq, 6); // oldest 5 evicted
        assert_eq!(log.last().unwrap().seq, SLOW_LOG_CAP as u64 + 5);
    }

    #[test]
    fn snapshot_json_round_trips_through_in_tree_parser() {
        let r = StatsRegistry::new(true);
        let t = r.table("PARTS").unwrap();
        t.scans.add(0, 2);
        t.tuples_read.add(1, 30);
        r.record_statement(&StatementSample {
            fingerprint: "SELECT PNUM FROM PARTS WHERE QOH = ?".into(),
            micros: 120,
            reads: 4,
            writes: 0,
            strategy: "nested-iteration".into(),
            exec_mode: "row".into(),
            error: false,
            refusals: 1,
        });
        let text = r.snapshot().to_json().to_string();
        let parsed = Json::parse(&text).expect("parse");
        let stmts = parsed.get("statements").and_then(Json::as_arr).expect("statements");
        assert_eq!(stmts.len(), 1);
        assert_eq!(
            stmts[0].get("query").and_then(Json::as_str),
            Some("SELECT PNUM FROM PARTS WHERE QOH = ?")
        );
        let tables = parsed.get("tables").and_then(Json::as_arr).expect("tables");
        assert_eq!(tables[0].get("table").and_then(Json::as_str), Some("PARTS"));
    }

    #[test]
    fn thread_shard_is_stable_within_a_thread() {
        let a = thread_shard();
        let b = thread_shard();
        assert_eq!(a, b);
        assert!(a < SHARDS);
    }

    #[test]
    fn cache_render_is_single_source_of_truth() {
        let c = CacheCounters {
            hits: 1,
            misses: 2,
            declines: 3,
            evictions: 4,
            invalidations: 5,
            entries: 6,
            bytes: 7,
        };
        assert_eq!(
            c.render(),
            "cache: 6 entries, 7 bytes; lifetime hits 1, misses 2, declines 3, \
             evictions 4, invalidations 5"
        );
    }
}
