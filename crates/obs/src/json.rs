//! Minimal JSON value type with a writer and a parser.
//!
//! The workspace is zero-external-dependency, so the metrics exporters
//! (`scripts/bench.sh`, the figure/table binaries) and their schema
//! checks (`explain_smoke`) share this one in-tree implementation instead
//! of hand-rolled `format!` strings that nothing can read back.
//!
//! Numbers are `f64`; integers up to 2^53 round-trip exactly, which
//! covers every counter this repo can produce in a bounded simulation.
//! Object keys keep insertion order — exporter output is deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always serialized from `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Convenience object constructor from `(&str, Json)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as &str if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document. Accepts exactly one value with optional
    /// surrounding whitespace; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates would need pairing; the exporter never
                        // emits them, so reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u{hex} escape"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so always valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_integers_without_fraction() {
        assert_eq!(Json::num(475.0).to_string(), "475");
        assert_eq!(Json::num(2.5).to_string(), "2.5");
    }

    #[test]
    fn writer_escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd").to_string(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj([
            ("query", Json::str("SELECT 1")),
            ("io", Json::obj([("reads", Json::num(3.0))])),
            (
                "ops",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::num(-1.5)]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("query").and_then(Json::as_str), Some("SELECT 1"));
        assert_eq!(
            back.get("io").and_then(|io| io.get("reads")).and_then(Json::as_num),
            Some(3.0)
        );
        assert_eq!(back.get("ops").and_then(Json::as_arr).map(|a| a.len()), Some(3));
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_input() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_handles_ws_escapes_and_empty_containers() {
        let v = Json::parse(" { \"a\" : [ ] , \"b\" : { } , \"c\" : \"\\u0041\" } ").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![])));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("A"));
    }
}
