//! Token kinds produced by the lexer.

use std::fmt;

/// A lexical token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token start in the source.
    pub offset: usize,
    /// The token kind and payload.
    pub kind: TokenKind,
}

/// Keywords of the dialect. Matched case-insensitively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // each variant is the keyword it names
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    Order,
    By,
    In,
    Is,
    Not,
    Exists,
    Any,
    Some,
    All,
    And,
    Or,
    Null,
    As,
    Asc,
    Desc,
    Create,
    Table,
    Insert,
    Into,
    Values,
    Date,
    Count,
    Sum,
    Avg,
    Max,
    Min,
    Int,
    Integer,
    Float,
    Real,
    String,
    Char,
    Varchar,
    Text,
    Explain,
    Analyze,
}

impl Keyword {
    /// Look up an identifier as a keyword.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Option::Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "ORDER" => Order,
            "BY" => By,
            "IN" => In,
            "IS" => Is,
            "NOT" => Not,
            "EXISTS" => Exists,
            "ANY" => Any,
            "SOME" => Keyword::Some,
            "ALL" => All,
            "AND" => And,
            "OR" => Or,
            "NULL" => Null,
            "AS" => As,
            "ASC" => Asc,
            "DESC" => Desc,
            "CREATE" => Create,
            "TABLE" => Table,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "DATE" => Date,
            "COUNT" => Count,
            "SUM" => Sum,
            "AVG" => Avg,
            "MAX" => Max,
            "MIN" => Min,
            "INT" => Int,
            "INTEGER" => Integer,
            "FLOAT" => Float,
            "REAL" => Real,
            "STRING" => String,
            "CHAR" => Char,
            "VARCHAR" => Varchar,
            "TEXT" => Text,
            "EXPLAIN" => Explain,
            "ANALYZE" => Analyze,
            _ => return None,
        })
    }
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (see [`Keyword`]).
    Keyword(Keyword),
    /// A non-keyword identifier, stored as written.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=` or `!>`
    Le,
    /// `>`
    Gt,
    /// `>=` or `!<`
    Ge,
    /// `-`
    Minus,
    /// `+`
    Plus,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Semi => f.write_str("';'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Ne => f.write_str("'!='"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}
