#![warn(missing_docs)]

//! SQL front-end for the dialect the paper studies.
//!
//! The dialect is the SQL of [AST 76] / System R as used by Kim and by
//! Ganski & Wong, plus the Section-8 extensions:
//!
//! * `SELECT [DISTINCT] … FROM … WHERE … [GROUP BY …] [ORDER BY …]`
//! * Nested predicates: `x IN (subquery)`, `x op (subquery)` (scalar),
//!   `[NOT] EXISTS (subquery)`, `x op ANY|ALL (subquery)`
//! * Aggregates `COUNT|SUM|AVG|MAX|MIN` over a column or `*`
//! * Comparison operators `= != <> < <= > >= !< !>` (the paper's `!<`/`!>`
//!   forms are normalised to `>=`/`<=`)
//! * The paper's unquoted date literals (`SHIPDATE < 1-1-80`, `8/14/77`)
//! * `CREATE TABLE` / `INSERT INTO … VALUES` for building test databases
//!
//! The module layout follows the classic pipeline: [`lexer`] → [`parser`] →
//! [`ast`], with [`printer`] rendering an AST back to SQL text (used by
//! `EXPLAIN`-style output and by the transformation demos that print the
//! paper's intermediate queries).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{
    AggArg, AggFunc, ColumnRef, CompareOp, InRhs, Operand, OrderKey, Predicate, Quantifier,
    QueryBlock, ScalarExpr, SelectItem, SortDir, Statement, TableRef,
};
pub use error::ParseError;
pub use parser::{parse_query, parse_statement, parse_statements};
pub use printer::{print_predicate, print_query, print_query_masked};

/// Result alias for parsing.
pub type Result<T> = std::result::Result<T, ParseError>;
