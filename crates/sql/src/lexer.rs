//! Hand-written lexer for the dialect.

use crate::error::ParseError;
use crate::token::{Keyword, Token, TokenKind};

/// Lex `src` into a token stream ending with [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_simple(&mut tokens, &mut i, start, TokenKind::LParen),
            ')' => push_simple(&mut tokens, &mut i, start, TokenKind::RParen),
            ',' => push_simple(&mut tokens, &mut i, start, TokenKind::Comma),
            '.' => push_simple(&mut tokens, &mut i, start, TokenKind::Dot),
            '*' => push_simple(&mut tokens, &mut i, start, TokenKind::Star),
            ';' => push_simple(&mut tokens, &mut i, start, TokenKind::Semi),
            '=' => push_simple(&mut tokens, &mut i, start, TokenKind::Eq),
            '+' => push_simple(&mut tokens, &mut i, start, TokenKind::Plus),
            '-' => push_simple(&mut tokens, &mut i, start, TokenKind::Minus),
            '/' => push_simple(&mut tokens, &mut i, start, TokenKind::Slash),
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { offset: start, kind: TokenKind::Le });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { offset: start, kind: TokenKind::Ne });
                    i += 2;
                } else {
                    push_simple(&mut tokens, &mut i, start, TokenKind::Lt);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { offset: start, kind: TokenKind::Ge });
                    i += 2;
                } else {
                    push_simple(&mut tokens, &mut i, start, TokenKind::Gt);
                }
            }
            '!' => {
                // `!=`, plus the paper's `!<` (not-less: >=) and `!>` (not-greater: <=).
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        tokens.push(Token { offset: start, kind: TokenKind::Ne });
                        i += 2;
                    }
                    Some(b'<') => {
                        tokens.push(Token { offset: start, kind: TokenKind::Ge });
                        i += 2;
                    }
                    Some(b'>') => {
                        tokens.push(Token { offset: start, kind: TokenKind::Le });
                        i += 2;
                    }
                    _ => return Err(ParseError::new(start, "unexpected character '!'")),
                }
            }
            '\'' => {
                // String literal; '' escapes a quote.
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new(start, "unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            out.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            out.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { offset: start, kind: TokenKind::Str(out) });
            }
            '0'..='9' => {
                let mut end = i;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                // A float has `digits . digits`; a lone trailing dot is the
                // qualification dot and stays separate.
                let is_float = end < bytes.len()
                    && bytes[end] == b'.'
                    && bytes.get(end + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    end += 1;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                    let text = &src[i..end];
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(start, format!("bad float literal {text:?}")))?;
                    tokens.push(Token { offset: start, kind: TokenKind::Float(v) });
                } else {
                    let text = &src[i..end];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(start, format!("bad integer literal {text:?}")))?;
                    tokens.push(Token { offset: start, kind: TokenKind::Int(v) });
                }
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let text = &src[i..end];
                let kind = match Keyword::from_ident(text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token { offset: start, kind });
                i = end;
            }
            other => {
                return Err(ParseError::new(start, format!("unexpected character {other:?}")));
            }
        }
    }
    tokens.push(Token { offset: src.len(), kind: TokenKind::Eof });
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Token>, i: &mut usize, offset: usize, kind: TokenKind) {
    tokens.push(Token { offset, kind });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_example_one() {
        let ks = kinds("SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2');");
        assert!(ks.contains(&T::Str("P2".into())));
        assert!(ks.contains(&T::Keyword(Keyword::In)));
        assert_eq!(*ks.last().unwrap(), T::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], T::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], T::Keyword(Keyword::Select));
    }

    #[test]
    fn paper_not_less_operators() {
        assert_eq!(kinds("!<")[0], T::Ge);
        assert_eq!(kinds("!>")[0], T::Le);
        assert_eq!(kinds("!=")[0], T::Ne);
        assert_eq!(kinds("<>")[0], T::Ne);
    }

    #[test]
    fn date_literal_pieces() {
        // `1-1-80` lexes as Int Minus Int Minus Int; the parser reassembles.
        assert_eq!(
            kinds("1-1-80"),
            vec![T::Int(1), T::Minus, T::Int(1), T::Minus, T::Int(80), T::Eof]
        );
        assert_eq!(
            kinds("8/14/77"),
            vec![T::Int(8), T::Slash, T::Int(14), T::Slash, T::Int(77), T::Eof]
        );
    }

    #[test]
    fn float_vs_qualified_name() {
        assert_eq!(kinds("1.5"), vec![T::Float(1.5), T::Eof]);
        assert_eq!(
            kinds("S.CITY"),
            vec![T::Ident("S".into()), T::Dot, T::Ident("CITY".into()), T::Eof]
        );
    }

    #[test]
    fn string_escape() {
        assert_eq!(kinds("'it''s'")[0], T::Str("it's".into()));
    }

    #[test]
    fn line_comments_skipped() {
        let ks = kinds("SELECT -- the works\n *");
        assert_eq!(ks, vec![T::Keyword(Keyword::Select), T::Star, T::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn stray_bang_errors() {
        assert!(lex("a ! b").is_err());
    }
}
