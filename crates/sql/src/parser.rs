//! Recursive-descent parser producing [`crate::ast`] values.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Keyword as K, Token, TokenKind as T};
use nsql_types::{ColumnType, Date, Value};

/// Parse a single SELECT query (a trailing `;` is allowed).
pub fn parse_query(src: &str) -> Result<QueryBlock, ParseError> {
    let mut p = Parser::new(src)?;
    p.expect_keyword(K::Select)?;
    let q = p.parse_query_body()?;
    p.eat(&T::Semi);
    p.expect_eof()?;
    Ok(q)
}

/// Parse a single statement (CREATE TABLE / INSERT / SELECT / EXPLAIN).
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.parse_statement()?;
    p.eat(&T::Semi);
    p.expect_eof()?;
    Ok(s)
}

/// Parse a `;`-separated script of statements.
pub fn parse_statements(src: &str) -> Result<Vec<Statement>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&T::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_statement()?);
        if !p.eat(&T::Semi) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser { tokens: lex(src)?, pos: 0 })
    }

    fn peek(&self) -> &T {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &T {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> T {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), T::Eof)
    }

    fn eat(&mut self, kind: &T) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: K) -> bool {
        self.eat(&T::Keyword(k))
    }

    fn expect(&mut self, kind: &T) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, k: K) -> Result<(), ParseError> {
        self.expect(&T::Keyword(k))
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.offset(), message)
    }

    fn parse_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            T::Ident(s) => {
                self.advance();
                Ok(s.to_ascii_uppercase())
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    // ---------------------------------------------------------------- statements

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword(K::Select) {
            return Ok(Statement::Select(self.parse_query_body()?));
        }
        if self.eat_keyword(K::Explain) {
            let analyze = self.eat_keyword(K::Analyze);
            self.expect_keyword(K::Select)?;
            return Ok(Statement::Explain { analyze, query: self.parse_query_body()? });
        }
        if self.eat_keyword(K::Create) {
            self.expect_keyword(K::Table)?;
            return self.parse_create_table();
        }
        if self.eat_keyword(K::Insert) {
            self.expect_keyword(K::Into)?;
            return self.parse_insert();
        }
        Err(self.err(format!(
            "expected SELECT, EXPLAIN, CREATE TABLE, or INSERT INTO; found {}",
            self.peek()
        )))
    }

    fn parse_create_table(&mut self) -> Result<Statement, ParseError> {
        let name = self.parse_ident("table name")?;
        self.expect(&T::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.parse_ident("column name")?;
            let ty = self.parse_column_type()?;
            columns.push((col, ty));
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect(&T::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn parse_column_type(&mut self) -> Result<ColumnType, ParseError> {
        let ty = match self.peek() {
            T::Keyword(K::Int) | T::Keyword(K::Integer) => ColumnType::Int,
            T::Keyword(K::Float) | T::Keyword(K::Real) => ColumnType::Float,
            T::Keyword(K::String) | T::Keyword(K::Char) | T::Keyword(K::Varchar)
            | T::Keyword(K::Text) => ColumnType::Str,
            T::Keyword(K::Date) => ColumnType::Date,
            other => return Err(self.err(format!("expected column type, found {other}"))),
        };
        self.advance();
        // Allow CHAR(20)-style width annotations; width is ignored.
        if self.eat(&T::LParen) {
            match self.advance() {
                T::Int(_) => {}
                other => return Err(self.err(format!("expected type width, found {other}"))),
            }
            self.expect(&T::RParen)?;
        }
        Ok(ty)
    }

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        let table = self.parse_ident("table name")?;
        self.expect_keyword(K::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&T::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_literal()?);
                if !self.eat(&T::Comma) {
                    break;
                }
            }
            self.expect(&T::RParen)?;
            rows.push(row);
            if !self.eat(&T::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    // ---------------------------------------------------------------- queries

    /// Parse the remainder of a query after `SELECT` has been consumed.
    fn parse_query_body(&mut self) -> Result<QueryBlock, ParseError> {
        let distinct = self.eat_keyword(K::Distinct);
        let mut select = Vec::new();
        loop {
            select.push(self.parse_select_item()?);
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect_keyword(K::From)?;
        let mut from = Vec::new();
        loop {
            from.push(self.parse_table_ref()?);
            if !self.eat(&T::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword(K::Where) {
            Some(self.parse_predicate()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(K::Group) {
            self.expect_keyword(K::By)?;
            loop {
                group_by.push(self.parse_column_ref()?);
                if !self.eat(&T::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword(K::Order) {
            self.expect_keyword(K::By)?;
            loop {
                let column = self.parse_column_ref()?;
                let dir = if self.eat_keyword(K::Desc) {
                    SortDir::Desc
                } else {
                    self.eat_keyword(K::Asc);
                    SortDir::Asc
                };
                order_by.push(OrderKey { column, dir });
                if !self.eat(&T::Comma) {
                    break;
                }
            }
        }
        Ok(QueryBlock { distinct, select, from, where_clause, group_by, order_by })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        let expr = match self.peek().clone() {
            T::Keyword(k) if agg_keyword(k).is_some() => {
                let func = agg_keyword(k).expect("guard");
                self.advance();
                self.expect(&T::LParen)?;
                let arg = if self.eat(&T::Star) {
                    if func != AggFunc::Count {
                        return Err(self.err(format!("{}(*) is only valid for COUNT", func.name())));
                    }
                    AggArg::Star
                } else {
                    AggArg::Column(self.parse_column_ref()?)
                };
                self.expect(&T::RParen)?;
                ScalarExpr::Aggregate(func, arg)
            }
            T::Ident(_) => ScalarExpr::Column(self.parse_column_ref()?),
            _ => ScalarExpr::Literal(self.parse_literal()?),
        };
        let alias = if self.eat_keyword(K::As) {
            Some(self.parse_ident("alias")?)
        } else if let T::Ident(_) = self.peek() {
            Some(self.parse_ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.parse_ident("table name")?;
        let alias = if self.eat_keyword(K::As) {
            Some(self.parse_ident("alias")?)
        } else if let T::Ident(_) = self.peek() {
            Some(self.parse_ident("alias")?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn parse_column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.parse_ident("column name")?;
        if self.eat(&T::Dot) {
            let column = self.parse_ident("column name")?;
            Ok(ColumnRef { table: Some(first), column })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    // ---------------------------------------------------------------- literals

    /// Parse a literal value: numbers (optionally signed), strings, NULL,
    /// `DATE '…'`, and the paper's bare `M-D-YY` / `M/D/YY` date forms.
    fn parse_literal(&mut self) -> Result<Value, ParseError> {
        if self.eat_keyword(K::Null) {
            return Ok(Value::Null);
        }
        if self.eat_keyword(K::Date) {
            return match self.advance() {
                T::Str(s) => Date::parse(&s)
                    .map(Value::Date)
                    .map_err(|e| self.err(e.to_string())),
                other => Err(self.err(format!("expected date string after DATE, found {other}"))),
            };
        }
        let negative = self.eat(&T::Minus);
        if !negative {
            self.eat(&T::Plus);
        }
        match self.advance() {
            T::Int(v) => {
                // Bare date literal? `Int (-|/) Int (-|/) Int`.
                if !negative {
                    if let Some(date) = self.try_finish_date(v)? {
                        return Ok(Value::Date(date));
                    }
                }
                Ok(Value::Int(if negative { -v } else { v }))
            }
            T::Float(v) => Ok(Value::Float(if negative { -v } else { v })),
            T::Str(s) if !negative => Ok(Value::Str(s)),
            other => Err(self.err(format!("expected literal, found {other}"))),
        }
    }

    /// After consuming an integer, check for the two-more-components date
    /// shape and build the date if present.
    fn try_finish_date(&mut self, first: i64) -> Result<Option<Date>, ParseError> {
        let sep = match self.peek() {
            T::Minus => T::Minus,
            T::Slash => T::Slash,
            _ => return Ok(None),
        };
        // Require `sep Int sep Int` ahead before consuming anything.
        let (second, fourth) = (self.peek_at(1).clone(), self.peek_at(3).clone());
        if *self.peek_at(2) != sep {
            return Ok(None);
        }
        let (T::Int(mid), T::Int(last)) = (second, fourth) else {
            return Ok(None);
        };
        let start = self.offset();
        self.advance(); // sep
        self.advance(); // mid
        self.advance(); // sep
        let last_width = last_token_width(last);
        self.advance(); // last
        let year = if last_width <= 2 { 1900 + last } else { last };
        Date::new(year as i32, first as u8, mid as u8)
            .map(Some)
            .map_err(|e| ParseError::new(start, e.to_string()))
    }

    // ---------------------------------------------------------------- predicates

    fn parse_predicate(&mut self) -> Result<Predicate, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Predicate, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_keyword(K::Or) {
            parts.push(self.parse_and()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(Predicate::Or(parts))
        }
    }

    fn parse_and(&mut self) -> Result<Predicate, ParseError> {
        let mut parts = vec![self.parse_not()?];
        while self.eat_keyword(K::And) {
            parts.push(self.parse_not()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(Predicate::And(parts))
        }
    }

    fn parse_not(&mut self) -> Result<Predicate, ParseError> {
        // `NOT EXISTS` is handled in the atom so it parses as a single
        // predicate; bare NOT before anything else is general negation.
        if *self.peek() == T::Keyword(K::Not) && *self.peek_at(1) != T::Keyword(K::Exists) {
            self.advance();
            return Ok(Predicate::Not(Box::new(self.parse_not()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Predicate, ParseError> {
        // [NOT] EXISTS (SELECT …)
        if *self.peek() == T::Keyword(K::Exists)
            || (*self.peek() == T::Keyword(K::Not) && *self.peek_at(1) == T::Keyword(K::Exists))
        {
            let negated = self.eat_keyword(K::Not);
            self.expect_keyword(K::Exists)?;
            let query = self.parse_parenthesized_query()?;
            return Ok(Predicate::Exists { negated, query: Box::new(query) });
        }
        // Parenthesized predicate — but `(SELECT …)` is a scalar-subquery
        // operand, not a grouping.
        if *self.peek() == T::LParen && *self.peek_at(1) != T::Keyword(K::Select) {
            self.advance();
            let p = self.parse_or()?;
            self.expect(&T::RParen)?;
            return Ok(p);
        }
        let left = self.parse_operand()?;
        self.parse_predicate_tail(left)
    }

    fn parse_predicate_tail(&mut self, left: Operand) -> Result<Predicate, ParseError> {
        // IS NULL / IS NOT NULL / IS [NOT] IN (the paper writes "IS IN")
        if self.eat_keyword(K::Is) {
            let negated = self.eat_keyword(K::Not);
            if self.eat_keyword(K::Null) {
                return Ok(Predicate::IsNull { operand: left, negated });
            }
            self.expect_keyword(K::In)?;
            return self.parse_in_tail(left, negated);
        }
        if self.eat_keyword(K::Not) {
            self.expect_keyword(K::In)?;
            return self.parse_in_tail(left, true);
        }
        if self.eat_keyword(K::In) {
            return self.parse_in_tail(left, false);
        }
        let op = match self.advance() {
            T::Eq => CompareOp::Eq,
            T::Ne => CompareOp::Ne,
            T::Lt => CompareOp::Lt,
            T::Le => CompareOp::Le,
            T::Gt => CompareOp::Gt,
            T::Ge => CompareOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other}"))),
        };
        // Quantified comparison?
        let quantifier = if self.eat_keyword(K::Any) || self.eat_keyword(K::Some) {
            Some(Quantifier::Any)
        } else if self.eat_keyword(K::All) {
            Some(Quantifier::All)
        } else {
            None
        };
        if let Some(quantifier) = quantifier {
            let query = self.parse_parenthesized_query()?;
            return Ok(Predicate::Quantified { left, op, quantifier, query: Box::new(query) });
        }
        let right = self.parse_operand()?;
        Ok(Predicate::Compare { left, op, right })
    }

    fn parse_in_tail(&mut self, operand: Operand, negated: bool) -> Result<Predicate, ParseError> {
        self.expect(&T::LParen)?;
        if self.eat_keyword(K::Select) {
            let q = self.parse_query_body()?;
            self.expect(&T::RParen)?;
            return Ok(Predicate::In { operand, negated, rhs: InRhs::Subquery(Box::new(q)) });
        }
        let mut values = Vec::new();
        loop {
            values.push(self.parse_literal()?);
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect(&T::RParen)?;
        Ok(Predicate::In { operand, negated, rhs: InRhs::List(values) })
    }

    fn parse_parenthesized_query(&mut self) -> Result<QueryBlock, ParseError> {
        self.expect(&T::LParen)?;
        self.expect_keyword(K::Select)?;
        let q = self.parse_query_body()?;
        self.expect(&T::RParen)?;
        Ok(q)
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek().clone() {
            T::LParen if *self.peek_at(1) == T::Keyword(K::Select) => {
                let q = self.parse_parenthesized_query()?;
                Ok(Operand::Subquery(Box::new(q)))
            }
            T::Ident(_) => Ok(Operand::Column(self.parse_column_ref()?)),
            _ => Ok(Operand::Literal(self.parse_literal()?)),
        }
    }
}

fn agg_keyword(k: K) -> Option<AggFunc> {
    Some(match k {
        K::Count => AggFunc::Count,
        K::Sum => AggFunc::Sum,
        K::Avg => AggFunc::Avg,
        K::Max => AggFunc::Max,
        K::Min => AggFunc::Min,
        _ => return None,
    })
}

/// Decimal digit count of a non-negative integer (date year-width check).
fn last_token_width(v: i64) -> usize {
    if v == 0 {
        1
    } else {
        (v.unsigned_abs().ilog10() + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_1() {
        // Query (1) from the introduction.
        let q = parse_query(
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2');",
        )
        .unwrap();
        assert_eq!(q.from, vec![TableRef::new("S")]);
        let Some(Predicate::In { rhs: InRhs::Subquery(inner), negated: false, .. }) =
            q.where_clause
        else {
            panic!("expected IN subquery");
        };
        assert_eq!(inner.from, vec![TableRef::new("SP")]);
    }

    #[test]
    fn parses_is_in_form() {
        // The paper writes "PNO IS IN (SELECT …)".
        let q = parse_query(
            "SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)",
        )
        .unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Predicate::In { negated: false, rhs: InRhs::Subquery(_), .. })
        ));
    }

    #[test]
    fn parses_type_a_query() {
        // Query (2): scalar comparison against MAX subquery.
        let q = parse_query("SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)").unwrap();
        let Some(Predicate::Compare { right: Operand::Subquery(inner), op: CompareOp::Eq, .. }) =
            q.where_clause
        else {
            panic!("expected scalar subquery comparison");
        };
        assert!(inner.has_aggregate_select());
    }

    #[test]
    fn parses_kiessling_q2_with_bare_date() {
        let q = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH = \
             (SELECT COUNT(SHIPDATE) FROM SUPPLY \
              WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
        )
        .unwrap();
        let Some(Predicate::Compare { right: Operand::Subquery(inner), .. }) = q.where_clause
        else {
            panic!("expected subquery");
        };
        let conj = inner.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 2);
        // The second conjunct compares against the parsed date 1980-01-01.
        let Predicate::And(ps) = inner.where_clause.as_ref().unwrap() else {
            panic!()
        };
        let Predicate::Compare { right: Operand::Literal(Value::Date(d)), .. } = &ps[1] else {
            panic!("expected date literal, got {:?}", ps[1]);
        };
        assert_eq!(d.to_string(), "1980-01-01");
    }

    #[test]
    fn parses_slash_dates_in_insert() {
        let s = parse_statement("INSERT INTO SUPPLY VALUES (3, 4, 8/14/77), (10, 1, 6/22/76)")
            .unwrap();
        let Statement::Insert { rows, .. } = s else { panic!() };
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0][2], Value::Date(_)));
    }

    #[test]
    fn parses_create_table() {
        let s = parse_statement(
            "CREATE TABLE S (SNO CHAR(5), SNAME VARCHAR(20), STATUS INT, CITY TEXT)",
        )
        .unwrap();
        let Statement::CreateTable { name, columns } = s else { panic!() };
        assert_eq!(name, "S");
        assert_eq!(columns[0], ("SNO".to_string(), ColumnType::Str));
        assert_eq!(columns[2], ("STATUS".to_string(), ColumnType::Int));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let q = parse_query(
            "SELECT SNO FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE SP.SNO = S.SNO) \
             AND NOT EXISTS (SELECT SNO FROM SP WHERE SP.QTY > 500)",
        )
        .unwrap();
        let Some(Predicate::And(ps)) = q.where_clause else { panic!() };
        assert!(matches!(ps[0], Predicate::Exists { negated: false, .. }));
        assert!(matches!(ps[1], Predicate::Exists { negated: true, .. }));
    }

    #[test]
    fn parses_quantified() {
        let q = parse_query("SELECT SNO FROM SP WHERE QTY < ANY (SELECT QTY FROM SP)").unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Predicate::Quantified { quantifier: Quantifier::Any, op: CompareOp::Lt, .. })
        ));
        let q = parse_query("SELECT SNO FROM SP WHERE QTY >= ALL (SELECT QTY FROM SP)").unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Predicate::Quantified { quantifier: Quantifier::All, op: CompareOp::Ge, .. })
        ));
    }

    #[test]
    fn some_is_any() {
        let q = parse_query("SELECT SNO FROM SP WHERE QTY = SOME (SELECT QTY FROM SP)").unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Predicate::Quantified { quantifier: Quantifier::Any, .. })
        ));
    }

    #[test]
    fn parses_not_less_operator() {
        let q = parse_query("SELECT SNO FROM SP WHERE QTY !< 100").unwrap();
        assert!(matches!(
            q.where_clause,
            Some(Predicate::Compare { op: CompareOp::Ge, .. })
        ));
    }

    #[test]
    fn parses_group_by_and_aliases() {
        let q = parse_query(
            "SELECT PNUM, COUNT(SHIPDATE) AS CT FROM SUPPLY GROUP BY PNUM",
        )
        .unwrap();
        assert_eq!(q.group_by, vec![ColumnRef::bare("PNUM")]);
        assert_eq!(q.select[1].alias.as_deref(), Some("CT"));
    }

    #[test]
    fn parses_table_alias() {
        let q = parse_query("SELECT X.SNO FROM SP X WHERE X.QTY > 10").unwrap();
        assert_eq!(q.from[0], TableRef::aliased("SP", "X"));
    }

    #[test]
    fn parses_in_value_list() {
        let q = parse_query("SELECT SNO FROM SP WHERE PNO IN ('P1', 'P2')").unwrap();
        let Some(Predicate::In { rhs: InRhs::List(vs), .. }) = q.where_clause else { panic!() };
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("SELECT COUNT(*) FROM SP").unwrap();
        assert_eq!(
            q.select[0].expr,
            ScalarExpr::Aggregate(AggFunc::Count, AggArg::Star)
        );
        assert!(parse_query("SELECT MAX(*) FROM SP").is_err());
    }

    #[test]
    fn parses_parenthesized_or() {
        let q = parse_query("SELECT SNO FROM SP WHERE (QTY > 10 OR QTY < 2) AND PNO = 'P1'")
            .unwrap();
        let Some(Predicate::And(ps)) = q.where_clause else { panic!() };
        assert!(matches!(ps[0], Predicate::Or(_)));
    }

    #[test]
    fn negative_numbers_and_null() {
        let s = parse_statement("INSERT INTO T VALUES (-5, NULL, 2.5)").unwrap();
        let Statement::Insert { rows, .. } = s else { panic!() };
        assert_eq!(rows[0], vec![Value::Int(-5), Value::Null, Value::Float(2.5)]);
    }

    #[test]
    fn parses_explain_and_explain_analyze() {
        let s = parse_statement("EXPLAIN SELECT A FROM T").unwrap();
        let Statement::Explain { analyze: false, query } = s else { panic!("{s:?}") };
        assert_eq!(query.from[0].table, "T");

        let s = parse_statement(
            "EXPLAIN ANALYZE SELECT PNUM FROM PARTS WHERE QOH = \
             (SELECT COUNT(SHIPDATE) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
        )
        .unwrap();
        let Statement::Explain { analyze: true, .. } = s else { panic!("{s:?}") };

        // EXPLAIN requires a SELECT after it.
        assert!(parse_statement("EXPLAIN INSERT INTO T VALUES (1)").is_err());
        assert!(parse_statement("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn multi_statement_script() {
        let s = parse_statements(
            "CREATE TABLE T (A INT); INSERT INTO T VALUES (1); SELECT A FROM T;",
        )
        .unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn deep_nesting_parses() {
        let q = parse_query(
            "SELECT A FROM R1 WHERE A IN (SELECT B FROM R2 WHERE B IN \
             (SELECT C FROM R3 WHERE C IN (SELECT D FROM R4)))",
        )
        .unwrap();
        let mut depth = 0;
        let mut cur = &q;
        while let Some(Predicate::In { rhs: InRhs::Subquery(inner), .. }) = &cur.where_clause {
            depth += 1;
            cur = inner;
        }
        assert_eq!(depth, 3);
    }

    #[test]
    fn reports_errors_with_position() {
        let e = parse_query("SELECT FROM").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse_query("SELECT A FROM").is_err());
        assert!(parse_query("SELECT A FROM T WHERE").is_err());
        assert!(parse_query("SELECT A FROM T WHERE A ==== 1").is_err());
    }

    #[test]
    fn date_keyword_literal() {
        let q = parse_query("SELECT A FROM T WHERE D < DATE '1980-01-01'").unwrap();
        let Some(Predicate::Compare { right: Operand::Literal(Value::Date(_)), .. }) =
            q.where_clause
        else {
            panic!()
        };
    }

    #[test]
    fn four_digit_year_date() {
        let s = parse_statement("INSERT INTO T VALUES (7-3-1979)").unwrap();
        let Statement::Insert { rows, .. } = s else { panic!() };
        let Value::Date(d) = &rows[0][0] else { panic!() };
        assert_eq!(d.year(), 1979);
    }

    #[test]
    fn subtraction_is_not_a_date() {
        // `QOH - 1` is not valid in this dialect; ensure it errors rather
        // than silently becoming a date.
        assert!(parse_query("SELECT A FROM T WHERE A = 1 - 1").is_err());
    }
}
