//! Render AST back to SQL text.
//!
//! Used by `EXPLAIN`-style output, by the experiment binaries that print the
//! paper's intermediate transformed queries, and by the parser round-trip
//! property tests.

use crate::ast::*;
use nsql_types::Value;
use std::fmt::Write as _;

/// Render a query block as a single-line SQL string.
pub fn print_query(q: &QueryBlock) -> String {
    let mut out = String::new();
    write_query(&mut out, q, false);
    out
}

/// Render a query block with every literal (comparison constants, IN-list
/// elements, SELECT-list constants) replaced by `?` — the statement
/// *fingerprint* used by cumulative statistics to aggregate calls that
/// differ only in their constants. Structure, table names, columns,
/// aliases, and nesting all remain, so structurally different statements
/// never collide.
pub fn print_query_masked(q: &QueryBlock) -> String {
    let mut out = String::new();
    write_query(&mut out, q, true);
    out
}

/// Render a predicate as SQL.
pub fn print_predicate(p: &Predicate) -> String {
    let mut out = String::new();
    write_pred(&mut out, p, false, false);
    out
}

/// Render a statement as SQL.
pub fn print_statement(s: &Statement) -> String {
    match s {
        Statement::Select(q) => print_query(q),
        Statement::Explain { analyze, query } => {
            let kw = if *analyze { "EXPLAIN ANALYZE" } else { "EXPLAIN" };
            format!("{kw} {}", print_query(query))
        }
        Statement::CreateTable { name, columns } => {
            let cols: Vec<String> =
                columns.iter().map(|(n, t)| format!("{n} {t}")).collect();
            format!("CREATE TABLE {name} ({})", cols.join(", "))
        }
        Statement::Insert { table, rows } => {
            let rows: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(print_value).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("INSERT INTO {table} VALUES {}", rows.join(", "))
        }
    }
}

fn write_query(out: &mut String, q: &QueryBlock, mask: bool) {
    out.push_str("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_scalar(out, &item.expr, mask);
        if let Some(a) = &item.alias {
            let _ = write!(out, " AS {a}");
        }
    }
    out.push_str(" FROM ");
    for (i, t) in q.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.table);
        if let Some(a) = &t.alias {
            let _ = write!(out, " {a}");
        }
    }
    if let Some(w) = &q.where_clause {
        out.push_str(" WHERE ");
        write_pred(out, w, false, mask);
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, c) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c}");
        }
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, k) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", k.column);
            if matches!(k.dir, SortDir::Desc) {
                out.push_str(" DESC");
            }
        }
    }
}

fn write_scalar(out: &mut String, e: &ScalarExpr, mask: bool) {
    match e {
        ScalarExpr::Column(c) => {
            let _ = write!(out, "{c}");
        }
        ScalarExpr::Literal(v) => {
            if mask {
                out.push('?');
            } else {
                out.push_str(&print_value(v));
            }
        }
        ScalarExpr::Aggregate(f, AggArg::Star) => {
            let _ = write!(out, "{}(*)", f.name());
        }
        ScalarExpr::Aggregate(f, AggArg::Column(c)) => {
            let _ = write!(out, "{}({c})", f.name());
        }
    }
}

fn write_operand(out: &mut String, o: &Operand, mask: bool) {
    match o {
        Operand::Column(c) => {
            let _ = write!(out, "{c}");
        }
        Operand::Literal(v) => {
            if mask {
                out.push('?');
            } else {
                out.push_str(&print_value(v));
            }
        }
        Operand::Subquery(q) => {
            out.push('(');
            write_query(out, q, mask);
            out.push(')');
        }
    }
}

/// `parenthesize` wraps compound predicates so nesting under NOT/OR prints
/// unambiguously.
fn write_pred(out: &mut String, p: &Predicate, parenthesize: bool, mask: bool) {
    match p {
        Predicate::And(ps) => {
            if parenthesize {
                out.push('(');
            }
            for (i, sub) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(" AND ");
                }
                write_pred(out, sub, matches!(sub, Predicate::Or(_)), mask);
            }
            if parenthesize {
                out.push(')');
            }
        }
        Predicate::Or(ps) => {
            if parenthesize {
                out.push('(');
            }
            for (i, sub) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(" OR ");
                }
                write_pred(
                    out,
                    sub,
                    matches!(sub, Predicate::And(_) | Predicate::Or(_)),
                    mask,
                );
            }
            if parenthesize {
                out.push(')');
            }
        }
        Predicate::Not(inner) => {
            out.push_str("NOT (");
            write_pred(out, inner, false, mask);
            out.push(')');
        }
        Predicate::Compare { left, op, right } => {
            write_operand(out, left, mask);
            let _ = write!(out, " {} ", op.symbol());
            write_operand(out, right, mask);
        }
        Predicate::In { operand, negated, rhs } => {
            write_operand(out, operand, mask);
            if *negated {
                out.push_str(" NOT IN (");
            } else {
                out.push_str(" IN (");
            }
            match rhs {
                InRhs::Subquery(q) => write_query(out, q, mask),
                InRhs::List(vs) => {
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        if mask {
                            out.push('?');
                        } else {
                            out.push_str(&print_value(v));
                        }
                    }
                }
            }
            out.push(')');
        }
        Predicate::Exists { negated, query } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_query(out, query, mask);
            out.push(')');
        }
        Predicate::Quantified { left, op, quantifier, query } => {
            write_operand(out, left, mask);
            let q = match quantifier {
                Quantifier::Any => "ANY",
                Quantifier::All => "ALL",
            };
            let _ = write!(out, " {} {q} (", op.symbol());
            write_query(out, query, mask);
            out.push(')');
        }
        Predicate::IsNull { operand, negated } => {
            write_operand(out, operand, mask);
            if *negated {
                out.push_str(" IS NOT NULL");
            } else {
                out.push_str(" IS NULL");
            }
        }
    }
}

/// Render a literal as SQL source.
pub fn print_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{d}'"),
        Value::Bool(b) => b.to_string().to_uppercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_statement};

    /// Parse → print → parse must be a fixed point.
    fn roundtrip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(q1, q2, "roundtrip changed the AST for {printed:?}");
    }

    #[test]
    fn roundtrips_paper_queries() {
        for src in [
            "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')",
            "SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
            "SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)",
            "SELECT SNAME FROM S WHERE SNO IS IN (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
            "SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
            "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
            "SELECT DISTINCT PNUM FROM PARTS",
            "SELECT PNUM, COUNT(SHIPDATE) AS CT FROM SUPPLY GROUP BY PNUM ORDER BY PNUM DESC",
            "SELECT SNO FROM S WHERE NOT EXISTS (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)",
            "SELECT SNO FROM SP WHERE QTY < ALL (SELECT QTY FROM SP X WHERE X.PNO = 'P1')",
            "SELECT SNO FROM SP WHERE (QTY > 10 OR QTY < 2) AND PNO IN ('P1', 'P2')",
            "SELECT A FROM T WHERE NOT (A = 1 OR A = 2)",
            "SELECT A FROM T WHERE B IS NOT NULL AND A != 2.5",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn prints_in_subquery_in_paper_style() {
        let q = parse_query("SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P)").unwrap();
        assert_eq!(
            print_query(&q),
            "SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P)"
        );
    }

    #[test]
    fn prints_statements() {
        let c = parse_statement("CREATE TABLE T (A INT, D DATE)").unwrap();
        assert_eq!(print_statement(&c), "CREATE TABLE T (A INT, D DATE)");
        let i = parse_statement("INSERT INTO T VALUES (1, 7-3-79), (2, NULL)").unwrap();
        assert_eq!(
            print_statement(&i),
            "INSERT INTO T VALUES (1, DATE '1979-07-03'), (2, NULL)"
        );
    }

    #[test]
    fn date_value_roundtrips_via_date_keyword() {
        roundtrip("SELECT A FROM T WHERE D < 1-1-80");
    }
}
