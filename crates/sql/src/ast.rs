//! Abstract syntax for the paper's SQL dialect.
//!
//! The central type is [`QueryBlock`], the paper's unit of analysis: "the
//! basic structure of a SQL query is a *query block*, which consists
//! principally of a SELECT clause, a FROM clause, and zero or more WHERE
//! clauses". Nested predicates hold inner query blocks, giving the multiway
//! query tree of Figure 2.

use nsql_types::{ColumnType, Value};

/// A possibly-qualified column reference, e.g. `SP.ORIGIN` or `PNO`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias qualifier, if written.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> ColumnRef {
        ColumnRef { table: None, column: column.into().to_ascii_uppercase() }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into().to_ascii_uppercase()),
            column: column.into().to_ascii_uppercase(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A table in a FROM clause, with optional alias (`FROM SUPPLY S2`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// Base table (or temporary table) name.
    pub table: String,
    /// Alias, if written.
    pub alias: Option<String>,
}

impl TableRef {
    /// Table reference without alias.
    pub fn new(table: impl Into<String>) -> TableRef {
        TableRef { table: table.into().to_ascii_uppercase(), alias: None }
    }

    /// Table reference with alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef {
            table: table.into().to_ascii_uppercase(),
            alias: Some(alias.into().to_ascii_uppercase()),
        }
    }

    /// The name by which columns reference this table: the alias when
    /// present, otherwise the table name.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// The five aggregate functions of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Max,
    Min,
}

impl AggFunc {
    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Max => "MAX",
            AggFunc::Min => "MIN",
        }
    }

    /// Value of the aggregate over the empty set: `COUNT` gives `0`, all
    /// others give `NULL`. This single fact is the root of the COUNT bug.
    pub fn empty_value(self) -> Value {
        match self {
            AggFunc::Count => Value::Int(0),
            _ => Value::Null,
        }
    }
}

/// Argument of an aggregate: a column or `*` (COUNT only).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggArg {
    /// `AGG(column)`.
    Column(ColumnRef),
    /// `COUNT(*)`.
    Star,
}

/// A scalar expression in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal constant.
    Literal(Value),
    /// Aggregate application.
    Aggregate(AggFunc, AggArg),
}

impl ScalarExpr {
    /// The aggregate function, if this expression is one.
    pub fn as_aggregate(&self) -> Option<(AggFunc, &AggArg)> {
        match self {
            ScalarExpr::Aggregate(f, a) => Some((*f, a)),
            _ => None,
        }
    }
}

/// One item of a SELECT list, with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: ScalarExpr,
    /// `AS alias`, if written.
    pub alias: Option<String>,
}

impl SelectItem {
    /// Item without alias.
    pub fn new(expr: ScalarExpr) -> SelectItem {
        SelectItem { expr, alias: None }
    }

    /// Select a column by reference.
    pub fn column(c: ColumnRef) -> SelectItem {
        SelectItem::new(ScalarExpr::Column(c))
    }
}

/// Scalar comparison operators. The paper's `!<` and `!>` normalise to
/// `Ge`/`Le` during lexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// The operator with sides swapped: `a op b` ⇔ `b op.flip() a`.
    pub fn flip(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// Evaluate against an ordering (three-valued logic handled by callers).
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }
}

/// An operand of a comparison: column, literal, or scalar subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Column reference.
    Column(ColumnRef),
    /// Literal constant.
    Literal(Value),
    /// `(SELECT …)` used as a scalar — the nested predicate form
    /// `[Ri.Ck op Q]` of [KIM 82].
    Subquery(Box<QueryBlock>),
}

impl Operand {
    /// The column reference, if this operand is one.
    pub fn as_column(&self) -> Option<&ColumnRef> {
        match self {
            Operand::Column(c) => Some(c),
            _ => None,
        }
    }

    /// The subquery, if this operand is one.
    pub fn as_subquery(&self) -> Option<&QueryBlock> {
        match self {
            Operand::Subquery(q) => Some(q),
            _ => None,
        }
    }
}

/// Right-hand side of an `IN` predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum InRhs {
    /// `IN (SELECT …)`.
    Subquery(Box<QueryBlock>),
    /// `IN (v1, v2, …)`.
    List(Vec<Value>),
}

/// `ANY` (a.k.a. `SOME`) or `ALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Quantifier {
    Any,
    All,
}

/// A WHERE-clause predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Conjunction (flattened n-ary).
    And(Vec<Predicate>),
    /// Disjunction (flattened n-ary).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Scalar comparison; either side may be a scalar subquery.
    Compare {
        /// Left operand.
        left: Operand,
        /// Operator.
        op: CompareOp,
        /// Right operand.
        right: Operand,
    },
    /// `x [NOT] IN (…)` — set membership ("IS IN" in the paper's examples).
    In {
        /// Tested operand.
        operand: Operand,
        /// Whether negated.
        negated: bool,
        /// Subquery or literal list.
        rhs: InRhs,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// Whether negated.
        negated: bool,
        /// The inner block.
        query: Box<QueryBlock>,
    },
    /// `x op ANY|ALL (SELECT …)`.
    Quantified {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CompareOp,
        /// `ANY` or `ALL`.
        quantifier: Quantifier,
        /// The inner block.
        query: Box<QueryBlock>,
    },
    /// `x IS [NOT] NULL`.
    IsNull {
        /// Tested operand.
        operand: Operand,
        /// Whether negated (`IS NOT NULL`).
        negated: bool,
    },
}

impl Predicate {
    /// AND two optional predicates.
    pub fn and_opt(a: Option<Predicate>, b: Option<Predicate>) -> Option<Predicate> {
        match (a, b) {
            (None, p) | (p, None) => p,
            (Some(a), Some(b)) => Some(Predicate::and(vec![a, b])),
        }
    }

    /// Build a flattened conjunction.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::And(ps) => flat.extend(ps),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Predicate::And(flat)
        }
    }

    /// The conjuncts of this predicate: the n-ary list for `And`, a
    /// singleton otherwise. Transformation algorithms work conjunct-wise.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().collect(),
            other => vec![other],
        }
    }

    /// Consume into conjuncts.
    pub fn into_conjuncts(self) -> Vec<Predicate> {
        match self {
            Predicate::And(ps) => ps,
            other => vec![other],
        }
    }

    /// Shorthand comparison between two columns.
    pub fn col_cmp(left: ColumnRef, op: CompareOp, right: ColumnRef) -> Predicate {
        Predicate::Compare {
            left: Operand::Column(left),
            op,
            right: Operand::Column(right),
        }
    }

    /// A *simple* predicate in the paper's sense: no nested query block at
    /// any position (Section 2.4's "simple predicates").
    pub fn is_simple(&self) -> bool {
        !self.contains_subquery()
    }

    /// Whether this predicate (at this level, not in subqueries) contains a
    /// nested query block.
    pub fn contains_subquery(&self) -> bool {
        match self {
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(Predicate::contains_subquery),
            Predicate::Not(p) => p.contains_subquery(),
            Predicate::Compare { left, right, .. } => {
                matches!(left, Operand::Subquery(_)) || matches!(right, Operand::Subquery(_))
            }
            Predicate::In { rhs, .. } => matches!(rhs, InRhs::Subquery(_)),
            Predicate::Exists { .. } | Predicate::Quantified { .. } => true,
            Predicate::IsNull { .. } => false,
        }
    }
}

/// Sort direction for ORDER BY (convenience extension; the paper's queries
/// do not use it but deterministic example output does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SortDir {
    Asc,
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Column to sort by.
    pub column: ColumnRef,
    /// Direction.
    pub dir: SortDir,
}

/// A SQL query block — the unit all of the paper's algorithms manipulate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryBlock {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM clause.
    pub from: Vec<TableRef>,
    /// WHERE clause.
    pub where_clause: Option<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
}

impl QueryBlock {
    /// `SELECT <select> FROM <from>`.
    pub fn new(select: Vec<SelectItem>, from: Vec<TableRef>) -> QueryBlock {
        QueryBlock { select, from, ..QueryBlock::default() }
    }

    /// Whether any SELECT item is an aggregate — one of the two tests in
    /// Kim's nesting classification.
    pub fn has_aggregate_select(&self) -> bool {
        self.select.iter().any(|s| s.expr.as_aggregate().is_some())
    }

    /// Add a conjunct to the WHERE clause.
    pub fn and_where(&mut self, pred: Predicate) {
        self.where_clause = Predicate::and_opt(self.where_clause.take(), Some(pred));
    }

    /// All table names/aliases visible in this block's FROM clause.
    pub fn from_names(&self) -> Vec<&str> {
        self.from.iter().map(TableRef::effective_name).collect()
    }

    /// Every *base table name* referenced anywhere in the query, including
    /// inside nested subqueries at any depth, deduplicated in
    /// first-occurrence order. Unlike [`QueryBlock::from_names`] this
    /// returns the underlying table names, never aliases — it answers
    /// "which stored relations does evaluating this statement touch?",
    /// which the statistics layer uses to refresh referenced system views
    /// before execution.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        for t in &self.from {
            if !out.iter().any(|n| n == &t.table) {
                out.push(t.table.clone());
            }
        }
        if let Some(w) = &self.where_clause {
            collect_pred_tables(w, out);
        }
    }
}

fn collect_pred_tables(p: &Predicate, out: &mut Vec<String>) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for sub in ps {
                collect_pred_tables(sub, out);
            }
        }
        Predicate::Not(inner) => collect_pred_tables(inner, out),
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    q.collect_tables(out);
                }
            }
        }
        Predicate::In { operand, rhs, .. } => {
            if let Operand::Subquery(q) = operand {
                q.collect_tables(out);
            }
            if let InRhs::Subquery(q) = rhs {
                q.collect_tables(out);
            }
        }
        Predicate::IsNull { operand, .. } => {
            if let Operand::Subquery(q) = operand {
                q.collect_tables(out);
            }
        }
        Predicate::Exists { query, .. } => query.collect_tables(out),
        Predicate::Quantified { left, query, .. } => {
            if let Operand::Subquery(q) = left {
                q.collect_tables(out);
            }
            query.collect_tables(out);
        }
    }
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name VALUES (…), (…)` .
    Insert {
        /// Target table.
        table: String,
        /// Rows of literal values.
        rows: Vec<Vec<Value>>,
    },
    /// A query.
    Select(QueryBlock),
    /// `EXPLAIN [ANALYZE] SELECT …` — render the transform decision and
    /// cost predictions; with ANALYZE, execute and attach measured
    /// per-operator actuals.
    Explain {
        /// Whether ANALYZE was given (execute and measure).
        analyze: bool,
        /// The query to explain.
        query: QueryBlock,
    },
}
