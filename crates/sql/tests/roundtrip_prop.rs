//! Property test: printing any generated AST and re-parsing it yields the
//! same AST (the printer and parser are mutual inverses over the dialect).

use nsql_sql::{
    parse_query, print_query, AggArg, AggFunc, ColumnRef, CompareOp, InRhs, Operand, Predicate,
    QueryBlock, Quantifier, ScalarExpr, SelectItem, TableRef,
};
use nsql_types::Value;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        nsql_sql::token::Keyword::from_ident(s).is_none()
    })
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident())
        .prop_map(|(t, c)| ColumnRef { table: t, column: c })
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|v| Value::Int(v.into())),
        (-1000i32..1000, 0u8..100).prop_map(|(a, b)| Value::Float(f64::from(a) + f64::from(b) / 100.0)),
        "[a-zA-Z0-9 ]{0,8}".prop_map(Value::str),
        Just(Value::Null),
        (1970i32..2030, 1u8..13, 1u8..28)
            .prop_map(|(y, m, d)| Value::Date(nsql_types::Date::new(y, m, d).expect("valid"))),
    ]
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        column_ref().prop_map(Operand::Column),
        literal().prop_map(Operand::Literal),
    ]
}

fn compare_op() -> impl Strategy<Value = CompareOp> {
    prop::sample::select(vec![
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ])
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    let expr = prop_oneof![
        column_ref().prop_map(ScalarExpr::Column),
        (
            prop::sample::select(vec![
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Max,
                AggFunc::Min
            ]),
            column_ref()
        )
            .prop_map(|(f, c)| ScalarExpr::Aggregate(f, AggArg::Column(c))),
        Just(ScalarExpr::Aggregate(AggFunc::Count, AggArg::Star)),
    ];
    (expr, proptest::option::of(ident()))
        .prop_map(|(expr, alias)| SelectItem { expr, alias })
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident()))
        .prop_map(|(table, alias)| TableRef { table, alias })
}

/// Predicates with up to one level of subquery nesting.
fn predicate(depth: u32) -> BoxedStrategy<Predicate> {
    let leaf = prop_oneof![
        (operand(), compare_op(), operand()).prop_map(|(left, op, right)| Predicate::Compare {
            left,
            op,
            right
        }),
        (operand(), any::<bool>(), proptest::collection::vec(literal(), 1..4)).prop_map(
            |(operand, negated, list)| Predicate::In {
                operand,
                negated,
                rhs: InRhs::List(list)
            }
        ),
        (operand(), any::<bool>()).prop_map(|(operand, negated)| Predicate::IsNull {
            operand,
            negated
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let with_sub = prop_oneof![
        leaf.clone(),
        (any::<bool>(), query_block(depth - 1))
            .prop_map(|(negated, q)| Predicate::Exists { negated, query: Box::new(q) }),
        (operand(), query_block(depth - 1)).prop_map(|(operand, q)| Predicate::In {
            operand,
            negated: false,
            rhs: InRhs::Subquery(Box::new(q))
        }),
        (
            operand(),
            compare_op(),
            prop::sample::select(vec![Quantifier::Any, Quantifier::All]),
            query_block(depth - 1)
        )
            .prop_map(|(left, op, quantifier, q)| Predicate::Quantified {
                left,
                op,
                quantifier,
                query: Box::new(q)
            }),
    ];
    let inner = with_sub.clone();
    prop_oneof![
        with_sub,
        proptest::collection::vec(inner.clone(), 2..4).prop_map(Predicate::And),
        proptest::collection::vec(inner.clone(), 2..4).prop_map(Predicate::Or),
        inner.prop_map(|p| Predicate::Not(Box::new(p))),
    ]
    .boxed()
}

fn query_block(depth: u32) -> BoxedStrategy<QueryBlock> {
    (
        any::<bool>(),
        proptest::collection::vec(select_item(), 1..4),
        proptest::collection::vec(table_ref(), 1..3),
        proptest::option::of(predicate(depth)),
        proptest::collection::vec(column_ref(), 0..3),
    )
        .prop_map(|(distinct, select, from, where_clause, group_by)| QueryBlock {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            order_by: vec![],
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn print_then_parse_is_identity(q in query_block(1)) {
        let printed = print_query(&q);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nSQL: {printed}"));
        prop_assert_eq!(&reparsed, &q, "printed as {}", printed);
    }
}
