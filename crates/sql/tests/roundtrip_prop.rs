//! Property test: printing any generated AST and re-parsing it yields the
//! same AST (the printer and parser are mutual inverses over the dialect).
//!
//! The AST generator and its grammar-preserving shrinkers live in
//! `nsql_testkit::gen`, so a failure here shrinks to a minimal *valid*
//! query block, not to a grammar fragment.

use nsql_sql::{parse_query, print_query};
use nsql_testkit::{forall, gen, prop_assert_eq};

#[test]
fn print_then_parse_is_identity() {
    forall(
        256,
        "print_then_parse_is_identity",
        |rng| gen::query_block(rng, 1),
        |q| {
            let printed = print_query(q);
            let reparsed = match parse_query(&printed) {
                Ok(r) => r,
                Err(e) => return Err(format!("reparse failed: {e}\nSQL: {printed}")),
            };
            prop_assert_eq!(&reparsed, q, "printed as {}", printed);
            Ok(())
        },
    );
}
