#![warn(missing_docs)]

//! Relational executor over the paged storage simulator.
//!
//! Two evaluation paths coexist, mirroring the paper:
//!
//! 1. [`nested_iter::NestedIter`] — the **System R reference evaluator**:
//!    direct interpretation of a nested [`QueryBlock`](nsql_sql::QueryBlock),
//!    re-evaluating correlated inner blocks once per qualifying outer tuple
//!    (Section 2's "nested iteration method"). It is both the semantic
//!    ground truth for every correctness experiment and the cost baseline
//!    for every benchmark. Uncorrelated inner blocks are evaluated once and
//!    materialized, as System R did for type-N/A nesting [SEL 79:33].
//!
//! 2. Physical operators ([`ops`]) — scans, filters, projections, duplicate
//!    elimination, nested-loop and sort-merge joins (inner and **left
//!    outer**), and sort-based grouped aggregation. The transformed
//!    (canonical) queries produced by `nsql-core` execute on these, with all
//!    I/O flowing through the counted buffer pool.
//!
//! Predicate evaluation implements SQL three-valued logic throughout; see
//! [`pred`].
//!
//! # Panic policy
//!
//! Every failure reachable from user input — parser-accepted but
//! unsupported constructs, type or arity mismatches, multi-row scalar
//! subqueries, aggregate overflow, injected storage faults — surfaces as a
//! typed [`EngineError`], never a panic. The handful of `expect`/`panic!`
//! sites in non-test code are local invariants whose messages name the
//! invariant (a morsel slot the scheduler has necessarily filled, an
//! element pushed on the preceding line, an iterator that just `peek`ed
//! `Some`) plus static fixture construction in [`fixtures`].

pub mod aggregate;
pub mod error;
pub mod expr;
pub mod fixtures;
pub mod nested_iter;
pub mod ops;
mod par;
pub mod pred;
pub mod provider;
pub mod vec_exec;

pub use error::EngineError;
pub use expr::{CExpr, Joined, Projector, Row};
pub use nested_iter::NestedIter;
pub use ops::{AggSpec, Exec, ExecObs, JoinKind};
pub use pred::CPred;
pub use provider::{MemoryProvider, OverlayProvider, TableProvider};

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, EngineError>;
