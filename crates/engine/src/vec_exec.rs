//! Vectorized predicate evaluation over column batches.
//!
//! The row path evaluates one [`CPred`] per tuple; this module evaluates
//! the same predicate over a whole [`Batch`] at once, refining a selection
//! vector. Semantics are an exact mirror of [`CPred::eval_row`]:
//!
//! * three-valued logic lane-by-lane, with [`Lane3::Err`] carrying the
//!   typed error a row-path evaluation of that row would have returned;
//! * AND/OR short-circuiting is reproduced *per lane* by active-lane
//!   tracking: a lane finalized by an earlier conjunct (FALSE, or an error)
//!   never sees later conjuncts, exactly like the row path's early return —
//!   so error visibility matches row execution operand-for-operand;
//! * `IN`-list evaluation walks the list in order per lane, first
//!   comparison error wins, `TRUE` short-circuits before later errors.
//!
//! Two predicate forms exist. [`VPred`] is the executable form over batch
//! column indices, built either from a physical [`CPred`]
//! ([`vpred_from_cpred`]) or by instantiating a [`Template`]. A
//! [`Template`] is the nested-iteration form: compiled once per query
//! block, with outer (correlated) column references left symbolic so each
//! outer binding instantiates them as constants. Compilation *declines*
//! (returns `None`) rather than errs on anything the fast path cannot
//! reproduce faithfully — subquery operands, locally ambiguous references —
//! and the caller falls back to the row path, which produces the canonical
//! result or error.

use crate::error::EngineError;
use crate::pred::CPred;
use crate::expr::CExpr;
use nsql_sql::{ColumnRef, CompareOp, InRhs, Operand, Predicate};
use nsql_types::{Schema, TypeError, Value};
use nsql_vec::{Batch, ColData, ValRef};

/// Per-lane truth value: SQL's three values plus a captured typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum Lane3 {
    /// TRUE.
    T,
    /// FALSE.
    F,
    /// UNKNOWN (NULL involved).
    U,
    /// The row-path evaluation of this lane would have returned this error.
    Err(EngineError),
}

/// An operand in an executable vectorized predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum VOperand {
    /// Batch column by index.
    Col(usize),
    /// Constant (literal, or an instantiated outer reference).
    Const(Value),
}

impl VOperand {
    #[inline]
    fn val<'a>(&'a self, b: &'a Batch, row: usize) -> ValRef<'a> {
        match self {
            VOperand::Col(i) => b.col(*i).val_ref(row),
            VOperand::Const(v) => ValRef::of(v),
        }
    }
}

/// An executable vectorized predicate — the batch-side mirror of [`CPred`].
#[derive(Debug, Clone, PartialEq)]
pub enum VPred {
    /// Constant truth value.
    Const(Option<bool>),
    /// Conjunction.
    And(Vec<VPred>),
    /// Disjunction.
    Or(Vec<VPred>),
    /// Negation.
    Not(Box<VPred>),
    /// Scalar comparison.
    Cmp {
        /// Left side.
        left: VOperand,
        /// Operator.
        op: CompareOp,
        /// Right side.
        right: VOperand,
    },
    /// Membership in a literal list.
    InList {
        /// Tested operand.
        expr: VOperand,
        /// List of values.
        list: Vec<Value>,
        /// Negated?
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested operand.
        expr: VOperand,
        /// `IS NOT NULL`?
        negated: bool,
    },
}

/// Lower a compiled physical predicate to its vectorized form. Infallible:
/// every [`CPred`] shape has a batch-side equivalent.
pub fn vpred_from_cpred(p: &CPred) -> VPred {
    let op = |e: &CExpr| match e {
        CExpr::Col(i) => VOperand::Col(*i),
        CExpr::Lit(v) => VOperand::Const(v.clone()),
    };
    match p {
        CPred::Const(v) => VPred::Const(*v),
        CPred::And(ps) => VPred::And(ps.iter().map(vpred_from_cpred).collect()),
        CPred::Or(ps) => VPred::Or(ps.iter().map(vpred_from_cpred).collect()),
        CPred::Not(q) => VPred::Not(Box::new(vpred_from_cpred(q))),
        CPred::Cmp { left, op: o, right } => {
            VPred::Cmp { left: op(left), op: *o, right: op(right) }
        }
        CPred::InList { expr, list, negated } => {
            VPred::InList { expr: op(expr), list: list.clone(), negated: *negated }
        }
        CPred::IsNull { expr, negated } => {
            VPred::IsNull { expr: op(expr), negated: *negated }
        }
    }
}

/// A template operand: local column, outer (correlated) reference by slot,
/// or literal.
#[derive(Debug, Clone, PartialEq)]
pub enum TOperand {
    /// Column of the local (block) schema, by batch index.
    Local(usize),
    /// Slot into the template's `outer_refs` list; instantiated per
    /// outer binding.
    Outer(usize),
    /// Literal constant.
    Lit(Value),
}

/// A template predicate, shaped like [`VPred`] over [`TOperand`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum TPred {
    /// Constant truth value.
    Const(Option<bool>),
    /// Conjunction.
    And(Vec<TPred>),
    /// Disjunction.
    Or(Vec<TPred>),
    /// Negation.
    Not(Box<TPred>),
    /// Scalar comparison.
    Cmp {
        /// Left side.
        left: TOperand,
        /// Operator.
        op: CompareOp,
        /// Right side.
        right: TOperand,
    },
    /// Membership in a literal list.
    InList {
        /// Tested operand.
        expr: TOperand,
        /// List of values.
        list: Vec<Value>,
        /// Negated?
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested operand.
        expr: TOperand,
        /// `IS NOT NULL`?
        negated: bool,
    },
}

/// A block-level predicate template: local references resolved to column
/// indices, outer references collected for per-binding instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// The shaped predicate.
    pub pred: TPred,
    /// Deduplicated outer references, in first-appearance order; slot `i`
    /// corresponds to [`TOperand::Outer`]`(i)`.
    pub outer_refs: Vec<ColumnRef>,
}

impl Template {
    /// Compile an AST predicate against a block's local `schema`. Returns
    /// `None` when the predicate contains anything the vectorized path
    /// cannot mirror faithfully: a subquery operand in any position, or a
    /// reference that is *ambiguous* in the local schema (the row path
    /// raises the error lazily; declining keeps that behavior canonical).
    /// References that simply don't resolve locally become outer slots.
    pub fn compile(schema: &Schema, p: &Predicate) -> Option<Template> {
        let mut outer_refs = Vec::new();
        let pred = compile_tpred(schema, p, &mut outer_refs)?;
        Some(Template { pred, outer_refs })
    }

    /// Instantiate with one outer binding: `outer_vals[i]` is the resolved
    /// value of `outer_refs[i]`.
    pub fn instantiate(&self, outer_vals: &[Value]) -> VPred {
        debug_assert_eq!(outer_vals.len(), self.outer_refs.len());
        instantiate_tpred(&self.pred, outer_vals)
    }

    /// Whether the template has no outer references (uncorrelated).
    pub fn is_closed(&self) -> bool {
        self.outer_refs.is_empty()
    }
}

fn compile_operand(
    schema: &Schema,
    o: &Operand,
    outer_refs: &mut Vec<ColumnRef>,
) -> Option<TOperand> {
    match o {
        Operand::Literal(v) => Some(TOperand::Lit(v.clone())),
        Operand::Subquery(_) => None,
        Operand::Column(c) => match schema.resolve(c.table.as_deref(), &c.column) {
            Ok(i) => Some(TOperand::Local(i)),
            // Ambiguous in the local scope: the row path errors here (the
            // innermost scope wins ambiguity checks), and it may do so
            // lazily under OR short-circuit — decline so it stays lazy.
            Err(TypeError::AmbiguousColumn(_)) => None,
            Err(_) => {
                let slot = match outer_refs.iter().position(|r| r == c) {
                    Some(i) => i,
                    None => {
                        outer_refs.push(c.clone());
                        outer_refs.len() - 1
                    }
                };
                Some(TOperand::Outer(slot))
            }
        },
    }
}

fn compile_tpred(
    schema: &Schema,
    p: &Predicate,
    outer_refs: &mut Vec<ColumnRef>,
) -> Option<TPred> {
    Some(match p {
        Predicate::And(ps) => TPred::And(
            ps.iter().map(|q| compile_tpred(schema, q, outer_refs)).collect::<Option<_>>()?,
        ),
        Predicate::Or(ps) => TPred::Or(
            ps.iter().map(|q| compile_tpred(schema, q, outer_refs)).collect::<Option<_>>()?,
        ),
        Predicate::Not(q) => TPred::Not(Box::new(compile_tpred(schema, q, outer_refs)?)),
        Predicate::Compare { left, op, right } => TPred::Cmp {
            left: compile_operand(schema, left, outer_refs)?,
            op: *op,
            right: compile_operand(schema, right, outer_refs)?,
        },
        Predicate::In { operand, negated, rhs: InRhs::List(list) } => TPred::InList {
            expr: compile_operand(schema, operand, outer_refs)?,
            list: list.clone(),
            negated: *negated,
        },
        Predicate::In { rhs: InRhs::Subquery(_), .. }
        | Predicate::Exists { .. }
        | Predicate::Quantified { .. } => return None,
        Predicate::IsNull { operand, negated } => TPred::IsNull {
            expr: compile_operand(schema, operand, outer_refs)?,
            negated: *negated,
        },
    })
}

fn instantiate_operand(o: &TOperand, outer_vals: &[Value]) -> VOperand {
    match o {
        TOperand::Local(i) => VOperand::Col(*i),
        TOperand::Outer(s) => VOperand::Const(outer_vals[*s].clone()),
        TOperand::Lit(v) => VOperand::Const(v.clone()),
    }
}

fn instantiate_tpred(p: &TPred, outer_vals: &[Value]) -> VPred {
    match p {
        TPred::Const(v) => VPred::Const(*v),
        TPred::And(ps) => {
            VPred::And(ps.iter().map(|q| instantiate_tpred(q, outer_vals)).collect())
        }
        TPred::Or(ps) => {
            VPred::Or(ps.iter().map(|q| instantiate_tpred(q, outer_vals)).collect())
        }
        TPred::Not(q) => VPred::Not(Box::new(instantiate_tpred(q, outer_vals))),
        TPred::Cmp { left, op, right } => VPred::Cmp {
            left: instantiate_operand(left, outer_vals),
            op: *op,
            right: instantiate_operand(right, outer_vals),
        },
        TPred::InList { expr, list, negated } => VPred::InList {
            expr: instantiate_operand(expr, outer_vals),
            list: list.clone(),
            negated: *negated,
        },
        TPred::IsNull { expr, negated } => VPred::IsNull {
            expr: instantiate_operand(expr, outer_vals),
            negated: *negated,
        },
    }
}

/// Evaluate `p` over the selected lanes of `b`. The result is parallel to
/// `sel`: `out[k]` is the three-valued (or error) outcome for row `sel[k]`.
pub fn eval_pred(p: &VPred, b: &Batch, sel: &[u32]) -> Vec<Lane3> {
    match p {
        VPred::Const(v) => {
            let lane = truth(*v);
            vec![lane; sel.len()]
        }
        VPred::And(ps) => eval_connective(ps, b, sel, false),
        VPred::Or(ps) => eval_connective(ps, b, sel, true),
        VPred::Not(q) => eval_pred(q, b, sel)
            .into_iter()
            .map(|l| match l {
                Lane3::T => Lane3::F,
                Lane3::F => Lane3::T,
                other => other,
            })
            .collect(),
        VPred::Cmp { left, op, right } => eval_cmp(left, *op, right, b, sel),
        VPred::InList { expr, list, negated } => sel
            .iter()
            .map(|&row| {
                let v = expr.val(b, row as usize);
                let lane = in_list_lane(v, list);
                if *negated {
                    not_lane(lane)
                } else {
                    lane
                }
            })
            .collect(),
        VPred::IsNull { expr, negated } => sel
            .iter()
            .map(|&row| {
                let isnull = expr.val(b, row as usize).is_null();
                if isnull != *negated {
                    Lane3::T
                } else {
                    Lane3::F
                }
            })
            .collect(),
    }
}

/// Refine `sel` through `p` with the filter-operator error policy: lanes
/// that evaluate TRUE are kept, the first error *in lane order* is captured
/// (matching scan order, so it is the error a row-path scan reports first),
/// and evaluation of the remaining lanes continues.
pub fn keep_lanes(
    p: &VPred,
    b: &Batch,
    sel: &[u32],
) -> (Vec<u32>, Option<EngineError>) {
    let lanes = eval_pred(p, b, sel);
    let mut keep = Vec::new();
    let mut first_err = None;
    for (k, lane) in lanes.into_iter().enumerate() {
        match lane {
            Lane3::T => keep.push(sel[k]),
            Lane3::Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Lane3::F | Lane3::U => {}
        }
    }
    (keep, first_err)
}

#[inline]
fn truth(v: Option<bool>) -> Lane3 {
    match v {
        Some(true) => Lane3::T,
        Some(false) => Lane3::F,
        None => Lane3::U,
    }
}

#[inline]
fn not_lane(l: Lane3) -> Lane3 {
    match l {
        Lane3::T => Lane3::F,
        Lane3::F => Lane3::T,
        other => other,
    }
}

/// AND/OR with per-lane short-circuiting. `or` flips the roles: for AND the
/// deciding value is FALSE, for OR it is TRUE; the residual value (reached
/// only when no operand decided and none was UNKNOWN) is the opposite.
fn eval_connective(ps: &[VPred], b: &Batch, sel: &[u32], or: bool) -> Vec<Lane3> {
    let deciding = if or { Lane3::T } else { Lane3::F };
    let residual = if or { Lane3::F } else { Lane3::T };
    // Positions into `sel`/`out` still undecided, and their row ids.
    let mut out: Vec<Lane3> = vec![residual; sel.len()];
    let mut active_rows: Vec<u32> = sel.to_vec();
    let mut active_pos: Vec<usize> = (0..sel.len()).collect();
    let mut unknown: Vec<bool> = vec![false; sel.len()];
    for p in ps {
        if active_rows.is_empty() {
            break;
        }
        let lanes = eval_pred(p, b, &active_rows);
        let mut next_rows = Vec::with_capacity(active_rows.len());
        let mut next_pos = Vec::with_capacity(active_pos.len());
        for (k, lane) in lanes.into_iter().enumerate() {
            let pos = active_pos[k];
            if lane == deciding || matches!(lane, Lane3::Err(_)) {
                // Decided: later operands are never evaluated for this
                // lane, mirroring the row path's early return.
                out[pos] = lane;
            } else {
                if lane == Lane3::U {
                    unknown[pos] = true;
                }
                next_rows.push(active_rows[k]);
                next_pos.push(pos);
            }
        }
        active_rows = next_rows;
        active_pos = next_pos;
    }
    for pos in active_pos {
        if unknown[pos] {
            out[pos] = Lane3::U;
        }
    }
    out
}

fn eval_cmp(
    left: &VOperand,
    op: CompareOp,
    right: &VOperand,
    b: &Batch,
    sel: &[u32],
) -> Vec<Lane3> {
    // Typed fast lanes for the dominant shapes: Int column against an Int
    // constant, and Int column against Int column. Semantically identical
    // to the generic path — ValRef::sql_cmp on (Int, Int) is i64::cmp.
    if let (VOperand::Col(ci), VOperand::Const(Value::Int(k))) = (left, right) {
        if let ColData::Int(data) = &b.col(*ci).data {
            let validity = &b.col(*ci).validity;
            return sel
                .iter()
                .map(|&row| {
                    let row = row as usize;
                    if !validity.get(row) {
                        Lane3::U
                    } else {
                        truth(Some(op.eval(data[row].cmp(k))))
                    }
                })
                .collect();
        }
    }
    if let (VOperand::Col(ci), VOperand::Col(cj)) = (left, right) {
        if let (ColData::Int(a), ColData::Int(c)) = (&b.col(*ci).data, &b.col(*cj).data) {
            let (va, vc) = (&b.col(*ci).validity, &b.col(*cj).validity);
            return sel
                .iter()
                .map(|&row| {
                    let row = row as usize;
                    if !va.get(row) || !vc.get(row) {
                        Lane3::U
                    } else {
                        truth(Some(op.eval(a[row].cmp(&c[row]))))
                    }
                })
                .collect();
        }
    }
    sel.iter()
        .map(|&row| {
            let row = row as usize;
            match left.val(b, row).sql_cmp(right.val(b, row)) {
                Err(e) => Lane3::Err(EngineError::Type(e)),
                Ok(None) => Lane3::U,
                Ok(Some(o)) => truth(Some(op.eval(o))),
            }
        })
        .collect()
}

/// Per-lane mirror of [`crate::pred::in_list`]: list walked in order, first
/// comparison error wins, TRUE short-circuits ahead of later errors.
fn in_list_lane(v: ValRef<'_>, list: &[Value]) -> Lane3 {
    let mut unknown = false;
    for item in list {
        match v.sql_cmp(ValRef::of(item)) {
            Err(e) => return Lane3::Err(EngineError::Type(e)),
            Ok(None) => unknown = true,
            Ok(Some(std::cmp::Ordering::Equal)) => return Lane3::T,
            Ok(Some(_)) => {}
        }
    }
    if unknown {
        Lane3::U
    } else {
        Lane3::F
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::parse_query;
    use nsql_types::{Column, ColumnType, Tuple};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "B", ColumnType::Int),
        ])
    }

    fn compile(src_where: &str) -> (CPred, VPred) {
        let q = parse_query(&format!("SELECT A FROM T WHERE {src_where}")).unwrap();
        let c = CPred::compile(&schema(), q.where_clause.as_ref().unwrap()).unwrap();
        let v = vpred_from_cpred(&c);
        (c, v)
    }

    fn batch(rows: &[(Option<i64>, Option<i64>)]) -> (Vec<Tuple>, Batch) {
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(a, b)| {
                Tuple::new(vec![
                    a.map_or(Value::Null, Value::Int),
                    b.map_or(Value::Null, Value::Int),
                ])
            })
            .collect();
        let b = Batch::from_tuples(&tuples);
        (tuples, b)
    }

    /// Every lane must agree with the row path: T/F/U match the row
    /// evaluation's Option<bool>, Err matches its error.
    fn assert_mirrors(src_where: &str, rows: &[(Option<i64>, Option<i64>)]) {
        let (c, v) = compile(src_where);
        let (tuples, b) = batch(rows);
        let sel = b.full_sel();
        let lanes = eval_pred(&v, &b, &sel);
        for (i, t) in tuples.iter().enumerate() {
            let row = c.eval(t);
            let want = match row {
                Ok(Some(true)) => Lane3::T,
                Ok(Some(false)) => Lane3::F,
                Ok(None) => Lane3::U,
                Err(e) => Lane3::Err(e),
            };
            assert_eq!(lanes[i], want, "{src_where} row {i}");
        }
    }

    #[test]
    fn comparisons_mirror_row_path() {
        let rows =
            [(Some(1), Some(2)), (Some(0), None), (None, None), (Some(5), Some(5))];
        for p in ["A = 1", "A < B", "A >= 5", "B <> 2", "A <= B", "B > A"] {
            assert_mirrors(p, &rows);
        }
    }

    #[test]
    fn connectives_mirror_row_path() {
        let rows = [
            (Some(1), Some(2)),
            (Some(1), None),
            (Some(0), None),
            (None, Some(2)),
            (None, None),
        ];
        for p in [
            "A = 1 AND B = 2",
            "A = 1 OR B = 2",
            "NOT (B = 2)",
            "A = 1 AND (B = 2 OR B IS NULL)",
            "NOT (A = 1 AND B = 2)",
        ] {
            assert_mirrors(p, &rows);
        }
    }

    #[test]
    fn in_list_and_is_null_mirror_row_path() {
        let rows = [(Some(1), Some(2)), (Some(3), None), (None, None)];
        for p in [
            "A IN (1, 3)",
            "A IN (2, NULL)",
            "A NOT IN (1, NULL)",
            "B IS NULL",
            "B IS NOT NULL",
            "A IN ()",
        ] {
            // "A IN ()" may not parse; skip shapes the parser rejects.
            let q = parse_query(&format!("SELECT A FROM T WHERE {p}"));
            if q.is_err() {
                continue;
            }
            assert_mirrors(p, &rows);
        }
    }

    #[test]
    fn type_errors_surface_per_lane_and_respect_short_circuit() {
        // Comparing Int to Str errors on the row path; behind `A = 1 AND`,
        // the error must appear only on lanes where A = 1 held.
        let schema = Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "S", ColumnType::Str),
        ]);
        let q = parse_query("SELECT A FROM T WHERE A = 1 AND S = 2").unwrap();
        let c = CPred::compile(&schema, q.where_clause.as_ref().unwrap()).unwrap();
        let v = vpred_from_cpred(&c);
        let tuples = vec![
            Tuple::new(vec![Value::Int(1), Value::str("x")]),
            Tuple::new(vec![Value::Int(0), Value::str("y")]),
        ];
        let b = Batch::from_tuples(&tuples);
        let lanes = eval_pred(&v, &b, &b.full_sel());
        assert!(matches!(lanes[0], Lane3::Err(EngineError::Type(_))), "{:?}", lanes[0]);
        assert_eq!(lanes[1], Lane3::F, "A=1 is FALSE, so the AND never sees the error");
        // And the lanes agree with the row path exactly.
        for (i, t) in tuples.iter().enumerate() {
            let want = match c.eval(t) {
                Ok(Some(true)) => Lane3::T,
                Ok(Some(false)) => Lane3::F,
                Ok(None) => Lane3::U,
                Err(e) => Lane3::Err(e),
            };
            assert_eq!(lanes[i], want);
        }
    }

    #[test]
    fn or_short_circuit_hides_errors_like_the_row_path() {
        let schema = Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "S", ColumnType::Str),
        ]);
        let q = parse_query("SELECT A FROM T WHERE A = 1 OR S = 2").unwrap();
        let c = CPred::compile(&schema, q.where_clause.as_ref().unwrap()).unwrap();
        let v = vpred_from_cpred(&c);
        let tuples = vec![
            Tuple::new(vec![Value::Int(1), Value::str("x")]), // TRUE hides the error
            Tuple::new(vec![Value::Int(0), Value::str("y")]), // error surfaces
        ];
        let b = Batch::from_tuples(&tuples);
        let lanes = eval_pred(&v, &b, &b.full_sel());
        assert_eq!(lanes[0], Lane3::T);
        assert!(matches!(lanes[1], Lane3::Err(_)));
        for (i, t) in tuples.iter().enumerate() {
            let want = match c.eval(t) {
                Ok(Some(true)) => Lane3::T,
                Ok(Some(false)) => Lane3::F,
                Ok(None) => Lane3::U,
                Err(e) => Lane3::Err(e),
            };
            assert_eq!(lanes[i], want);
        }
    }

    #[test]
    fn keep_lanes_keeps_true_and_reports_first_error_in_order() {
        let schema = Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "X", ColumnType::Str),
        ]);
        let q = parse_query("SELECT A FROM T WHERE X = 1").unwrap();
        let c = CPred::compile(&schema, q.where_clause.as_ref().unwrap()).unwrap();
        let v = vpred_from_cpred(&c);
        let tuples = vec![
            Tuple::new(vec![Value::Int(0), Value::str("a")]),
            Tuple::new(vec![Value::Int(1), Value::str("b")]),
        ];
        let b = Batch::from_tuples(&tuples);
        let (keep, err) = keep_lanes(&v, &b, &b.full_sel());
        assert!(keep.is_empty());
        assert!(matches!(err, Some(EngineError::Type(TypeError::Incomparable(..)))));
    }

    #[test]
    fn selection_vector_is_refined_not_reset() {
        let (_, v) = compile("A > 2");
        let (_, b) = batch(&[
            (Some(1), None),
            (Some(3), None),
            (Some(5), None),
            (Some(0), None),
            (Some(9), None),
        ]);
        // Start from a partial selection; only those lanes are examined.
        let sel: Vec<u32> = vec![1, 3, 4];
        let (keep, err) = keep_lanes(&v, &b, &sel);
        assert!(err.is_none());
        assert_eq!(keep, vec![1, 4]);
    }

    #[test]
    fn template_compiles_locals_outers_and_declines_subqueries() {
        let s = Schema::new(vec![Column::qualified("SUPPLY", "PNUM", ColumnType::Int)]);
        let q = parse_query(
            "SELECT PNUM FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND PNUM > 2",
        )
        .unwrap();
        let t = Template::compile(&s, q.where_clause.as_ref().unwrap()).unwrap();
        assert_eq!(t.outer_refs, vec![ColumnRef::qualified("PARTS", "PNUM")]);
        assert!(!t.is_closed());
        // Instantiating binds the outer ref as a constant.
        let v = t.instantiate(&[Value::Int(7)]);
        let tuples = vec![
            Tuple::new(vec![Value::Int(7)]),
            Tuple::new(vec![Value::Int(3)]),
            Tuple::new(vec![Value::Int(7)]),
        ];
        let b = Batch::from_tuples(&tuples);
        let lanes = eval_pred(&v, &b, &b.full_sel());
        assert_eq!(lanes, vec![Lane3::T, Lane3::F, Lane3::T]);

        // Subquery anywhere → decline.
        let q = parse_query("SELECT PNUM FROM SUPPLY WHERE PNUM IN (SELECT X FROM Y)")
            .unwrap();
        assert!(Template::compile(&s, q.where_clause.as_ref().unwrap()).is_none());
    }

    #[test]
    fn template_declines_locally_ambiguous_references() {
        let s = Schema::new(vec![
            Column::qualified("A", "K", ColumnType::Int),
            Column::qualified("B", "K", ColumnType::Int),
        ]);
        let q = parse_query("SELECT K FROM T WHERE K = 1").unwrap();
        assert!(Template::compile(&s, q.where_clause.as_ref().unwrap()).is_none());
    }

    #[test]
    fn outer_refs_deduplicate_by_slot() {
        let s = Schema::new(vec![Column::qualified("S", "X", ColumnType::Int)]);
        let q = parse_query("SELECT X FROM S WHERE X = P.K OR X < P.K").unwrap();
        let t = Template::compile(&s, q.where_clause.as_ref().unwrap()).unwrap();
        assert_eq!(t.outer_refs.len(), 1);
    }

    #[test]
    fn int_fast_lanes_agree_with_generic_path() {
        // Same predicate through the Col/Const fast lane and through a
        // Vals-demoted (mixed) column must agree.
        let (_, v) = compile("A >= 3");
        let (tuples, b) = batch(&[(Some(2), None), (Some(3), None), (None, None)]);
        let fast = eval_pred(&v, &b, &b.full_sel());
        // Force the generic path by comparing through VOperand::Const on
        // the left (no Col/Const fast-lane shape).
        let generic: Vec<Lane3> = tuples
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let val = b.col(0).val_ref(i);
                match val.sql_cmp(ValRef::of(&Value::Int(3))) {
                    Err(e) => Lane3::Err(EngineError::Type(e)),
                    Ok(None) => Lane3::U,
                    Ok(Some(o)) => truth(Some(CompareOp::Ge.eval(o))),
                }
            })
            .collect();
        assert_eq!(fast, generic);
    }
}
