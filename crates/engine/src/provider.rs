//! Access to stored tables by name.

use nsql_index::BTreeIndex;
use nsql_storage::HeapFile;
use std::sync::Arc;

/// Source of stored tables. Implemented by the catalog in `nsql-db` and by
/// lightweight maps in tests. Temporary tables created during query
/// processing are registered under their generated names.
pub trait TableProvider {
    /// The heap file for `table`, if it exists (lookup is
    /// case-insensitive). The file's schema columns are qualified by the
    /// base table name.
    fn get_table(&self, table: &str) -> Option<HeapFile>;

    /// The B+tree indexes on `table`, if any. Defaulted to none so
    /// lightweight test providers need not care; the catalog overrides it.
    fn get_indexes(&self, _table: &str) -> Vec<Arc<BTreeIndex>> {
        Vec::new()
    }

    /// The DML generation stamp of `table`, when the provider tracks one
    /// (the catalog bumps it on every INSERT/load/index change). `None`
    /// means "unknown" and disables cross-query result caching for blocks
    /// over this table — lightweight test providers stay uncacheable
    /// rather than unsound.
    fn table_generation(&self, _table: &str) -> Option<u64> {
        None
    }

    /// The provider's cache epoch: a process-unique stamp per catalog
    /// instance, so entries published against one catalog (or one
    /// incarnation of a reopened database) can never match another.
    fn cache_epoch(&self) -> u64 {
        0
    }

    /// Tell the provider the executor took an index path on `table`
    /// (`probes` key lookups or one range scan). Defaulted to a no-op;
    /// the catalog folds it into its cumulative statistics. Pure
    /// side-state — implementations must not touch counted I/O.
    fn note_index_probes(&self, _table: &str, _probes: u64) {}
}

impl<T: TableProvider + ?Sized> TableProvider for &T {
    fn get_table(&self, table: &str) -> Option<HeapFile> {
        (**self).get_table(table)
    }

    fn get_indexes(&self, table: &str) -> Vec<Arc<BTreeIndex>> {
        (**self).get_indexes(table)
    }

    fn table_generation(&self, table: &str) -> Option<u64> {
        (**self).table_generation(table)
    }

    fn cache_epoch(&self) -> u64 {
        (**self).cache_epoch()
    }

    fn note_index_probes(&self, table: &str, probes: u64) {
        (**self).note_index_probes(table, probes)
    }
}

/// A provider backed by a `HashMap`, plus an optional fallback — used to
/// overlay temporary tables on a base catalog during transformed-query
/// execution.
pub struct OverlayProvider<'a, T: TableProvider + ?Sized> {
    base: &'a T,
    overlay: std::collections::HashMap<String, HeapFile>,
}

impl<'a, T: TableProvider + ?Sized> OverlayProvider<'a, T> {
    /// Overlay on top of `base`.
    pub fn new(base: &'a T) -> Self {
        OverlayProvider { base, overlay: std::collections::HashMap::new() }
    }

    /// Register a temporary table (replacing any previous overlay entry).
    pub fn register(&mut self, name: impl Into<String>, file: HeapFile) {
        self.overlay.insert(name.into().to_ascii_uppercase(), file);
    }

    /// The registered overlay tables (name, file).
    pub fn overlay_tables(&self) -> impl Iterator<Item = (&String, &HeapFile)> {
        self.overlay.iter()
    }
}

impl<T: TableProvider + ?Sized> TableProvider for OverlayProvider<'_, T> {
    fn get_table(&self, table: &str) -> Option<HeapFile> {
        let key = table.to_ascii_uppercase();
        self.overlay.get(&key).cloned().or_else(|| self.base.get_table(&key))
    }

    fn get_indexes(&self, table: &str) -> Vec<Arc<BTreeIndex>> {
        let key = table.to_ascii_uppercase();
        if self.overlay.contains_key(&key) {
            // A temporary shadows the base table — its indexes with it.
            Vec::new()
        } else {
            self.base.get_indexes(&key)
        }
    }

    fn table_generation(&self, table: &str) -> Option<u64> {
        let key = table.to_ascii_uppercase();
        if self.overlay.contains_key(&key) {
            // Per-query temporaries have no cross-query identity.
            None
        } else {
            self.base.table_generation(&key)
        }
    }

    fn cache_epoch(&self) -> u64 {
        self.base.cache_epoch()
    }

    fn note_index_probes(&self, table: &str, probes: u64) {
        // Shadowed temps expose no indexes, so probes can only concern
        // base tables — forward unconditionally.
        self.base.note_index_probes(table, probes)
    }
}

/// A simple in-memory provider: a map from table name to heap file.
/// The standalone provider used by tests, examples, and the benchmark
/// harness; `nsql-db`'s catalog supersedes it for full databases.
#[derive(Default)]
pub struct MemoryProvider {
    tables: std::collections::HashMap<String, HeapFile>,
}

impl MemoryProvider {
    /// Empty provider.
    pub fn new() -> MemoryProvider {
        MemoryProvider::default()
    }

    /// Register a table.
    pub fn register(&mut self, name: impl Into<String>, file: HeapFile) {
        self.tables.insert(name.into().to_ascii_uppercase(), file);
    }
}

impl TableProvider for MemoryProvider {
    fn get_table(&self, table: &str) -> Option<HeapFile> {
        self.tables.get(&table.to_ascii_uppercase()).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_storage::{HeapFile, Storage};
    use nsql_types::{Column, ColumnType, Schema, Tuple, Value};
    use std::collections::HashMap;

    pub struct MapProvider(pub HashMap<String, HeapFile>);

    impl TableProvider for MapProvider {
        fn get_table(&self, table: &str) -> Option<HeapFile> {
            self.0.get(&table.to_ascii_uppercase()).cloned()
        }
    }

    fn file(st: &Storage, n: i64) -> HeapFile {
        HeapFile::from_tuples(
            st,
            Schema::new(vec![Column::qualified("T", "A", ColumnType::Int)]),
            (0..n).map(|i| Tuple::new(vec![Value::Int(i)])),
        )
    }

    #[test]
    fn overlay_shadows_base() {
        let st = Storage::with_defaults();
        let base_file = file(&st, 3);
        let temp_file = file(&st, 7);
        let mut base = HashMap::new();
        base.insert("T".to_string(), base_file);
        let base = MapProvider(base);
        let mut overlay = OverlayProvider::new(&base);
        assert_eq!(overlay.get_table("t").unwrap().tuple_count(), 3);
        overlay.register("T", temp_file);
        assert_eq!(overlay.get_table("T").unwrap().tuple_count(), 7);
        assert!(overlay.get_table("MISSING").is_none());
    }
}
