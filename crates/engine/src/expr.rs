//! Compiled scalar expressions: column references resolved to tuple field
//! indices against a fixed schema.

use crate::error::EngineError;
use crate::Result;
use nsql_sql::{ColumnRef, Operand, ScalarExpr};
use nsql_types::{Schema, Tuple, Value};

/// A compiled scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Tuple field by index.
    Col(usize),
    /// Constant.
    Lit(Value),
}

impl CExpr {
    /// Evaluate against a tuple.
    pub fn eval<'t>(&'t self, tuple: &'t Tuple) -> &'t Value {
        match self {
            CExpr::Col(i) => tuple.get(*i),
            CExpr::Lit(v) => v,
        }
    }

    /// Compile a column reference against `schema`.
    pub fn compile_column(schema: &Schema, c: &ColumnRef) -> Result<CExpr> {
        let idx = schema.resolve(c.table.as_deref(), &c.column)?;
        Ok(CExpr::Col(idx))
    }

    /// Compile an AST operand. Subquery operands are rejected — they must
    /// have been evaluated (nested iteration) or transformed away before
    /// physical compilation.
    pub fn compile_operand(schema: &Schema, o: &Operand) -> Result<CExpr> {
        match o {
            Operand::Column(c) => CExpr::compile_column(schema, c),
            Operand::Literal(v) => Ok(CExpr::Lit(v.clone())),
            Operand::Subquery(_) => Err(EngineError::Unsupported(
                "subquery operand in physical expression (transform it away first)".into(),
            )),
        }
    }

    /// Compile a SELECT-list scalar (no aggregates at this layer).
    pub fn compile_scalar(schema: &Schema, e: &ScalarExpr) -> Result<CExpr> {
        match e {
            ScalarExpr::Column(c) => CExpr::compile_column(schema, c),
            ScalarExpr::Literal(v) => Ok(CExpr::Lit(v.clone())),
            ScalarExpr::Aggregate(..) => Err(EngineError::Unsupported(
                "aggregate in scalar position (use the aggregate operator)".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "B", ColumnType::Str),
        ])
    }

    #[test]
    fn compiles_and_evaluates_columns() {
        let s = schema();
        let e = CExpr::compile_column(&s, &ColumnRef::qualified("T", "B")).unwrap();
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(e.eval(&t), &Value::str("x"));
    }

    #[test]
    fn rejects_subquery_operand() {
        let s = schema();
        let q = nsql_sql::parse_query("SELECT A FROM T").unwrap();
        let o = Operand::Subquery(Box::new(q));
        assert!(matches!(
            CExpr::compile_operand(&s, &o),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn literal_evaluates_to_itself() {
        let e = CExpr::Lit(Value::Int(9));
        let t = Tuple::new(vec![]);
        assert_eq!(e.eval(&t), &Value::Int(9));
    }
}
