//! Compiled scalar expressions: column references resolved to tuple field
//! indices against a fixed schema.

use crate::error::EngineError;
use crate::Result;
use nsql_sql::{ColumnRef, Operand, ScalarExpr};
use nsql_types::{Schema, Tuple, Value};

/// A compiled scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Tuple field by index.
    Col(usize),
    /// Constant.
    Lit(Value),
}

/// Field access for expression evaluation: either a real tuple, or a
/// virtual concatenation of two tuples (a join candidate) that is never
/// materialized. Join operators evaluate residual/ON predicates through
/// [`Joined`] so that candidate pairs which fail the predicate cost no
/// allocation at all.
pub trait Row {
    /// The value at field `i` of the (possibly virtual) row.
    fn field(&self, i: usize) -> &Value;
}

impl Row for Tuple {
    fn field(&self, i: usize) -> &Value {
        self.get(i)
    }
}

/// A join candidate `left ++ right`, evaluated in place.
pub struct Joined<'a> {
    left: &'a Tuple,
    right: &'a Tuple,
    split: usize,
}

impl<'a> Joined<'a> {
    /// View `left ++ right` as one row without concatenating.
    pub fn new(left: &'a Tuple, right: &'a Tuple) -> Joined<'a> {
        Joined { left, right, split: left.arity() }
    }
}

impl Row for Joined<'_> {
    fn field(&self, i: usize) -> &Value {
        if i < self.split {
            self.left.get(i)
        } else {
            self.right.get(i - self.split)
        }
    }
}

impl CExpr {
    /// Evaluate against a tuple.
    pub fn eval<'t>(&'t self, tuple: &'t Tuple) -> &'t Value {
        self.eval_row(tuple)
    }

    /// Evaluate against any [`Row`] (tuple or virtual join pair).
    pub fn eval_row<'t, R: Row>(&'t self, row: &'t R) -> &'t Value {
        match self {
            CExpr::Col(i) => row.field(*i),
            CExpr::Lit(v) => v,
        }
    }

    /// Compile a column reference against `schema`.
    pub fn compile_column(schema: &Schema, c: &ColumnRef) -> Result<CExpr> {
        let idx = schema.resolve(c.table.as_deref(), &c.column)?;
        Ok(CExpr::Col(idx))
    }

    /// Compile an AST operand. Subquery operands are rejected — they must
    /// have been evaluated (nested iteration) or transformed away before
    /// physical compilation.
    pub fn compile_operand(schema: &Schema, o: &Operand) -> Result<CExpr> {
        match o {
            Operand::Column(c) => CExpr::compile_column(schema, c),
            Operand::Literal(v) => Ok(CExpr::Lit(v.clone())),
            Operand::Subquery(_) => Err(EngineError::Unsupported(
                "subquery operand in physical expression (transform it away first)".into(),
            )),
        }
    }

    /// Compile a SELECT-list scalar (no aggregates at this layer).
    pub fn compile_scalar(schema: &Schema, e: &ScalarExpr) -> Result<CExpr> {
        match e {
            ScalarExpr::Column(c) => CExpr::compile_column(schema, c),
            ScalarExpr::Literal(v) => Ok(CExpr::Lit(v.clone())),
            ScalarExpr::Aggregate(..) => Err(EngineError::Unsupported(
                "aggregate in scalar position (use the aggregate operator)".into(),
            )),
        }
    }
}

/// A compiled projection list with a per-position move/clone plan.
///
/// Evaluating `[CExpr]` naively clones every projected value out of every
/// input tuple. Most projections reference each input column at most once,
/// so when the input tuple is *owned* the value can be moved out instead.
/// `Projector` precomputes, per output position, whether it holds the last
/// reference to its source column (move) or an earlier one (clone); literals
/// are always cloned.
#[derive(Debug, Clone)]
pub struct Projector {
    steps: Vec<Step>,
}

#[derive(Debug, Clone)]
enum Step {
    /// Emit a constant.
    Lit(Value),
    /// Copy column `i` (referenced again later in the list).
    Clone(usize),
    /// Take column `i` (its last reference; valid only on owned input).
    Move(usize),
}

impl Projector {
    /// Plan a projection for `exprs`.
    pub fn new(exprs: &[CExpr]) -> Projector {
        let mut steps: Vec<Step> = exprs
            .iter()
            .map(|e| match e {
                CExpr::Lit(v) => Step::Lit(v.clone()),
                CExpr::Col(i) => Step::Clone(*i),
            })
            .collect();
        // Walk backwards; the first (rightmost) reference to each column
        // becomes a move.
        let mut moved = std::collections::HashSet::new();
        for step in steps.iter_mut().rev() {
            if let Step::Clone(i) = *step {
                if moved.insert(i) {
                    *step = Step::Move(i);
                }
            }
        }
        Projector { steps }
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.steps.len()
    }

    /// Project an owned tuple, moving each value out on its last use.
    pub fn apply(&self, tuple: Tuple) -> Tuple {
        let mut vals = tuple.into_values();
        self.steps
            .iter()
            .map(|s| match s {
                Step::Lit(v) => v.clone(),
                Step::Clone(i) => vals[*i].clone(),
                Step::Move(i) => std::mem::replace(&mut vals[*i], Value::Null),
            })
            .collect()
    }

    /// Project a borrowed tuple, cloning only the projected columns.
    pub fn apply_ref(&self, tuple: &Tuple) -> Tuple {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Lit(v) => v.clone(),
                Step::Clone(i) | Step::Move(i) => tuple.get(*i).clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "B", ColumnType::Str),
        ])
    }

    #[test]
    fn compiles_and_evaluates_columns() {
        let s = schema();
        let e = CExpr::compile_column(&s, &ColumnRef::qualified("T", "B")).unwrap();
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(e.eval(&t), &Value::str("x"));
    }

    #[test]
    fn rejects_subquery_operand() {
        let s = schema();
        let q = nsql_sql::parse_query("SELECT A FROM T").unwrap();
        let o = Operand::Subquery(Box::new(q));
        assert!(matches!(
            CExpr::compile_operand(&s, &o),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn literal_evaluates_to_itself() {
        let e = CExpr::Lit(Value::Int(9));
        let t = Tuple::new(vec![]);
        assert_eq!(e.eval(&t), &Value::Int(9));
    }

    #[test]
    fn projector_matches_naive_eval_with_repeated_columns() {
        // Column 0 referenced twice: first use must clone, last may move.
        let exprs = [CExpr::Col(0), CExpr::Lit(Value::Int(7)), CExpr::Col(1), CExpr::Col(0)];
        let p = Projector::new(&exprs);
        let t = Tuple::new(vec![Value::str("left"), Value::Int(2)]);
        let want: Tuple = exprs.iter().map(|e| e.eval(&t).clone()).collect();
        assert_eq!(p.apply_ref(&t), want);
        assert_eq!(p.apply(t), want);
        assert_eq!(p.arity(), 4);
    }

    #[test]
    fn projector_handles_empty_and_literal_only_lists() {
        let p = Projector::new(&[]);
        assert_eq!(p.apply(Tuple::new(vec![Value::Int(1)])), Tuple::new(vec![]));
        let p = Projector::new(&[CExpr::Lit(Value::Null)]);
        assert_eq!(p.apply_ref(&Tuple::new(vec![])), Tuple::new(vec![Value::Null]));
    }
}
