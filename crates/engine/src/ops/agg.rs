//! Sort-based grouped aggregation (`GROUP BY`).

use super::Exec;
use crate::aggregate::AggState;
use crate::error::EngineError;
use crate::Result;
use nsql_sql::AggFunc;
use nsql_storage::sort::SortKey;
use nsql_storage::HeapFile;
use nsql_types::{Relation, Schema, Tuple, Value};
use nsql_vec::{Batch, ValRef};

/// One aggregate to compute: function plus input field index (`None` for
/// `COUNT(*)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input field, or `None` for `COUNT(*)`.
    pub arg: Option<usize>,
}

impl AggSpec {
    /// `AGG(field)`.
    pub fn on(func: AggFunc, field: usize) -> AggSpec {
        AggSpec { func, arg: Some(field) }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> AggSpec {
        AggSpec { func: AggFunc::Count, arg: None }
    }
}

impl Exec {
    /// GROUP BY `group` computing `aggs`, producing `out_schema` =
    /// (group columns ++ aggregate columns).
    ///
    /// Sort-based: the input is externally sorted on the group columns
    /// unless `presorted` — NEST-JA2 exploits this by creating `Rt4` "in
    /// GROUP BY column order, so it does not have to be sorted" (§7.4).
    ///
    /// With an empty `group` list this is a global aggregate and produces
    /// exactly one row even on empty input (`COUNT` → 0, others → `NULL`) —
    /// SQL's scalar-aggregate rule, load-bearing for the COUNT bug.
    pub fn group_aggregate(
        &self,
        input: &HeapFile,
        group: &[usize],
        aggs: &[AggSpec],
        out_schema: Schema,
        presorted: bool,
    ) -> Result<HeapFile> {
        let tuples = self.group_aggregate_tuples(input, group, aggs, &out_schema, presorted)?;
        Ok(HeapFile::from_tuples(&self.storage, out_schema, tuples))
    }

    /// Grouped aggregation delivered in memory (final operator).
    pub fn group_aggregate_collect(
        &self,
        input: &HeapFile,
        group: &[usize],
        aggs: &[AggSpec],
        out_schema: Schema,
        presorted: bool,
    ) -> Result<Relation> {
        let tuples = self.group_aggregate_tuples(input, group, aggs, &out_schema, presorted)?;
        Relation::new(out_schema, tuples).map_err(EngineError::from)
    }

    fn group_aggregate_tuples(
        &self,
        input: &HeapFile,
        group: &[usize],
        aggs: &[AggSpec],
        out_schema: &Schema,
        presorted: bool,
    ) -> Result<Vec<Tuple>> {
        if out_schema.arity() != group.len() + aggs.len() {
            return Err(EngineError::Internal(format!(
                "aggregate schema arity {} != {} group + {} agg columns",
                out_schema.arity(),
                group.len(),
                aggs.len()
            )));
        }
        let (file, is_temp) = if presorted || group.is_empty() {
            (input.clone(), false)
        } else {
            let keys: Vec<SortKey> = group.iter().map(|&i| SortKey::asc(i)).collect();
            (self.sort(input, &keys, false), true)
        };

        // A key's accumulated states; morsel folds produce ordered lists
        // of these ("runs") that touch only at morsel boundaries.
        type Run = (Tuple, Vec<AggState>);

        let mut out = Vec::new();
        let flush =
            |key: &Option<Tuple>, states: &[AggState], out: &mut Vec<Tuple>| {
                if let Some(k) = key {
                    let mut vals: Vec<Value> = k.values().to_vec();
                    vals.extend(states.iter().map(AggState::finish));
                    out.push(Tuple::new(vals));
                }
            };
        if self.threads > 1 && file.page_count() > 1 {
            // Parallel fold: each morsel folds its pages into an ordered run
            // list with exactly the serial contiguous-run logic; runs touch
            // only at morsel boundaries, where a key match merges the two
            // accumulator halves via `AggState::merge`. Works for any input
            // order and reproduces the serial output bit-for-bit: every
            // accumulator (including float SUM/AVG, which keeps an exact
            // partials expansion) merges exactly.
            let partials: Vec<Result<Vec<Run>>> =
                crate::par::par_map_pages(
                    &self.storage,
                    file.page_ids(),
                    self.threads,
                    self.current_op().as_deref(),
                    |_m, pages| {
                    let mut runs: Vec<Run> = Vec::new();
                    for page in pages {
                        for t in page.tuples() {
                            let same_group = runs.last().is_some_and(|(k, _)| {
                                group.iter().enumerate().all(|(j, &i)| k.get(j) == t.get(i))
                            });
                            if !same_group {
                                runs.push((
                                    t.project(group),
                                    aggs.iter().map(|a| AggState::new(a.func)).collect(),
                                ));
                            }
                            let states = &mut runs.last_mut().expect("just pushed").1;
                            for (state, spec) in states.iter_mut().zip(aggs) {
                                match spec.arg {
                                    Some(i) => state.accumulate(t.get(i))?,
                                    None => state.accumulate_row(),
                                }
                            }
                        }
                    }
                        Ok(runs)
                    },
                );
            let mut merged: Vec<Run> = Vec::new();
            let mut first_err = None;
            for partial in partials {
                match partial {
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Ok(runs) => {
                        for (k, states) in runs {
                            match merged.last_mut() {
                                Some((lk, lstates)) if *lk == k => {
                                    for (a, b) in lstates.iter_mut().zip(&states) {
                                        a.merge(b)?;
                                    }
                                }
                                _ => merged.push((k, states)),
                            }
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                if is_temp {
                    file.drop_pages(&self.storage);
                }
                return Err(e);
            }
            for (k, states) in merged {
                flush(&Some(k), &states, &mut out);
            }
        } else if self.vectorized() {
            // Vectorized serial fold: each page pivots into a batch once and
            // the group boundary test runs on typed column lanes
            // (`ValRef::total_eq`, the mirror of the row path's `Value`
            // equality); Int/Float inputs accumulate through the typed
            // `AggState` entry points without building a `Value` per row.
            // Page reads, group contents, and every accumulated state are
            // identical to the row fold — only the in-memory evaluation
            // changes. (The parallel fold stays on the row path; see the
            // fallback matrix in DESIGN.md.)
            let op = self.current_op();
            if let Some(op) = &op {
                op.vectorized.store(1, std::sync::atomic::Ordering::Relaxed);
            }
            let mut current_key: Option<Tuple> = None;
            let mut states: Vec<AggState> = Vec::new();
            let mut fold = || -> Result<()> {
                for &pid in file.page_ids() {
                    let page = self.storage.read_page(pid);
                    let b = Batch::from_tuples(page.tuples());
                    if let Some(op) = &op {
                        op.batches.add(0, 1);
                        op.rows_in.add(0, b.len() as u64);
                    }
                    for row in 0..b.len() {
                        let same_group = if row > 0 {
                            // Within a batch the current group's key is the
                            // previous row's key.
                            group
                                .iter()
                                .all(|&i| b.col(i).val_ref(row).total_eq(b.col(i).val_ref(row - 1)))
                        } else {
                            current_key.as_ref().is_some_and(|k| {
                                group.iter().enumerate().all(|(j, &i)| {
                                    ValRef::of(k.get(j)).total_eq(b.col(i).val_ref(row))
                                })
                            })
                        };
                        if !same_group {
                            flush(&current_key, &states, &mut out);
                            current_key = Some(Tuple::new(
                                group.iter().map(|&i| b.value(i, row)).collect(),
                            ));
                            states = aggs.iter().map(|a| AggState::new(a.func)).collect();
                        }
                        for (state, spec) in states.iter_mut().zip(aggs) {
                            match spec.arg {
                                Some(i) => match b.col(i).val_ref(row) {
                                    ValRef::Null => {}
                                    ValRef::Int(x) => state.accumulate_int(x)?,
                                    ValRef::Float(x) => state.accumulate_float(x)?,
                                    v => state.accumulate(&v.to_value())?,
                                },
                                None => state.accumulate_row(),
                            }
                        }
                    }
                }
                Ok(())
            };
            // Error propagation mirrors the row fold's `try_for_each(..)?`:
            // stop at the erroring row, before any later page is read.
            fold()?;
            flush(&current_key, &states, &mut out);
        } else {
            let mut current_key: Option<Tuple> = None;
            let mut states: Vec<AggState> = Vec::new();
            // Fold tuples in place on their buffered pages: the group key is
            // compared field-by-field against the current key and only
            // projected out when the group actually changes, so steady-state
            // rows cost no allocation at all.
            file.try_for_each(&self.storage, |t: &Tuple| -> Result<()> {
                let same_group = current_key
                    .as_ref()
                    .is_some_and(|k| group.iter().enumerate().all(|(j, &i)| k.get(j) == t.get(i)));
                if !same_group {
                    flush(&current_key, &states, &mut out);
                    current_key = Some(t.project(group));
                    states = aggs.iter().map(|a| AggState::new(a.func)).collect();
                }
                for (state, spec) in states.iter_mut().zip(aggs) {
                    match spec.arg {
                        Some(i) => state.accumulate(t.get(i))?,
                        None => state.accumulate_row(),
                    }
                }
                Ok(())
            })?;
            flush(&current_key, &states, &mut out);
        }

        // Global aggregate over an empty input still yields one row.
        if group.is_empty() && out.is_empty() {
            let vals: Vec<Value> =
                aggs.iter().map(|a| AggState::new(a.func).finish()).collect();
            out.push(Tuple::new(vals));
        }
        if is_temp {
            file.drop_pages(&self.storage);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use nsql_storage::Storage;
    use nsql_types::{Column, ColumnType};

    fn exec() -> Exec {
        Exec::new(Storage::with_defaults())
    }

    fn out_schema(n_group: usize, n_agg: usize) -> Schema {
        let mut cols: Vec<Column> =
            (0..n_group).map(|i| Column::new(format!("G{i}"), ColumnType::Int)).collect();
        cols.extend((0..n_agg).map(|i| Column::new(format!("A{i}"), ColumnType::Int)));
        Schema::new(cols)
    }

    #[test]
    fn groups_and_counts() {
        let e = exec();
        let f = int_file(
            e.storage(),
            "T",
            &["K", "V"],
            &[&[2, 10], &[1, 5], &[2, 20], &[1, 7], &[3, 0]],
        );
        let out = e
            .group_aggregate(
                &f,
                &[0],
                &[AggSpec::on(AggFunc::Count, 1), AggSpec::on(AggFunc::Sum, 1)],
                out_schema(1, 2),
                false,
            )
            .unwrap();
        let mut rows = rows_of(e.storage(), &out);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Some(1), Some(2), Some(12)],
                vec![Some(2), Some(2), Some(30)],
                vec![Some(3), Some(1), Some(0)]
            ]
        );
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["K", "V"], &[]);
        let out = e
            .group_aggregate(
                &f,
                &[],
                &[AggSpec::on(AggFunc::Count, 1), AggSpec::on(AggFunc::Max, 1)],
                out_schema(0, 2),
                false,
            )
            .unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(0), None]]);
    }

    #[test]
    fn grouped_aggregate_on_empty_input_yields_no_rows() {
        // The difference that creates the COUNT bug: with GROUP BY, empty
        // groups simply do not exist.
        let e = exec();
        let f = int_file(e.storage(), "T", &["K", "V"], &[]);
        let out = e
            .group_aggregate(&f, &[0], &[AggSpec::on(AggFunc::Count, 1)], out_schema(1, 1), false)
            .unwrap();
        assert_eq!(out.tuple_count(), 0);
    }

    #[test]
    fn count_star_vs_count_column_on_nulls() {
        let e = exec();
        let st = e.storage().clone();
        let schema = Schema::new(vec![
            Column::qualified("T", "K", ColumnType::Int),
            Column::qualified("T", "V", ColumnType::Int),
        ]);
        let f = HeapFile::from_tuples(
            &st,
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::Null]),
                Tuple::new(vec![Value::Int(1), Value::Int(9)]),
            ],
        );
        let out = e
            .group_aggregate(
                &f,
                &[0],
                &[AggSpec::count_star(), AggSpec::on(AggFunc::Count, 1)],
                out_schema(1, 2),
                false,
            )
            .unwrap();
        // COUNT(*) = 2 but COUNT(V) = 1 — Section 5.2.1's distinction.
        assert_eq!(rows_of(&st, &out), vec![vec![Some(1), Some(2), Some(1)]]);
    }

    #[test]
    fn presorted_input_skips_sort() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["K", "V"], &[&[1, 1], &[1, 2], &[2, 3]]);
        e.storage().reset_stats();
        let before = e.storage().io_stats();
        let out = e
            .group_aggregate(&f, &[0], &[AggSpec::on(AggFunc::Max, 1)], out_schema(1, 1), true)
            .unwrap();
        let used = e.storage().io_stats().since(&before);
        assert_eq!(used.reads, f.page_count() as u64);
        let mut rows = rows_of(e.storage(), &out);
        rows.sort();
        assert_eq!(rows, vec![vec![Some(1), Some(2)], vec![Some(2), Some(3)]]);
    }

    #[test]
    fn nulls_group_together() {
        let e = exec();
        let st = e.storage().clone();
        let schema = Schema::new(vec![
            Column::qualified("T", "K", ColumnType::Int),
            Column::qualified("T", "V", ColumnType::Int),
        ]);
        let f = HeapFile::from_tuples(
            &st,
            schema,
            vec![
                Tuple::new(vec![Value::Null, Value::Int(1)]),
                Tuple::new(vec![Value::Null, Value::Int(2)]),
                Tuple::new(vec![Value::Int(1), Value::Int(3)]),
            ],
        );
        let out = e
            .group_aggregate(&f, &[0], &[AggSpec::on(AggFunc::Sum, 1)], out_schema(1, 1), false)
            .unwrap();
        let mut rows = rows_of(&st, &out);
        rows.sort();
        assert_eq!(rows, vec![vec![None, Some(3)], vec![Some(1), Some(3)]]);
    }

    use nsql_types::{Tuple, Value};

    #[test]
    fn vectorized_fold_matches_row_fold_bit_for_bit() {
        // Mixed-magnitude floats, NULLs, NULL group keys, duplicates: the
        // vectorized serial fold must agree with the row fold on rows,
        // order, float bits, and counted I/O.
        let schema = Schema::new(vec![
            Column::qualified("T", "K", ColumnType::Int),
            Column::qualified("T", "V", ColumnType::Float),
        ]);
        let rows: Vec<Tuple> = (0..400)
            .map(|i| {
                let k = if i % 13 == 0 { Value::Null } else { Value::Int(i % 6) };
                let v = match i % 5 {
                    0 => Value::Null,
                    1 => Value::Float(1e16),
                    2 => Value::Float(0.1),
                    3 => Value::Float(-1e16),
                    _ => Value::Float(i as f64 * 1e-9),
                };
                Tuple::new(vec![k, v])
            })
            .collect();
        let run = |vectorized: bool| {
            let e = Exec::new(Storage::new(4, 128)).with_vectorized(vectorized);
            let f = HeapFile::from_tuples(e.storage(), schema.clone(), rows.clone());
            e.storage().clear_buffer();
            e.storage().reset_stats();
            let out = e
                .group_aggregate(
                    &f,
                    &[0],
                    &[
                        AggSpec::on(AggFunc::Sum, 1),
                        AggSpec::on(AggFunc::Avg, 1),
                        AggSpec::on(AggFunc::Count, 1),
                        AggSpec::on(AggFunc::Max, 1),
                        AggSpec::count_star(),
                    ],
                    out_schema(1, 5),
                    false,
                )
                .unwrap();
            let tuples: Vec<Tuple> = out.scan(e.storage()).collect();
            (tuples, e.storage().io_stats())
        };
        let (row_rows, row_io) = run(false);
        let (vec_rows, vec_io) = run(true);
        assert_eq!(row_rows.len(), vec_rows.len());
        for (a, b) in row_rows.iter().zip(&vec_rows) {
            for (x, y) in a.values().iter().zip(b.values()) {
                match (x, y) {
                    (Value::Float(p), Value::Float(q)) => assert_eq!(p.to_bits(), q.to_bits()),
                    _ => assert_eq!(x, y),
                }
            }
        }
        assert_eq!(row_io, vec_io);
    }

    #[test]
    fn vectorized_fold_handles_string_and_mixed_columns() {
        // Min/Max over strings exercise the generic (to_value) lane.
        let e = Exec::new(Storage::with_defaults()).with_vectorized(true);
        let st = e.storage().clone();
        let schema = Schema::new(vec![
            Column::qualified("T", "K", ColumnType::Int),
            Column::qualified("T", "S", ColumnType::Str),
        ]);
        let f = HeapFile::from_tuples(
            &st,
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::str("b")]),
                Tuple::new(vec![Value::Int(1), Value::str("a")]),
                Tuple::new(vec![Value::Int(2), Value::Null]),
            ],
        );
        let out_schema = Schema::new(vec![
            Column::new("K", ColumnType::Int),
            Column::new("M", ColumnType::Str),
        ]);
        let out = e
            .group_aggregate(&f, &[0], &[AggSpec::on(AggFunc::Min, 1)], out_schema, false)
            .unwrap();
        let rows: Vec<Tuple> = out.scan(&st).collect();
        assert_eq!(
            rows,
            vec![
                Tuple::new(vec![Value::Int(1), Value::str("a")]),
                Tuple::new(vec![Value::Int(2), Value::Null]),
            ]
        );
    }
}
