//! Join operators: nested-loop and sort-merge, inner and left outer.

use super::{Exec, JoinKind};
use crate::expr::Joined;
use crate::pred::CPred;
use crate::Result;
use nsql_storage::sort::SortKey;
use nsql_storage::HeapFile;
use nsql_types::{Relation, Tuple};
use std::cmp::Ordering;

impl Exec {
    /// Nested-loop join: for each left tuple, rescan the right file and
    /// emit combinations accepted by `on` (a predicate over the
    /// concatenated schema).
    ///
    /// The right file is re-read through the buffer pool per left tuple —
    /// cheap when it fits in the buffer, thrashing when it does not. That
    /// is exactly the cost cliff of System R's nested iteration that the
    /// paper's Section 7.2 analyses.
    pub fn nl_join(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        on: &CPred,
        kind: JoinKind,
    ) -> Result<HeapFile> {
        let schema = left.schema().join(right.schema());
        let tuples = self.nl_join_tuples(left, right, on, kind)?;
        Ok(HeapFile::from_tuples(&self.storage, schema, tuples))
    }

    /// Nested-loop join delivering the result in memory (final operator).
    pub fn nl_join_collect(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        on: &CPred,
        kind: JoinKind,
    ) -> Result<Relation> {
        let schema = left.schema().join(right.schema());
        let tuples = self.nl_join_tuples(left, right, on, kind)?;
        Relation::new(schema, tuples).map_err(crate::EngineError::from)
    }

    fn nl_join_tuples(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        on: &CPred,
        kind: JoinKind,
    ) -> Result<Vec<Tuple>> {
        let right_arity = right.schema().arity();
        let mut out = Vec::new();
        for lt in left.scan(&self.storage) {
            let mut matched = false;
            // The ON predicate is evaluated on the virtual pair; the
            // concatenated tuple is only built for pairs that pass, and
            // right tuples are never cloned off their buffered page. The
            // rescan of `right` per left tuple (through the buffer pool)
            // is unchanged — that cost cliff is the paper's subject.
            let mut err = None;
            for combined in right.scan_with(&self.storage, |rt| {
                match on.accepts_row(&Joined::new(&lt, rt)) {
                    Ok(true) => Some(lt.join(rt)),
                    Ok(false) => None,
                    Err(e) => {
                        if err.is_none() {
                            err = Some(e);
                        }
                        None
                    }
                }
            }) {
                matched = true;
                out.push(combined);
            }
            if let Some(e) = err {
                return Err(e);
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push(lt.join_nulls(right_arity));
            }
        }
        Ok(out)
    }

    /// Sort-merge equi-join on `left_keys` = `right_keys` (positionally
    /// paired), with an optional residual predicate over the concatenated
    /// schema.
    ///
    /// Inputs are sorted first unless the corresponding `presorted` flag is
    /// set (the paper's NEST-JA2 exploits exactly these "already in join
    /// column order" savings — Section 7.4). For [`JoinKind::LeftOuter`],
    /// unmatched left tuples are emitted `NULL`-padded; as the paper notes
    /// (Section 7.2), the merge outer join costs the same as the standard
    /// merge join since both relations are scanned in sorted order.
    #[allow(clippy::too_many_arguments)]
    pub fn merge_join(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
        left_presorted: bool,
        right_presorted: bool,
    ) -> Result<HeapFile> {
        let schema = left.schema().join(right.schema());
        let tuples = self.merge_join_tuples(
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            left_presorted,
            right_presorted,
        )?;
        Ok(HeapFile::from_tuples(&self.storage, schema, tuples))
    }

    /// Sort-merge join delivering the result in memory (final operator).
    #[allow(clippy::too_many_arguments)]
    pub fn merge_join_collect(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
        left_presorted: bool,
        right_presorted: bool,
    ) -> Result<Relation> {
        let schema = left.schema().join(right.schema());
        let tuples = self.merge_join_tuples(
            left,
            right,
            left_keys,
            right_keys,
            residual,
            kind,
            left_presorted,
            right_presorted,
        )?;
        Relation::new(schema, tuples).map_err(crate::EngineError::from)
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_join_tuples(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
        left_presorted: bool,
        right_presorted: bool,
    ) -> Result<Vec<Tuple>> {
        assert_eq!(left_keys.len(), right_keys.len(), "key lists must pair up");
        let lsort: Vec<SortKey> = left_keys.iter().map(|&i| SortKey::asc(i)).collect();
        let rsort: Vec<SortKey> = right_keys.iter().map(|&i| SortKey::asc(i)).collect();
        let (lfile, l_temp) = if left_presorted {
            (left.clone(), false)
        } else {
            (self.sort(left, &lsort, false), true)
        };
        let (rfile, r_temp) = if right_presorted {
            (right.clone(), false)
        } else {
            (self.sort(right, &rsort, false), true)
        };

        let right_arity = right.schema().arity();
        let mut out = Vec::new();
        let liter = lfile.scan(&self.storage).peekable();
        // Decorate–merge: extract each right tuple's key exactly once as it
        // comes off the scan, instead of re-projecting on every comparison.
        let mut riter = rfile
            .scan(&self.storage)
            .map(|rt| (rt.project(right_keys), rt))
            .peekable();
        // Current right group: consecutive right tuples sharing a key.
        let mut group: Vec<Tuple> = Vec::new();
        let mut group_key: Option<Tuple> = None;

        for lt in liter {
            // Advance the right side until its key >= left key, refreshing
            // the buffered group when we land on equality.
            let lkey = lt.project(left_keys);
            let need_new_group = match &group_key {
                Some(k) => k.total_cmp(&lkey) != Ordering::Equal,
                None => true,
            };
            if need_new_group {
                // Skip right tuples with smaller keys.
                while let Some((rkey, _)) = riter.peek() {
                    if rkey.total_cmp(&lkey) == Ordering::Less {
                        riter.next();
                    } else {
                        break;
                    }
                }
                group.clear();
                group_key = None;
                if riter
                    .peek()
                    .is_some_and(|(rkey, _)| rkey.total_cmp(&lkey) == Ordering::Equal)
                {
                    group_key = Some(lkey.clone());
                    while let Some((rkey, _)) = riter.peek() {
                        if rkey.total_cmp(&lkey) == Ordering::Equal {
                            group.push(riter.next().expect("peek just returned Some").1);
                        } else {
                            break;
                        }
                    }
                }
            }
            // NULL keys never join (SQL equality is unknown on NULL).
            let key_has_null = lkey.values().iter().any(nsql_types::Value::is_null);
            let mut matched = false;
            if !key_has_null
                && group_key.as_ref().is_some_and(|k| k.total_cmp(&lkey) == Ordering::Equal)
            {
                for rt in &group {
                    let ok = match residual {
                        Some(p) => p.accepts_row(&Joined::new(&lt, rt))?,
                        None => true,
                    };
                    if ok {
                        matched = true;
                        out.push(lt.join(rt));
                    }
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push(lt.join_nulls(right_arity));
            }
        }

        if l_temp {
            lfile.drop_pages(&self.storage);
        }
        if r_temp {
            rfile.drop_pages(&self.storage);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use nsql_storage::Storage;
    use nsql_sql::parse_query;

    fn exec() -> Exec {
        Exec::new(Storage::with_defaults())
    }

    fn on_pred(l: &HeapFile, r: &HeapFile, cond: &str) -> CPred {
        let combined = l.schema().join(r.schema());
        let q = parse_query(&format!("SELECT L.A FROM L, R WHERE {cond}")).unwrap();
        CPred::compile(&combined, q.where_clause.as_ref().unwrap()).unwrap()
    }

    #[test]
    fn nl_inner_join_matches() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &[&[1], &[2], &[3]]);
        let r = int_file(e.storage(), "R", &["B"], &[&[2], &[3], &[3]]);
        let on = on_pred(&l, &r, "L.A = R.B");
        let out = e.nl_join(&l, &r, &on, JoinKind::Inner).unwrap();
        let mut rows = rows_of(e.storage(), &out);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Some(2), Some(2)],
                vec![Some(3), Some(3)],
                vec![Some(3), Some(3)]
            ]
        );
    }

    #[test]
    fn nl_left_outer_pads_unmatched() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &[&[1], &[2]]);
        let r = int_file(e.storage(), "R", &["B"], &[&[2]]);
        let on = on_pred(&l, &r, "L.A = R.B");
        let out = e.nl_join(&l, &r, &on, JoinKind::LeftOuter).unwrap();
        let mut rows = rows_of(e.storage(), &out);
        rows.sort();
        assert_eq!(rows, vec![vec![Some(1), None], vec![Some(2), Some(2)]]);
    }

    #[test]
    fn nl_join_supports_inequality() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &[&[1], &[3]]);
        let r = int_file(e.storage(), "R", &["B"], &[&[2]]);
        let on = on_pred(&l, &r, "R.B < L.A");
        let out = e.nl_join(&l, &r, &on, JoinKind::Inner).unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(3), Some(2)]]);
    }

    #[test]
    fn merge_join_equals_nl_join() {
        let e = exec();
        let l = int_file(
            e.storage(),
            "L",
            &["A", "X"],
            &[&[3, 0], &[1, 1], &[2, 2], &[3, 3], &[5, 4]],
        );
        let r = int_file(
            e.storage(),
            "R",
            &["B", "Y"],
            &[&[3, 10], &[3, 11], &[2, 12], &[9, 13]],
        );
        let on = on_pred(&l, &r, "L.A = R.B");
        let nl = e.nl_join(&l, &r, &on, JoinKind::Inner).unwrap();
        let mj = e
            .merge_join(&l, &r, &[0], &[0], None, JoinKind::Inner, false, false)
            .unwrap();
        let a = e.collect(&nl);
        let b = e.collect(&mj);
        assert!(a.same_bag(&b), "\nNL:\n{a}\nMJ:\n{b}");
    }

    #[test]
    fn merge_left_outer_equals_nl_left_outer() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &[&[1], &[2], &[2], &[4]]);
        let r = int_file(e.storage(), "R", &["B"], &[&[2], &[2], &[3]]);
        let on = on_pred(&l, &r, "L.A = R.B");
        let nl = e.nl_join(&l, &r, &on, JoinKind::LeftOuter).unwrap();
        let mj = e
            .merge_join(&l, &r, &[0], &[0], None, JoinKind::LeftOuter, false, false)
            .unwrap();
        assert!(e.collect(&nl).same_bag(&e.collect(&mj)));
    }

    #[test]
    fn merge_join_residual_filters_within_groups() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A", "X"], &[&[1, 5], &[1, 6]]);
        let r = int_file(e.storage(), "R", &["B", "Y"], &[&[1, 5], &[1, 7]]);
        let res = on_pred(&l, &r, "L.X = R.Y");
        let out = e
            .merge_join(&l, &r, &[0], &[0], Some(&res), JoinKind::Inner, false, false)
            .unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(1), Some(5), Some(1), Some(5)]]);
    }

    #[test]
    fn null_keys_never_match_but_outer_pads() {
        let e = exec();
        let st = e.storage().clone();
        let schema = nsql_types::Schema::new(vec![nsql_types::Column::qualified(
            "L",
            "A",
            nsql_types::ColumnType::Int,
        )]);
        let l = HeapFile::from_tuples(
            &st,
            schema,
            vec![
                Tuple::new(vec![nsql_types::Value::Null]),
                Tuple::new(vec![nsql_types::Value::Int(1)]),
            ],
        );
        let r = int_file(&st, "R", &["B"], &[&[1]]);
        let mj = e
            .merge_join(&l, &r, &[0], &[0], None, JoinKind::LeftOuter, false, false)
            .unwrap();
        let mut rows = rows_of(&st, &mj);
        rows.sort();
        assert_eq!(rows, vec![vec![None, None], vec![Some(1), Some(1)]]);
    }

    #[test]
    fn empty_sides() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &[&[1]]);
        let empty = int_file(e.storage(), "R", &["B"], &[]);
        let on = on_pred(&l, &empty, "L.A = R.B");
        let inner = e.nl_join(&l, &empty, &on, JoinKind::Inner).unwrap();
        assert_eq!(inner.tuple_count(), 0);
        let outer = e
            .merge_join(&l, &empty, &[0], &[0], None, JoinKind::LeftOuter, false, false)
            .unwrap();
        assert_eq!(rows_of(e.storage(), &outer), vec![vec![Some(1), None]]);
        let rev = e.nl_join(&empty, &l, &on_pred(&empty, &l, "R.B = L.A"), JoinKind::LeftOuter);
        assert_eq!(rev.unwrap().tuple_count(), 0);
    }

    #[test]
    fn multi_key_merge_join() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A", "B"], &[&[1, 1], &[1, 2], &[2, 1]]);
        let r = int_file(e.storage(), "R", &["C", "D"], &[&[1, 1], &[1, 2], &[2, 2]]);
        let mj = e
            .merge_join(&l, &r, &[0, 1], &[0, 1], None, JoinKind::Inner, false, false)
            .unwrap();
        let mut rows = rows_of(e.storage(), &mj);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Some(1), Some(1), Some(1), Some(1)],
                vec![Some(1), Some(2), Some(1), Some(2)]
            ]
        );
    }

    #[test]
    fn presorted_inputs_skip_sorting_io() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &[&[1], &[2], &[3]]);
        let r = int_file(e.storage(), "R", &["B"], &[&[1], &[2]]);
        e.storage().reset_stats();
        let before = e.storage().io_stats();
        let _ = e
            .merge_join(&l, &r, &[0], &[0], None, JoinKind::Inner, true, true)
            .unwrap();
        let used = e.storage().io_stats().since(&before);
        // Just reads of both files plus writing the (1-page) result.
        assert_eq!(used.reads, (l.page_count() + r.page_count()) as u64);
        assert!(used.writes <= 1);
    }
}
