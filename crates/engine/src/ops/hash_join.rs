//! Hash join — a **modern extension**, not part of the paper.
//!
//! System R (and hence the paper) offered only nested-loop and sort-merge
//! joins; hash joins entered mainstream optimizers later. This operator
//! exists as an ablation point: experiment E13 asks how much of NEST-JA2's
//! advantage survives when the competition gets a better join. The build
//! side is held in memory (no Grace partitioning) — the simulated I/O is
//! one read of each input plus the output write, the best case a real
//! hash join approaches when the build side fits.

use super::{Exec, JoinKind};
use crate::expr::Joined;
use crate::par::par_map_pages;
use crate::pred::CPred;
use crate::Result;
use nsql_storage::HeapFile;
use nsql_types::{FxHashMap, FxHasher, Relation, Tuple};
use nsql_vec::Batch;
use std::hash::Hasher;

impl Exec {
    /// Hash equi-join on positionally-paired keys, with optional residual.
    ///
    /// `NULL` keys never match (SQL equality), but unmatched left tuples
    /// are still padded under [`JoinKind::LeftOuter`].
    #[allow(clippy::too_many_arguments)]
    pub fn hash_join(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
    ) -> Result<HeapFile> {
        let schema = left.schema().join(right.schema());
        let tuples = self.hash_join_tuples(left, right, left_keys, right_keys, residual, kind)?;
        Ok(HeapFile::from_tuples(&self.storage, schema, tuples))
    }

    /// Hash join delivering the result in memory (final operator).
    #[allow(clippy::too_many_arguments)]
    pub fn hash_join_collect(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
    ) -> Result<Relation> {
        let schema = left.schema().join(right.schema());
        let tuples = self.hash_join_tuples(left, right, left_keys, right_keys, residual, kind)?;
        Relation::new(schema, tuples).map_err(crate::EngineError::from)
    }

    fn hash_join_tuples(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
    ) -> Result<Vec<Tuple>> {
        assert_eq!(left_keys.len(), right_keys.len(), "key lists must pair up");
        if self.vectorized {
            return self.hash_join_tuples_vec(left, right, left_keys, right_keys, residual, kind);
        }
        // Observability: build/probe wall-clock lands on the current
        // operator. Instant is only sampled when an operator is attached,
        // so the disabled path stays branch-only.
        let op = self.current_op();
        let op_ref = op.as_deref();
        let build_start = op.as_ref().map(|_| std::time::Instant::now());
        // Build on the right side, under the deterministic fast hasher.
        // Parallel build: each morsel hashes its pages into a private map;
        // maps merge in morsel order, so every key's bucket lists its rows
        // in scan order — exactly the serial build.
        let table: FxHashMap<Tuple, Vec<Tuple>> = if self.threads > 1 && right.page_count() > 1 {
            let partials = par_map_pages(&self.storage, right.page_ids(), self.threads, op_ref, |_m, pages| {
                let mut t: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
                for page in pages {
                    for rt in page.tuples() {
                        if right_keys.iter().any(|&i| rt.get(i).is_null()) {
                            continue; // NULL keys never join
                        }
                        t.entry(rt.project(right_keys)).or_default().push(rt.clone());
                    }
                }
                t
            });
            let mut table: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
            for partial in partials {
                for (k, rows) in partial {
                    table.entry(k).or_default().extend(rows);
                }
            }
            table
        } else {
            let mut table: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
            for rt in right.scan(&self.storage) {
                if right_keys.iter().any(|&i| rt.get(i).is_null()) {
                    continue; // NULL keys never join
                }
                table.entry(rt.project(right_keys)).or_default().push(rt);
            }
            table
        };

        if let (Some(op), Some(t0)) = (&op, build_start) {
            op.build_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        let probe_start = op.as_ref().map(|_| std::time::Instant::now());

        // Probe with the left side.
        let right_arity = right.schema().arity();
        let probe_one = |lt: &Tuple, out: &mut Vec<Tuple>| -> Result<()> {
            let mut matched = false;
            if !left_keys.iter().any(|&i| lt.get(i).is_null()) {
                if let Some(group) = table.get(&lt.project(left_keys)) {
                    for rt in group {
                        let ok = match residual {
                            Some(p) => p.accepts_row(&Joined::new(lt, rt))?,
                            None => true,
                        };
                        if ok {
                            matched = true;
                            out.push(lt.join(rt));
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push(lt.join_nulls(right_arity));
            }
            Ok(())
        };
        if self.threads > 1 && left.page_count() > 1 {
            // Per-morsel probe outputs concatenate in morsel order = serial
            // output order. On a residual error the serial probe stops
            // scanning; parallel morsels in flight still finish (their
            // results are discarded), which can only over-read on the error
            // path — totals on the success path are identical.
            let partials: Vec<Result<Vec<Tuple>>> =
                par_map_pages(&self.storage, left.page_ids(), self.threads, op_ref, |_m, pages| {
                    let mut out = Vec::new();
                    for page in pages {
                        for lt in page.tuples() {
                            probe_one(lt, &mut out)?;
                        }
                    }
                    Ok(out)
                });
            let mut out = Vec::new();
            for partial in partials {
                out.extend(partial?);
            }
            self.finish_probe(&op, probe_start);
            Ok(out)
        } else {
            let mut out = Vec::new();
            for lt in left.scan(&self.storage) {
                probe_one(&lt, &mut out)?;
            }
            self.finish_probe(&op, probe_start);
            Ok(out)
        }
    }

    /// Vectorized build/probe. Same contract as the row implementation —
    /// output order, error behaviour, and counted page I/O are identical —
    /// but both phases work on column batches: join keys hash straight from
    /// typed column lanes into a `u64`-keyed index table (no per-row key
    /// tuple allocation), candidates verify via `ValRef::total_eq` (the
    /// mirror of the row path's `Tuple` key equality, including `NULL` and
    /// `NaN` grouping and Int/Float cross-matching), and tuples materialize
    /// only for rows that reach the residual or the output.
    #[allow(clippy::too_many_arguments)]
    fn hash_join_tuples_vec(
        &self,
        left: &HeapFile,
        right: &HeapFile,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&CPred>,
        kind: JoinKind,
    ) -> Result<Vec<Tuple>> {
        let op = self.current_op();
        let op_ref = op.as_deref();
        if let Some(op) = &op {
            op.vectorized.store(1, std::sync::atomic::Ordering::Relaxed);
        }
        let build_start = op.as_ref().map(|_| std::time::Instant::now());

        // Hash the key columns of one batch row. Internal to this join (both
        // sides use it), built on the same ValRef hash stream as Value.
        let key_hash = |b: &Batch, keys: &[usize], row: usize| -> u64 {
            let mut h = FxHasher::default();
            for &k in keys {
                b.col(k).val_ref(row).hash_value(&mut h);
            }
            h.finish()
        };
        // Index one right batch into `table` as (batch, row) pairs.
        let index_batch =
            |b: &Batch, bi: u32, table: &mut FxHashMap<u64, Vec<(u32, u32)>>| {
                for row in 0..b.len() {
                    if right_keys.iter().any(|&k| b.col(k).val_ref(row).is_null()) {
                        continue; // NULL keys never join
                    }
                    table
                        .entry(key_hash(b, right_keys, row))
                        .or_default()
                        .push((bi, row as u32));
                }
            };

        // Build: batches stay resident (the row build keeps the right side
        // resident in its hash table too); buckets list rows in scan order.
        let mut batches: Vec<Batch> = Vec::with_capacity(right.page_count());
        let mut table: FxHashMap<u64, Vec<(u32, u32)>> = FxHashMap::default();
        if self.threads > 1 && right.page_count() > 1 {
            // Per-morsel private indexes merge in morsel order with the
            // batch offset applied, so bucket order equals scan order.
            let partials = par_map_pages(
                &self.storage,
                right.page_ids(),
                self.threads,
                op_ref,
                |m, pages| {
                    let mut bs: Vec<Batch> = Vec::with_capacity(pages.len());
                    let mut t: FxHashMap<u64, Vec<(u32, u32)>> = FxHashMap::default();
                    for page in pages {
                        let b = Batch::from_tuples(page.tuples());
                        index_batch(&b, bs.len() as u32, &mut t);
                        bs.push(b);
                        if let Some(op) = op_ref {
                            op.batches.add(m, 1);
                        }
                    }
                    (bs, t)
                },
            );
            for (bs, partial) in partials {
                let off = batches.len() as u32;
                for (h, rows) in partial {
                    table
                        .entry(h)
                        .or_default()
                        .extend(rows.into_iter().map(|(bi, r)| (bi + off, r)));
                }
                batches.extend(bs);
            }
        } else {
            for &pid in right.page_ids() {
                let page = self.storage.read_page(pid);
                let b = Batch::from_tuples(page.tuples());
                index_batch(&b, batches.len() as u32, &mut table);
                batches.push(b);
                if let Some(op) = &op {
                    op.batches.add(0, 1);
                }
            }
        }

        if let (Some(op), Some(t0)) = (&op, build_start) {
            op.build_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        let probe_start = op.as_ref().map(|_| std::time::Instant::now());

        let right_arity = right.schema().arity();
        // Probe one left batch row: verify hash candidates key-by-key, run
        // the residual on materialized tuples (same 3VL evaluation as the
        // row path), pad under LeftOuter.
        let probe_lane = |lb: &Batch, row: usize, out: &mut Vec<Tuple>| -> Result<()> {
            let mut matched = false;
            if !left_keys.iter().any(|&k| lb.col(k).val_ref(row).is_null()) {
                if let Some(cands) = table.get(&key_hash(lb, left_keys, row)) {
                    let mut lt: Option<Tuple> = None;
                    for &(bi, r) in cands {
                        let rb = &batches[bi as usize];
                        let r = r as usize;
                        let keys_match = left_keys.iter().zip(right_keys).all(|(&lk, &rk)| {
                            lb.col(lk).val_ref(row).total_eq(rb.col(rk).val_ref(r))
                        });
                        if !keys_match {
                            continue; // u64 hash collision of a different key
                        }
                        let lt = lt.get_or_insert_with(|| lb.tuple(row));
                        let rt = rb.tuple(r);
                        let ok = match residual {
                            Some(p) => p.accepts_row(&Joined::new(lt, &rt))?,
                            None => true,
                        };
                        if ok {
                            matched = true;
                            out.push(lt.join(&rt));
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push(lb.tuple(row).join_nulls(right_arity));
            }
            Ok(())
        };
        if self.threads > 1 && left.page_count() > 1 {
            // Same error contract as the row probe: morsels in flight still
            // finish, the first morsel-order error is the one reported.
            let partials: Vec<Result<Vec<Tuple>>> = par_map_pages(
                &self.storage,
                left.page_ids(),
                self.threads,
                op_ref,
                |m, pages| {
                    let mut out = Vec::new();
                    for page in pages {
                        let lb = Batch::from_tuples(page.tuples());
                        if let Some(op) = op_ref {
                            op.batches.add(m, 1);
                        }
                        for row in 0..lb.len() {
                            probe_lane(&lb, row, &mut out)?;
                        }
                    }
                    Ok(out)
                },
            );
            let mut out = Vec::new();
            for partial in partials {
                out.extend(partial?);
            }
            self.finish_probe(&op, probe_start);
            Ok(out)
        } else {
            // Serial probe stops at the first error, before reading further
            // pages — exactly like the row path's streaming scan.
            let mut out = Vec::new();
            for &pid in left.page_ids() {
                let page = self.storage.read_page(pid);
                let lb = Batch::from_tuples(page.tuples());
                if let Some(op) = &op {
                    op.batches.add(0, 1);
                }
                for row in 0..lb.len() {
                    probe_lane(&lb, row, &mut out)?;
                }
            }
            self.finish_probe(&op, probe_start);
            Ok(out)
        }
    }

    fn finish_probe(
        &self,
        op: &Option<std::sync::Arc<nsql_obs::OpMetrics>>,
        probe_start: Option<std::time::Instant>,
    ) {
        if let (Some(op), Some(t0)) = (op, probe_start) {
            op.probe_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use nsql_storage::Storage;
    use nsql_sql::parse_query;
    use nsql_types::Value;

    fn exec() -> Exec {
        Exec::new(Storage::with_defaults())
    }

    fn on_pred(l: &HeapFile, r: &HeapFile, cond: &str) -> CPred {
        let combined = l.schema().join(r.schema());
        let q = parse_query(&format!("SELECT L.A FROM L, R WHERE {cond}")).unwrap();
        CPred::compile(&combined, q.where_clause.as_ref().unwrap()).unwrap()
    }

    #[test]
    fn hash_join_equals_nl_join() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A", "X"], &[&[3, 0], &[1, 1], &[3, 2], &[5, 3]]);
        let r = int_file(e.storage(), "R", &["B", "Y"], &[&[3, 10], &[3, 11], &[1, 12]]);
        let on = on_pred(&l, &r, "L.A = R.B");
        for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
            let nl = e.nl_join(&l, &r, &on, kind).unwrap();
            let hj = e.hash_join(&l, &r, &[0], &[0], None, kind).unwrap();
            assert!(
                e.collect(&nl).same_bag(&e.collect(&hj)),
                "{kind:?}:\nNL:\n{}\nHJ:\n{}",
                e.collect(&nl),
                e.collect(&hj)
            );
        }
    }

    #[test]
    fn hash_join_residual_and_nulls() {
        let e = exec();
        let st = e.storage().clone();
        let schema = nsql_types::Schema::new(vec![
            nsql_types::Column::qualified("L", "A", nsql_types::ColumnType::Int),
            nsql_types::Column::qualified("L", "X", nsql_types::ColumnType::Int),
        ]);
        let l = HeapFile::from_tuples(
            &st,
            schema,
            vec![
                Tuple::new(vec![Value::Null, Value::Int(0)]),
                Tuple::new(vec![Value::Int(1), Value::Int(5)]),
                Tuple::new(vec![Value::Int(1), Value::Int(6)]),
            ],
        );
        let r = int_file(&st, "R", &["B", "Y"], &[&[1, 5], &[1, 9]]);
        let res = on_pred(&l, &r, "L.X = R.Y");
        let hj = e
            .hash_join(&l, &r, &[0], &[0], Some(&res), JoinKind::LeftOuter)
            .unwrap();
        let mut rows = rows_of(&st, &hj);
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![None, Some(0), None, None],      // NULL key padded
                vec![Some(1), Some(5), Some(1), Some(5)], // residual match
                vec![Some(1), Some(6), None, None],   // residual fails → padded
            ]
        );
    }

    #[test]
    fn vectorized_hash_join_matches_row_join_exactly() {
        // Rows, order, and counted I/O identical across modes and thread
        // counts, including NULL keys, residuals, and LeftOuter padding.
        let build = |st: &Storage| {
            let schema = nsql_types::Schema::new(vec![
                nsql_types::Column::qualified("L", "A", nsql_types::ColumnType::Int),
                nsql_types::Column::qualified("L", "X", nsql_types::ColumnType::Int),
            ]);
            let l = HeapFile::from_tuples(
                st,
                schema,
                (0..300).map(|i| {
                    Tuple::new(vec![
                        if i % 11 == 0 { Value::Null } else { Value::Int(i % 40) },
                        Value::Int(i),
                    ])
                }),
            );
            let r = int_file(st, "R", &["B", "Y"], &(0..120).map(|i| vec![i % 50, i]).collect::<Vec<_>>().iter().map(|v| v.as_slice()).collect::<Vec<_>>());
            (l, r)
        };
        let run = |vectorized: bool, threads: usize, kind: JoinKind, with_residual: bool| {
            let e = Exec::with_threads(Storage::new(8, 256), threads).with_vectorized(vectorized);
            let (l, r) = build(e.storage());
            let res = on_pred(&l, &r, "L.X < R.Y");
            e.storage().clear_buffer();
            e.storage().reset_stats();
            let out = e
                .hash_join(&l, &r, &[0], &[0], with_residual.then_some(&res), kind)
                .unwrap();
            (rows_of(e.storage(), &out), e.storage().io_stats(), e.storage().buffer_stats())
        };
        for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
            for with_residual in [false, true] {
                let (rows, io, buf) = run(false, 1, kind, with_residual);
                for (vec, threads) in [(true, 1), (true, 4)] {
                    let (r2, io2, buf2) = run(vec, threads, kind, with_residual);
                    assert_eq!(r2, rows, "{kind:?} residual={with_residual} t={threads}");
                    assert_eq!(io2, io, "{kind:?} residual={with_residual} t={threads}");
                    assert_eq!(buf2, buf, "{kind:?} residual={with_residual} t={threads}");
                }
            }
        }
    }

    #[test]
    fn vectorized_hash_join_groups_int_and_float_keys_like_row_path() {
        // 3 and 3.0 share a bucket on the row path (Value total equality);
        // the vectorized hash/verify pair must reproduce that.
        let run = |vectorized: bool| {
            let e = exec().with_vectorized(vectorized);
            let st = e.storage().clone();
            let ls = nsql_types::Schema::new(vec![nsql_types::Column::qualified(
                "L",
                "A",
                nsql_types::ColumnType::Float,
            )]);
            let l = HeapFile::from_tuples(
                &st,
                ls,
                vec![
                    Tuple::new(vec![Value::Float(3.0)]),
                    Tuple::new(vec![Value::Int(3)]),
                    Tuple::new(vec![Value::Float(f64::NAN)]),
                ],
            );
            let rs = nsql_types::Schema::new(vec![nsql_types::Column::qualified(
                "R",
                "B",
                nsql_types::ColumnType::Int,
            )]);
            let r = HeapFile::from_tuples(
                &st,
                rs,
                vec![Tuple::new(vec![Value::Int(3)]), Tuple::new(vec![Value::Float(f64::NAN)])],
            );
            let out = e.hash_join(&l, &r, &[0], &[0], None, JoinKind::Inner).unwrap();
            e.collect(&out)
        };
        let row = run(false);
        let vec = run(true);
        assert!(row.same_bag(&vec), "row:\n{row}\nvec:\n{vec}");
        assert_eq!(row.len(), 3, "3.0~3, 3~3, NaN~NaN");
    }

    #[test]
    fn hash_join_io_is_two_scans_plus_output() {
        let e = exec();
        let l = int_file(e.storage(), "L", &["A"], &(0..200).map(|i| vec![i]).collect::<Vec<_>>().iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        let r = int_file(e.storage(), "R", &["B"], &(0..100).map(|i| vec![i]).collect::<Vec<_>>().iter().map(|v| v.as_slice()).collect::<Vec<_>>());
        e.storage().clear_buffer();
        e.storage().reset_stats();
        let before = e.storage().io_stats();
        let out = e.hash_join(&l, &r, &[0], &[0], None, JoinKind::Inner).unwrap();
        let used = e.storage().io_stats().since(&before);
        assert_eq!(
            used.reads,
            (l.page_count() + r.page_count()) as u64,
            "hash join reads each input exactly once"
        );
        assert_eq!(used.writes, out.page_count() as u64);
    }
}
