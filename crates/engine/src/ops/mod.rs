//! Physical operators.
//!
//! Every operator **materializes** its result as a heap file (costing one
//! write per output page), matching how the paper's cost model charges every
//! intermediate — `Rt2`, `Rt3`, `Rt4`, `Rt` are all stored temporaries.
//! The one exception is the final operator of a plan, which uses a
//! `*_collect` variant to stream into an in-memory [`Relation`] (the paper
//! likewise never charges for delivering the final result).
//!
//! Join methods are exactly the two System R offered and the paper analyses:
//! nested-loop ([`Exec::nl_join`]) and sort-merge ([`Exec::merge_join`]),
//! each in inner and **left outer** flavours — the outer join being the
//! paper's key device for fixing the COUNT bug (Section 5.2).

mod agg;
mod hash_join;
mod join;

pub use agg::AggSpec;

use crate::error::EngineError;
use crate::expr::{CExpr, Projector};
use crate::par::par_map_pages;
use crate::pred::CPred;
use crate::vec_exec::{keep_lanes, vpred_from_cpred, VPred};
use crate::Result;
use nsql_obs::{MetricsRegistry, OpMetrics};
use nsql_storage::sort::SortKey;
use nsql_storage::{external_sort_threads, HeapFile, Storage};
use nsql_types::{Relation, Schema, Tuple};
use nsql_vec::Batch;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

/// Inner or left-outer join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Ordinary join.
    Inner,
    /// Left outer join: unmatched left tuples appear once, padded with
    /// `NULL`s on the right (the paper's `^`).
    LeftOuter,
}

/// Observability state shared by an executor and its caller: the metrics
/// registry plus a "current operator" slot the plan layer points at the
/// operator it is about to run, so engine internals (morsel claims, hash
/// build/probe timings, per-worker row counts) know where to record.
///
/// All recording is side-state: relaxed atomics and the registry's own
/// locks, never the storage I/O counters — observation cannot perturb the
/// byte-identical I/O accounting invariant.
#[derive(Clone, Default)]
pub struct ExecObs {
    /// Per-operator metrics and the diagnostic event sink.
    pub registry: MetricsRegistry,
    current: Arc<Mutex<Option<Arc<OpMetrics>>>>,
}

impl ExecObs {
    /// Fresh observability state with an empty registry.
    pub fn new() -> ExecObs {
        ExecObs::default()
    }

    /// Point engine internals at `op` (or detach with `None`).
    pub fn set_current(&self, op: Option<Arc<OpMetrics>>) {
        *self.current.lock().unwrap_or_else(PoisonError::into_inner) = op;
    }

    /// The operator currently being run, if any.
    pub fn current(&self) -> Option<Arc<OpMetrics>> {
        self.current.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Run `f` with `op` installed as the current operator, restoring the
    /// previous one after (operators can nest, e.g. a distinct projection's
    /// internal sort).
    pub fn with_current<R>(&self, op: Arc<OpMetrics>, f: impl FnOnce() -> R) -> R {
        let prev = {
            let mut cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
            cur.replace(op)
        };
        let out = f();
        self.set_current(prev);
        out
    }
}

/// Operator executor bound to a [`Storage`].
#[derive(Clone)]
pub struct Exec {
    storage: Storage,
    threads: usize,
    obs: Option<ExecObs>,
    vectorized: bool,
}

impl Exec {
    /// Executor over `storage` (serial: one thread).
    pub fn new(storage: Storage) -> Exec {
        Exec::with_threads(storage, 1)
    }

    /// Executor with a morsel-parallel worker pool of `threads` workers.
    /// `threads <= 1` is the exact serial code path; with more, the heavy
    /// operators (scans, hash join, aggregation, sort run generation) fan
    /// out while reporting **identical** I/O statistics (see `engine::par`).
    pub fn with_threads(storage: Storage, threads: usize) -> Exec {
        Exec { storage, threads: threads.max(1), obs: None, vectorized: false }
    }

    /// Enable (or disable) the vectorized operator implementations. Results,
    /// errors, and counted page I/O are identical either way — the switch
    /// only changes how predicates and join keys are evaluated in memory.
    /// Operators without a vectorized form (see DESIGN.md's fallback matrix)
    /// silently keep their row implementation.
    pub fn with_vectorized(mut self, vectorized: bool) -> Exec {
        self.vectorized = vectorized;
        self
    }

    /// Whether vectorized operator implementations are enabled.
    pub fn vectorized(&self) -> bool {
        self.vectorized
    }

    /// Attach observability state; operators record per-operator metrics
    /// into its registry. Without this (the default), every collection
    /// point reduces to one `Option` branch.
    pub fn with_obs(mut self, obs: ExecObs) -> Exec {
        self.obs = Some(obs);
        self
    }

    /// The attached observability state, if any.
    pub fn obs(&self) -> Option<&ExecObs> {
        self.obs.as_ref()
    }

    /// The operator metrics engine internals should record into right now.
    pub(crate) fn current_op(&self) -> Option<Arc<OpMetrics>> {
        self.obs.as_ref().and_then(ExecObs::current)
    }

    /// The underlying storage handle.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Worker-pool width this executor fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Filter-map `input` through `f`, streaming into a new heap file.
    ///
    /// Serial path: zero-copy streaming scan, writes interleaved with reads.
    /// Parallel path: ordered-fetch morsels (buffer sees the serial access
    /// order), per-morsel output concatenated in morsel order, written after
    /// the scan — same tuple order, page packing, and I/O totals. On error
    /// the whole input is still scanned (serial `scan_with` does not
    /// short-circuit, and in-flight morsels complete), but the **first**
    /// error in scan order is the one the caller sees — identical at every
    /// thread count, so fault behaviour is deterministic too.
    fn stream_filter_map<F>(&self, input: &HeapFile, out_schema: Schema, f: F) -> Result<HeapFile>
    where
        F: Fn(&Tuple) -> Result<Option<Tuple>> + Sync,
    {
        let op = self.current_op();
        if self.threads > 1 && input.page_count() > 1 {
            let op_ref = op.as_deref();
            let results =
                par_map_pages(&self.storage, input.page_ids(), self.threads, op_ref, |m, pages| {
                    let mut kept = Vec::new();
                    let mut err = None;
                    let mut seen = 0u64;
                    for page in pages {
                        for t in page.tuples() {
                            seen += 1;
                            match f(t) {
                                Ok(Some(o)) => kept.push(o),
                                Ok(None) => {}
                                // First error within the morsel wins; morsels are
                                // concatenated in page order below, so this is the
                                // first error in serial scan order overall.
                                Err(e) => {
                                    if err.is_none() {
                                        err = Some(e);
                                    }
                                }
                            }
                        }
                    }
                    if let Some(op) = op_ref {
                        op.rows_in.add(m, seen);
                        op.rows_out.add(m, kept.len() as u64);
                    }
                    (kept, err)
                });
            let mut err = None;
            let file = HeapFile::from_tuples(
                &self.storage,
                out_schema,
                results.into_iter().flat_map(|(kept, e)| {
                    if let Some(e) = e {
                        if err.is_none() {
                            err = Some(e);
                        }
                    }
                    kept
                }),
            );
            self.check_streamed(file, err)
        } else {
            let mut err = None;
            let mut rows_in = 0u64;
            let mut rows_out = 0u64;
            let file = HeapFile::from_tuples(
                &self.storage,
                out_schema,
                input.scan_with(&self.storage, |t| {
                    rows_in += 1;
                    match f(t) {
                        Ok(o) => {
                            rows_out += o.is_some() as u64;
                            o
                        }
                        Err(e) => {
                            if err.is_none() {
                                err = Some(e);
                            }
                            None
                        }
                    }
                }),
            );
            if let Some(op) = &op {
                op.rows_in.add(0, rows_in);
                op.rows_out.add(0, rows_out);
            }
            self.check_streamed(file, err)
        }
    }

    /// Vectorized counterpart of [`stream_filter_map`](Exec::stream_filter_map)
    /// for predicate-driven operators: each page is read through the counted
    /// buffer pool (same `read_page` sequence as the serial row scan),
    /// pivoted into a [`Batch`] *above* the storage seam, and filtered by
    /// refining a selection vector; surviving rows are emitted via `emit`
    /// from the original page tuples. Error policy matches the row path
    /// exactly: the whole input is scanned, the first error in scan order
    /// wins, and the partial output is dropped.
    fn stream_filter_vec<G>(
        &self,
        input: &HeapFile,
        out_schema: Schema,
        pred: &VPred,
        emit: G,
    ) -> Result<HeapFile>
    where
        G: Fn(&Tuple) -> Tuple + Sync,
    {
        let op = self.current_op();
        if let Some(op) = &op {
            op.vectorized.store(1, Ordering::Relaxed);
        }
        let filter_page = |page: &nsql_storage::Page| -> (Vec<Tuple>, Option<EngineError>, u64) {
            let tuples = page.tuples();
            let batch = Batch::from_tuples(tuples);
            let (keep, err) = keep_lanes(pred, &batch, &batch.full_sel());
            let kept: Vec<Tuple> =
                keep.iter().map(|&i| emit(&tuples[i as usize])).collect();
            (kept, err, tuples.len() as u64)
        };
        if self.threads > 1 && input.page_count() > 1 {
            let op_ref = op.as_deref();
            let results =
                par_map_pages(&self.storage, input.page_ids(), self.threads, op_ref, |m, pages| {
                    let mut kept = Vec::new();
                    let mut err = None;
                    let mut seen = 0u64;
                    for page in pages {
                        let (rows, e, n) = filter_page(page);
                        kept.extend(rows);
                        seen += n;
                        if let Some(e) = e {
                            if err.is_none() {
                                err = Some(e);
                            }
                        }
                        if let Some(op) = op_ref {
                            op.batches.add(m, 1);
                        }
                    }
                    if let Some(op) = op_ref {
                        op.rows_in.add(m, seen);
                        op.rows_out.add(m, kept.len() as u64);
                    }
                    (kept, err)
                });
            let mut err = None;
            let file = HeapFile::from_tuples(
                &self.storage,
                out_schema,
                results.into_iter().flat_map(|(kept, e)| {
                    if let Some(e) = e {
                        if err.is_none() {
                            err = Some(e);
                        }
                    }
                    kept
                }),
            );
            self.check_streamed(file, err)
        } else {
            let mut err = None;
            let file = HeapFile::from_tuples(
                &self.storage,
                out_schema,
                input.page_ids().iter().flat_map(|&pid| {
                    let page = self.storage.read_page(pid);
                    let (kept, e, seen) = filter_page(&page);
                    if let Some(e) = e {
                        if err.is_none() {
                            err = Some(e);
                        }
                    }
                    if let Some(op) = &op {
                        op.rows_in.add(0, seen);
                        op.rows_out.add(0, kept.len() as u64);
                        op.batches.add(0, 1);
                    }
                    kept
                }),
            );
            self.check_streamed(file, err)
        }
    }

    /// σ — keep tuples the predicate accepts (is `TRUE` for).
    ///
    /// Streams page-resident tuples straight into the output file: rejected
    /// tuples are never cloned off their page, accepted ones are cloned
    /// exactly once. Output writes are write-around (never enter the buffer
    /// pool), so interleaving them with the input scan leaves counted I/O
    /// identical to the old collect-then-write form.
    pub fn filter(&self, input: &HeapFile, pred: &CPred) -> Result<HeapFile> {
        if self.vectorized {
            let vp = vpred_from_cpred(pred);
            return self.stream_filter_vec(input, input.schema().clone(), &vp, Tuple::clone);
        }
        self.stream_filter_map(input, input.schema().clone(), |t| {
            Ok(if pred.accepts(t)? { Some(t.clone()) } else { None })
        })
    }

    /// If the streaming closure hit an error, free the partial output and
    /// surface it; otherwise hand the file through.
    fn check_streamed(&self, file: HeapFile, err: Option<EngineError>) -> Result<HeapFile> {
        match err {
            Some(e) => {
                file.drop_pages(&self.storage);
                Err(e)
            }
            None => Ok(file),
        }
    }

    /// π — evaluate `exprs` per tuple; `distinct` eliminates duplicates via
    /// an external sort of the projected file. Clones only the projected
    /// columns of each input tuple and streams the output directly into
    /// pages (no intermediate `Vec<Tuple>`).
    pub fn project(
        &self,
        input: &HeapFile,
        exprs: &[CExpr],
        out_schema: Schema,
        distinct: bool,
    ) -> Result<HeapFile> {
        if out_schema.arity() != exprs.len() {
            return Err(EngineError::Internal(format!(
                "project schema arity {} != expr count {}",
                out_schema.arity(),
                exprs.len()
            )));
        }
        let proj = Projector::new(exprs);
        let file = self.stream_filter_map(input, out_schema, |t| Ok(Some(proj.apply_ref(t))))?;
        if distinct {
            let sorted = self.sort(&file, &[], true);
            file.drop_pages(&self.storage);
            Ok(sorted)
        } else {
            Ok(file)
        }
    }

    /// Combined σ then π in one pass over the input (the paper's
    /// "restriction and projection" of a relation, e.g. building `Rt2` and
    /// `Rt3` in NEST-JA2). Streams like [`filter`](Exec::filter)/
    /// [`project`](Exec::project): rejected tuples cost nothing, accepted
    /// ones clone only their projected columns.
    pub fn restrict_project(
        &self,
        input: &HeapFile,
        pred: &CPred,
        exprs: &[CExpr],
        out_schema: Schema,
        distinct: bool,
    ) -> Result<HeapFile> {
        let proj = Projector::new(exprs);
        let file = if self.vectorized {
            let vp = vpred_from_cpred(pred);
            self.stream_filter_vec(input, out_schema, &vp, |t| proj.apply_ref(t))?
        } else {
            self.stream_filter_map(input, out_schema, |t| {
                Ok(if pred.accepts(t)? { Some(proj.apply_ref(t)) } else { None })
            })?
        };
        if distinct {
            let sorted = self.sort(&file, &[], true);
            file.drop_pages(&self.storage);
            Ok(sorted)
        } else {
            Ok(file)
        }
    }

    /// External sort (thin wrapper over [`external_sort`]; run generation
    /// fans out on this executor's worker pool).
    pub fn sort(&self, input: &HeapFile, keys: &[SortKey], unique: bool) -> HeapFile {
        external_sort_threads(&self.storage, input, keys, unique, self.threads)
    }

    /// Load a heap file into memory (final-result delivery; reads only).
    pub fn collect(&self, input: &HeapFile) -> Relation {
        self.storage.load_relation(input)
    }

    /// Final-result projection: stream, evaluate, collect in memory.
    pub fn project_collect(
        &self,
        input: &HeapFile,
        exprs: &[CExpr],
        out_schema: Schema,
        distinct: bool,
    ) -> Result<Relation> {
        let proj = Projector::new(exprs);
        let mut tuples: Vec<Tuple> =
            input.scan_with(&self.storage, |t| Some(proj.apply_ref(t))).collect();
        if distinct {
            tuples.sort_by(Tuple::total_cmp);
            tuples.dedup();
        }
        Relation::new(out_schema, tuples).map_err(EngineError::from)
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use nsql_types::{Column, ColumnType, Value};

    /// Build a heap file of integer rows with columns qualified by `table`.
    pub fn int_file(
        storage: &Storage,
        table: &str,
        cols: &[&str],
        rows: &[&[i64]],
    ) -> HeapFile {
        let schema = Schema::new(
            cols.iter().map(|c| Column::qualified(table, *c, ColumnType::Int)).collect(),
        );
        HeapFile::from_tuples(
            storage,
            schema,
            rows.iter().map(|r| r.iter().map(|&v| Value::Int(v)).collect::<Tuple>()),
        )
    }

    /// All rows as `Vec<Vec<i64>>`, using -1 sentinel impossible — use
    /// Option for NULL.
    pub fn rows_of(storage: &Storage, f: &HeapFile) -> Vec<Vec<Option<i64>>> {
        f.scan(storage)
            .map(|t| {
                t.values()
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => Some(*i),
                        Value::Null => None,
                        other => panic!("unexpected value {other}"),
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;
    use nsql_sql::parse_query;
    use nsql_types::{Column, ColumnType};

    fn exec() -> Exec {
        Exec::new(Storage::with_defaults())
    }

    fn pred_on(f: &HeapFile, src_where: &str) -> CPred {
        let q = parse_query(&format!("SELECT T.A FROM T WHERE {src_where}")).unwrap();
        CPred::compile(f.schema(), q.where_clause.as_ref().unwrap()).unwrap()
    }

    #[test]
    fn filter_keeps_only_true() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["A"], &[&[1], &[2], &[3]]);
        let p = pred_on(&f, "A >= 2");
        let out = e.filter(&f, &p).unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(2)], vec![Some(3)]]);
    }

    #[test]
    fn project_reorders_and_computes() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["A", "B"], &[&[1, 10], &[2, 20]]);
        let out_schema = Schema::new(vec![Column::qualified("O", "B", ColumnType::Int)]);
        let out = e
            .project(&f, &[CExpr::Col(1)], out_schema, false)
            .unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(10)], vec![Some(20)]]);
    }

    #[test]
    fn project_distinct_dedups() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["A", "B"], &[&[1, 0], &[1, 1], &[2, 2]]);
        let out_schema = Schema::new(vec![Column::qualified("O", "A", ColumnType::Int)]);
        let out = e.project(&f, &[CExpr::Col(0)], out_schema, true).unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(1)], vec![Some(2)]]);
    }

    #[test]
    fn restrict_project_applies_both() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["A", "B"], &[&[1, 5], &[2, 6], &[3, 7]]);
        let p = pred_on(&f, "A > 1");
        let out_schema = Schema::new(vec![Column::qualified("O", "B", ColumnType::Int)]);
        let out = e.restrict_project(&f, &p, &[CExpr::Col(1)], out_schema, false).unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(6)], vec![Some(7)]]);
    }

    #[test]
    fn project_collect_returns_relation() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["A"], &[&[2], &[1], &[2]]);
        let s = Schema::new(vec![Column::new("A", ColumnType::Int)]);
        let r = e.project_collect(&f, &[CExpr::Col(0)], s.clone(), false).unwrap();
        assert_eq!(r.len(), 3);
        let rd = e.project_collect(&f, &[CExpr::Col(0)], s, true).unwrap();
        assert_eq!(rd.len(), 2);
    }

    #[test]
    fn distinct_projection_drops_presort_pages() {
        // The distinct path materializes the projection, sorts it into a new
        // file, and must free the pre-sort pages — only the input and the
        // deduplicated output may remain live on disk.
        let e = exec();
        let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 5, i]).collect();
        let row_refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let f = int_file(e.storage(), "T", &["A", "B"], &row_refs);
        let live_before = e.storage().live_pages();
        let out_schema = Schema::new(vec![Column::qualified("O", "A", ColumnType::Int)]);
        let out = e.project(&f, &[CExpr::Col(0)], out_schema, true).unwrap();
        assert_eq!(out.tuple_count(), 5);
        assert_eq!(
            e.storage().live_pages(),
            live_before + out.page_count(),
            "pre-sort projection pages must be freed"
        );

        // Same invariant on the combined restrict+project path.
        let p = pred_on(&f, "A >= 1");
        let out_schema = Schema::new(vec![Column::qualified("O", "A", ColumnType::Int)]);
        let live_before = e.storage().live_pages();
        let out2 = e.restrict_project(&f, &p, &[CExpr::Col(0)], out_schema, true).unwrap();
        assert_eq!(out2.tuple_count(), 4);
        assert_eq!(e.storage().live_pages(), live_before + out2.page_count());
    }

    #[test]
    fn vectorized_filter_matches_row_results_and_io() {
        // Same storage geometry, same query, both modes, serial and
        // parallel: identical rows in identical order, identical counted
        // I/O totals and hit/miss split.
        let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i % 7, i]).collect();
        let row_refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let run = |vectorized: bool, threads: usize| {
            let e = Exec::with_threads(Storage::new(4, 128), threads)
                .with_vectorized(vectorized);
            let f = int_file(e.storage(), "T", &["A", "B"], &row_refs);
            e.storage().clear_buffer();
            e.storage().reset_stats();
            let p = pred_on(&f, "A >= 3 AND B < 400");
            let out = e.filter(&f, &p).unwrap();
            (rows_of(e.storage(), &out), e.storage().io_stats(), e.storage().buffer_stats())
        };
        let (base_rows, base_io, base_buf) = run(false, 1);
        for (vec, threads) in [(true, 1), (true, 4), (false, 4)] {
            let (r, io, buf) = run(vec, threads);
            assert_eq!(r, base_rows, "vec={vec} threads={threads}");
            assert_eq!(io, base_io, "vec={vec} threads={threads}");
            assert_eq!(buf, base_buf, "vec={vec} threads={threads}");
        }
    }

    #[test]
    fn vectorized_restrict_project_matches_row_path() {
        let e = exec().with_vectorized(true);
        let f = int_file(e.storage(), "T", &["A", "B"], &[&[1, 5], &[2, 6], &[3, 7]]);
        let p = pred_on(&f, "A > 1");
        let out_schema = Schema::new(vec![Column::qualified("O", "B", ColumnType::Int)]);
        let out = e.restrict_project(&f, &p, &[CExpr::Col(1)], out_schema, false).unwrap();
        assert_eq!(rows_of(e.storage(), &out), vec![vec![Some(6)], vec![Some(7)]]);
    }

    #[test]
    fn vectorized_filter_error_behaviour_matches_row_path() {
        // A type error mid-scan: both modes scan the whole input, report
        // the same (first) error, and free the partial output.
        use nsql_types::Value;
        let mk = |vectorized: bool| {
            let e = exec().with_vectorized(vectorized);
            let st = e.storage().clone();
            let schema = Schema::new(vec![Column::qualified("T", "A", ColumnType::Int)]);
            let f = HeapFile::from_tuples(
                &st,
                schema,
                (0..100).map(|i| {
                    if i % 10 == 3 {
                        Tuple::new(vec![Value::str(format!("s{i}"))])
                    } else {
                        Tuple::new(vec![Value::Int(i)])
                    }
                }),
            );
            let p = pred_on(&f, "A = 1");
            let live = st.live_pages();
            let err = match e.filter(&f, &p) {
                Err(e) => e,
                Ok(_) => panic!("expected a type error (vec={vectorized})"),
            };
            assert_eq!(st.live_pages(), live, "partial output freed (vec={vectorized})");
            format!("{err:?}")
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn project_arity_mismatch_is_error() {
        let e = exec();
        let f = int_file(e.storage(), "T", &["A"], &[&[1]]);
        let s = Schema::new(vec![
            Column::new("A", ColumnType::Int),
            Column::new("B", ColumnType::Int),
        ]);
        assert!(e.project(&f, &[CExpr::Col(0)], s, false).is_err());
    }
}
