//! Execution errors.

use nsql_storage::StorageError;
use nsql_types::TypeError;
use std::fmt;

/// Failures during compilation or evaluation of queries.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Value-level failure (type mismatch, unknown column, …).
    Type(TypeError),
    /// FROM references a table that does not exist.
    UnknownTable(String),
    /// A scalar subquery produced more than one row.
    ScalarSubqueryCardinality(usize),
    /// Arithmetic overflow in an exact computation (e.g. integer `SUM`).
    Overflow(String),
    /// A query shape the executor does not support.
    Unsupported(String),
    /// Internal invariant violation — always an engine bug.
    Internal(String),
    /// A durable-storage failure (checksum mismatch, corrupt page file,
    /// injected crash) surfaced through an operator.
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Type(e) => write!(f, "{e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::ScalarSubqueryCardinality(n) => {
                write!(f, "scalar subquery returned {n} rows (expected at most 1)")
            }
            EngineError::Overflow(m) => write!(f, "arithmetic overflow: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TypeError> for EngineError {
    fn from(e: TypeError) -> Self {
        EngineError::Type(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}
