//! The paper's example databases, as ready-made storage + providers.
//!
//! Three datasets appear in the paper:
//!
//! * The **suppliers–parts** database of the introduction (`S`, `P`, `SP`)
//!   — we populate it with plausible data consistent with the paper's
//!   examples (the paper never lists its rows).
//! * **Kiessling's PARTS/SUPPLY** instantiation of Section 5.1 (exact rows
//!   from [KIE 84:2]) used for the COUNT bug.
//! * The **Section 5.3** variant of PARTS/SUPPLY used for the
//!   non-equality-operator bug, and the **Section 5.4** variant with
//!   duplicate outer join-column values.
//!
//! Each constructor returns the storage handle and a provider with the
//! tables registered; experiments reset the I/O counters afterwards.

use crate::provider::MemoryProvider;
use nsql_storage::{HeapFile, Storage};
use nsql_types::{ColumnType, Date, Relation, Schema, Tuple, Value};

/// A fixture: storage plus registered tables.
pub struct Fixture {
    /// The storage handle (shared counters).
    pub storage: Storage,
    /// Table provider with all fixture tables registered.
    pub provider: MemoryProvider,
}

fn date(s: &str) -> Value {
    Value::Date(Date::parse(s).expect("fixture dates are valid"))
}

fn rel(schema: Schema, rows: Vec<Vec<Value>>) -> Relation {
    Relation::new(schema, rows.into_iter().map(Tuple::new).collect())
        .expect("fixture rows match fixture schemas")
}

/// PARTS schema: `PARTS(PNUM, QOH)` [KIE 84].
pub fn parts_schema() -> Schema {
    Schema::of_table("PARTS", &[("PNUM", ColumnType::Int), ("QOH", ColumnType::Int)])
}

/// SUPPLY schema: `SUPPLY(PNUM, QUAN, SHIPDATE)` [KIE 84].
pub fn supply_schema() -> Schema {
    Schema::of_table(
        "SUPPLY",
        &[
            ("PNUM", ColumnType::Int),
            ("QUAN", ColumnType::Int),
            ("SHIPDATE", ColumnType::Date),
        ],
    )
}

fn fixture_from(tables: Vec<(&str, Relation)>) -> Fixture {
    let storage = Storage::with_defaults();
    let mut provider = MemoryProvider::new();
    for (name, rel) in tables {
        let file = storage.store_relation(&rel);
        provider.register(name, file);
    }
    storage.reset_stats();
    Fixture { storage, provider }
}

/// Section 5.1 data ([KIE 84:2]) — the COUNT-bug demonstration:
///
/// ```text
/// PARTS:  PNUM QOH        SUPPLY: PNUM QUAN SHIPDATE
///            3   6                   3    4  7-3-79
///           10   1                   3    2  10-1-78
///            8   0                  10    1  6-8-78
///                                   10    2  8-10-81
///                                    8    5  5-7-83
/// ```
pub fn kiessling_count_bug() -> Fixture {
    let parts = rel(
        parts_schema(),
        vec![
            vec![Value::Int(3), Value::Int(6)],
            vec![Value::Int(10), Value::Int(1)],
            vec![Value::Int(8), Value::Int(0)],
        ],
    );
    let supply = rel(
        supply_schema(),
        vec![
            vec![Value::Int(3), Value::Int(4), date("7-3-79")],
            vec![Value::Int(3), Value::Int(2), date("10-1-78")],
            vec![Value::Int(10), Value::Int(1), date("6-8-78")],
            vec![Value::Int(10), Value::Int(2), date("8-10-81")],
            vec![Value::Int(8), Value::Int(5), date("5-7-83")],
        ],
    );
    fixture_from(vec![("PARTS", parts), ("SUPPLY", supply)])
}

/// Section 5.3 data — the non-equality-operator bug (query Q5):
///
/// ```text
/// PARTS:  PNUM QOH        SUPPLY: PNUM QUAN SHIPDATE
///            3   0                   3    4  7-3-79
///           10   4                   3    2  10-1-78
///            8   4                  10    1  6-8-78
///                                    9    5  3-2-79
/// ```
pub fn non_equality_bug() -> Fixture {
    let parts = rel(
        parts_schema(),
        vec![
            vec![Value::Int(3), Value::Int(0)],
            vec![Value::Int(10), Value::Int(4)],
            vec![Value::Int(8), Value::Int(4)],
        ],
    );
    let supply = rel(
        supply_schema(),
        vec![
            vec![Value::Int(3), Value::Int(4), date("7-3-79")],
            vec![Value::Int(3), Value::Int(2), date("10-1-78")],
            vec![Value::Int(10), Value::Int(1), date("6-8-78")],
            vec![Value::Int(9), Value::Int(5), date("3-2-79")],
        ],
    );
    fixture_from(vec![("PARTS", parts), ("SUPPLY", supply)])
}

/// Section 5.4 data — duplicates in the outer join column:
///
/// ```text
/// PARTS:  PNUM QOH        SUPPLY: PNUM QUAN SHIPDATE
///            3   6                   3    4  8/14/77
///            3   2                   3    2  11/11/78
///           10   1                  10    1  6/22/76
///           10   0
///            8   0
/// ```
pub fn duplicates_problem() -> Fixture {
    let parts = rel(
        parts_schema(),
        vec![
            vec![Value::Int(3), Value::Int(6)],
            vec![Value::Int(3), Value::Int(2)],
            vec![Value::Int(10), Value::Int(1)],
            vec![Value::Int(10), Value::Int(0)],
            vec![Value::Int(8), Value::Int(0)],
        ],
    );
    let supply = rel(
        supply_schema(),
        vec![
            vec![Value::Int(3), Value::Int(4), date("8/14/77")],
            vec![Value::Int(3), Value::Int(2), date("11/11/78")],
            vec![Value::Int(10), Value::Int(1), date("6/22/76")],
        ],
    );
    fixture_from(vec![("PARTS", parts), ("SUPPLY", supply)])
}

/// The suppliers–parts database of Section 1 (`S`, `P`, `SP`), populated
/// with small data consistent with the paper's narrative. Primary keys:
/// `SNO`, `PNO`, and `(SNO, PNO)`.
pub fn suppliers_parts() -> Fixture {
    let s_schema = Schema::of_table(
        "S",
        &[
            ("SNO", ColumnType::Str),
            ("SNAME", ColumnType::Str),
            ("STATUS", ColumnType::Int),
            ("CITY", ColumnType::Str),
        ],
    );
    let p_schema = Schema::of_table(
        "P",
        &[
            ("PNO", ColumnType::Str),
            ("PNAME", ColumnType::Str),
            ("COLOR", ColumnType::Str),
            ("WEIGHT", ColumnType::Int),
            ("CITY", ColumnType::Str),
        ],
    );
    let sp_schema = Schema::of_table(
        "SP",
        &[
            ("SNO", ColumnType::Str),
            ("PNO", ColumnType::Str),
            ("QTY", ColumnType::Int),
            ("ORIGIN", ColumnType::Str),
        ],
    );
    let s = rel(
        s_schema,
        [
            ("S1", "SMITH", 20, "LONDON"),
            ("S2", "JONES", 10, "PARIS"),
            ("S3", "BLAKE", 30, "PARIS"),
            ("S4", "CLARK", 20, "LONDON"),
            ("S5", "ADAMS", 30, "ATHENS"),
        ]
        .into_iter()
        .map(|(a, b, c, d)| vec![Value::str(a), Value::str(b), Value::Int(c), Value::str(d)])
        .collect(),
    );
    let p = rel(
        p_schema,
        [
            ("P1", "NUT", "RED", 12, "LONDON"),
            ("P2", "BOLT", "GREEN", 17, "PARIS"),
            ("P3", "SCREW", "BLUE", 17, "ROME"),
            ("P4", "SCREW", "RED", 14, "LONDON"),
            ("P5", "CAM", "BLUE", 12, "PARIS"),
            ("P6", "COG", "RED", 19, "LONDON"),
        ]
        .into_iter()
        .map(|(a, b, c, d, e)| {
            vec![Value::str(a), Value::str(b), Value::str(c), Value::Int(d), Value::str(e)]
        })
        .collect(),
    );
    let sp = rel(
        sp_schema,
        [
            ("S1", "P1", 300, "LONDON"),
            ("S1", "P2", 200, "PARIS"),
            ("S1", "P3", 400, "ROME"),
            ("S1", "P4", 200, "LONDON"),
            ("S1", "P5", 100, "PARIS"),
            ("S1", "P6", 100, "LONDON"),
            ("S2", "P1", 300, "PARIS"),
            ("S2", "P2", 400, "PARIS"),
            ("S3", "P2", 200, "PARIS"),
            ("S4", "P2", 200, "LONDON"),
            ("S4", "P4", 300, "LONDON"),
            ("S4", "P5", 400, "LONDON"),
        ]
        .into_iter()
        .map(|(a, b, c, d)| vec![Value::str(a), Value::str(b), Value::Int(c), Value::str(d)])
        .collect(),
    );
    fixture_from(vec![("S", s), ("P", p), ("SP", sp)])
}

/// Store a relation and register it on an existing fixture (for
/// workload-generated tables in the benchmark harness).
pub fn register(fixture: &mut Fixture, name: &str, relation: &Relation) -> HeapFile {
    let file = fixture.storage.store_relation(relation);
    fixture.provider.register(name, file.clone());
    file
}

/// Extract a single `Int` column from a result as a sorted `Vec<i64>` —
/// the form in which the paper lists its example results.
pub fn int_column_sorted(result: &Relation, idx: usize) -> Vec<i64> {
    let mut out: Vec<i64> = result
        .tuples()
        .iter()
        .filter_map(|t| match t.get(idx) {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out
}
